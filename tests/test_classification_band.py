"""Tests for the weak/strong classification-band analysis (Observation 4)."""

import pytest

from repro.analysis.characterization import classification_band, marginal_band_conversion
from repro.conditions import Conditions
from repro.errors import ConfigurationError


class TestClassificationBand:
    def test_counts_partition_the_tail(self, chip):
        band = classification_band(chip, Conditions(trefi=1.024, temperature=45.0))
        total = band.reliable_weak + band.marginal + band.reliable_strong
        assert total == chip.weak_cell_count

    def test_marginal_band_nonempty(self, chip):
        band = classification_band(chip, Conditions(trefi=1.024, temperature=45.0))
        assert band.marginal > 0
        assert 0.0 < band.marginal_fraction_of_failing < 1.0

    def test_weak_count_grows_with_interval(self, chip):
        short = classification_band(chip, Conditions(trefi=0.512, temperature=45.0))
        long = classification_band(chip, Conditions(trefi=2.0, temperature=45.0))
        assert long.reliable_weak > short.reliable_weak

    def test_bad_thresholds_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            classification_band(chip, Conditions(trefi=1.0), p_lo=0.9, p_hi=0.1)

    def test_conversion_monotone_in_reach(self, chip):
        target = Conditions(trefi=1.024, temperature=45.0)
        small = marginal_band_conversion(chip, target, reach_delta_trefi_s=0.05)
        large = marginal_band_conversion(chip, target, reach_delta_trefi_s=0.40)
        assert large >= small

    def test_discoverable_threshold_easier_than_reliable(self, chip):
        target = Conditions(trefi=1.024, temperature=45.0)
        discoverable = marginal_band_conversion(chip, target, converted_at=0.5)
        reliable = marginal_band_conversion(chip, target, converted_at=0.95)
        assert discoverable >= reliable

    def test_bad_converted_at_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            marginal_band_conversion(chip, Conditions(trefi=1.0), converted_at=0.0)
