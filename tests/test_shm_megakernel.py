"""Shared-memory populations and the condition-grid megakernel.

Both features carry the same contract as every other fleet optimization:
byte-identical results, just faster.  The tests here pin

* :class:`repro.dram.shm.SharedPopulationStore` round-trips weak-cell
  samples through a segment bit-for-bit, including chunk-narrowed
  descriptors (whose field offsets must come from the segment-wide
  ``total``, not the chunk's chip subset);
* segment lifecycle: normal completion and cooperative cancel unlink the
  segment, kill -9 leaves exactly one segment plus a ``shm.json``
  sidecar that the next open of the run directory reclaims;
* :meth:`repro.core.fleetprof.FleetProfiler.run_grid` sweeps a whole
  condition grid to the same results, traces, clocks, and RNG end states
  as per-condition :meth:`~repro.core.fleetprof.FleetProfiler.run`
  calls, megakernel on or off;
* the campaign knobs (``shared_population``/``megakernel``) change
  nothing about the summary, and invalid combinations are refused;
* fleet chunking edge cases (``chips_per_unit`` larger than the
  population, trailing 1-chip chunks) keep resume fingerprints and
  summaries intact.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.conditions import Conditions
from repro.core.fleetprof import FleetProfiler
from repro.dram.geometry import ChipGeometry
from repro.dram.shm import (
    SIDECAR_NAME,
    SharedPopulationStore,
    build_population_samples,
    cleanup_stale_segment,
    new_segment_name,
    remove_sidecar,
    unlink_segment,
    write_sidecar,
)
from repro.dram.vendor import VENDOR_A, VENDOR_B
from repro.errors import ConfigurationError, ProfilingError
from repro.infra.testbed import FleetBed
from repro.runner import build_chip_units, build_fleet_units

from conftest import TEST_SEED

MICRO = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)
MEMBERS = [(0, VENDOR_B), (1, VENDOR_B), (2, VENDOR_A)]

CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))


def segment_names() -> set:
    """Names of our live shared-memory segments (Linux: files in /dev/shm)."""
    shm_root = Path("/dev/shm")
    if not shm_root.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {p.name for p in shm_root.glob("*repro-fleet-*")}


def sample_specs(n_chips: int = 3):
    units = build_chip_units(
        chips_per_vendor=1,
        geometry=MICRO,
        iterations=1,
        seed=TEST_SEED,
        intervals_s=(0.512,),
        temperatures_c=(45.0,),
        vendor_names=("A", "B", "C"),
    )[:n_chips]
    from repro.dram.shm import chip_sample_spec

    return [chip_sample_spec(u.payload, max_trefi_s=4.0) for u in units]


@pytest.fixture
def samples():
    return build_population_samples(sample_specs())


class TestSharedPopulationStore:
    def test_round_trip_is_bit_identical(self, samples):
        store = SharedPopulationStore.create(samples)
        try:
            attached = SharedPopulationStore.attach(store.descriptor())
            try:
                for chip_id, sample in samples.items():
                    view = attached.sample(chip_id)
                    for field in (
                        "indices",
                        "mu_wc_s",
                        "sigma_s",
                        "susceptibility",
                        "vrt_flag",
                        "orientation",
                    ):
                        got = getattr(view, field)
                        want = getattr(sample, field)
                        assert got.dtype == want.dtype
                        assert np.array_equal(got, want)
                        assert not got.flags.writeable
            finally:
                attached.close()
        finally:
            store.unlink()

    def test_chunk_descriptor_keeps_segment_wide_offsets(self, samples):
        """A descriptor narrowed to a chunk must still carry the segment
        total: the field layout depends on every chip in the segment."""
        store = SharedPopulationStore.create(samples)
        try:
            last_chip = max(samples)
            narrowed = store.descriptor(chip_ids=[last_chip])
            assert narrowed["total"] == sum(len(s) for s in samples.values())
            assert list(narrowed["chips"]) == [str(last_chip)]
            attached = SharedPopulationStore.attach(narrowed)
            try:
                view = attached.sample(last_chip)
                want = samples[last_chip]
                assert np.array_equal(view.mu_wc_s, want.mu_wc_s)
                assert np.array_equal(view.indices, want.indices)
                # Chips outside the narrowed descriptor are unknown.
                other = min(samples)
                with pytest.raises(ConfigurationError):
                    attached.sample(other)
            finally:
                attached.close()
        finally:
            store.unlink()

    def test_fleet_backing_contiguous_and_sparse(self, samples):
        store = SharedPopulationStore.create(samples)
        try:
            ordered = sorted(samples)
            backing = store.fleet_backing(ordered)
            assert backing is not None
            want = np.concatenate([samples[c].mu_wc_s for c in ordered])
            assert np.array_equal(backing["mu_wc_s"], want)
            # Non-adjacent chips cannot be served as one slice.
            assert store.fleet_backing([ordered[0], ordered[2]]) is None
            assert store.fleet_backing([]) is None
        finally:
            store.unlink()

    def test_create_requires_chips(self):
        with pytest.raises(ConfigurationError):
            SharedPopulationStore.create({})

    def test_unlink_removes_segment(self, samples):
        store = SharedPopulationStore.create(samples)
        descriptor = store.descriptor()
        store.unlink()
        with pytest.raises(FileNotFoundError):
            SharedPopulationStore.attach(descriptor)
        # Idempotent, and unlink_segment on a missing name reports False.
        store.unlink()
        assert unlink_segment(descriptor["segment"]) is False

    def test_sidecar_reclaims_stale_segment(self, samples, tmp_path):
        store = SharedPopulationStore.create(samples)
        name = store.segment_name
        write_sidecar(tmp_path, name)
        # Simulate kill -9: the creating process never unlinks.  Drop our
        # mapping only, then reclaim through the sidecar.
        store.close()
        assert cleanup_stale_segment(tmp_path) == name
        assert not (tmp_path / SIDECAR_NAME).exists()
        assert unlink_segment(name) is False  # already reclaimed
        # Nothing to do on a clean directory (idempotent).
        assert cleanup_stale_segment(tmp_path) is None
        # A sidecar pointing at a vanished segment is swallowed too.
        write_sidecar(tmp_path, new_segment_name())
        assert cleanup_stale_segment(tmp_path) is None
        assert not (tmp_path / SIDECAR_NAME).exists()
        remove_sidecar(tmp_path)  # no-op on a missing file


def fresh_fleet():
    bed = FleetBed.build(members=MEMBERS, geometry=MICRO, seed=TEST_SEED)
    bed.set_ambient(45.0)
    from repro.dram.fleet import ChipFleet

    return ChipFleet(bed.chips)


def chip_end_state(fleet):
    return [
        (
            chip.clock.now,
            chip.read_rng.bit_generator.state,
            chip.vrt.rng.bit_generator.state if hasattr(chip.vrt, "rng") else None,
            len(chip.trace.records),
        )
        for chip in fleet.chips
    ]


class TestRunGridEquivalence:
    GRID = (
        Conditions(0.512, temperature=45.0),
        Conditions(1.024, temperature=45.0),
        Conditions(2.048, temperature=45.0),
    )

    def test_grid_matches_sequential_conditions(self):
        profiler = FleetProfiler(iterations=2)
        ref_fleet = fresh_fleet()
        ref = tuple(profiler.run(ref_fleet, cond) for cond in self.GRID)

        grid_fleet = fresh_fleet()
        got = profiler.run_grid(grid_fleet, self.GRID)

        assert got == ref
        # End states match: clock, RNG streams, trace length and content.
        assert chip_end_state(grid_fleet) == chip_end_state(ref_fleet)
        for a, b in zip(grid_fleet.chips, ref_fleet.chips):
            assert a.trace.records == b.trace.records

    def test_megakernel_off_is_identical(self):
        profiler = FleetProfiler(iterations=2)
        fused = profiler.run_grid(fresh_fleet(), self.GRID)
        seq_fleet = fresh_fleet()
        seq = profiler.run_grid(seq_fleet, self.GRID, megakernel=False)
        assert seq == fused

    def test_empty_grid_is_a_no_op(self):
        profiler = FleetProfiler(iterations=1)
        fleet = fresh_fleet()
        before = chip_end_state(fleet)
        assert profiler.run_grid(fleet, ()) == ()
        assert chip_end_state(fleet) == before

    def test_trefi_prechecked_before_any_state_changes(self):
        profiler = FleetProfiler(iterations=1)
        fleet = fresh_fleet()
        before = chip_end_state(fleet)
        bad = self.GRID + (Conditions(fleet.max_trefi_s * 4.0, temperature=45.0),)
        with pytest.raises(ProfilingError):
            profiler.run_grid(fleet, bad)
        # The bad condition is rejected up front: no partial grid ran.
        assert chip_end_state(fleet) == before


@pytest.fixture(scope="module")
def campaign():
    return CharacterizationCampaign(
        chips_per_vendor=2, geometry=MICRO, iterations=1, seed=TEST_SEED
    )


class TestCampaignKnobs:
    def test_knobs_do_not_change_the_summary(self, campaign):
        serial = campaign.run(**CAMPAIGN_KW)
        default_fleet = campaign.run(chips_per_unit=3, **CAMPAIGN_KW)
        no_shm = campaign.run(
            chips_per_unit=3, shared_population=False, **CAMPAIGN_KW
        )
        no_mk = campaign.run(chips_per_unit=3, megakernel=False, **CAMPAIGN_KW)
        neither = campaign.run(
            chips_per_unit=3,
            shared_population=False,
            megakernel=False,
            **CAMPAIGN_KW,
        )
        assert default_fleet == serial
        assert no_shm == serial
        assert no_mk == serial
        assert neither == serial

    def test_pooled_shm_matches_serial(self, campaign):
        serial = campaign.run(**CAMPAIGN_KW)
        pooled = campaign.run(
            backend="process",
            workers=2,
            chips_per_unit=2,
            shared_population=True,
            **CAMPAIGN_KW,
        )
        assert pooled == serial

    def test_shared_population_requires_fleet_path(self, campaign):
        with pytest.raises(ConfigurationError):
            campaign.run(shared_population=True, **CAMPAIGN_KW)
        with pytest.raises(ConfigurationError):
            campaign.run(
                chips_per_unit=1, shared_population=True, **CAMPAIGN_KW
            )

    def test_no_segment_or_sidecar_survives_a_run(self, campaign, tmp_path):
        before = segment_names()
        run_dir = tmp_path / "run"
        campaign.run(run_dir=str(run_dir), chips_per_unit=3, **CAMPAIGN_KW)
        assert segment_names() == before
        assert not (run_dir / SIDECAR_NAME).exists()

    def test_cooperative_cancel_unlinks_the_segment(self, campaign, tmp_path):
        before = segment_names()
        seen = []

        def stop_after_first():
            return len(seen) >= 1

        campaign.run(
            run_dir=str(tmp_path / "run"),
            chips_per_unit=2,
            progress=lambda result, tracker: seen.append(result.unit_id),
            should_stop=stop_after_first,
            **CAMPAIGN_KW,
        )
        assert seen, "cancel must land after at least one drained unit"
        assert segment_names() == before
        assert not (tmp_path / "run" / SIDECAR_NAME).exists()


class TestFleetChunkingEdges:
    def test_chips_per_unit_larger_than_population(self, campaign):
        serial = campaign.run(**CAMPAIGN_KW)
        oversized = campaign.run(chips_per_unit=64, **CAMPAIGN_KW)
        assert oversized == serial

    def test_build_fleet_units_oversized_makes_one_chunk(self):
        units = build_chip_units(
            chips_per_vendor=1,
            geometry=MICRO,
            iterations=1,
            seed=TEST_SEED,
            intervals_s=(0.512,),
            temperatures_c=(45.0,),
            vendor_names=("A", "B", "C"),
        )
        chunks = build_fleet_units(units, chips_per_unit=99)
        assert len(chunks) == 1
        assert [m["unit_id"] for m in chunks[0].payload["members"]] == [
            u.unit_id for u in units
        ]

    def test_trailing_single_chip_chunk_round_trips_resume(
        self, campaign, tmp_path
    ):
        """6 chips at chips_per_unit=5 leaves a 1-chip trailing chunk; the
        run directory it writes must resume under any other chunking (the
        fingerprint covers the workload, not the dispatch)."""
        run_dir = str(tmp_path / "run")
        full = campaign.run(run_dir=run_dir, chips_per_unit=5, **CAMPAIGN_KW)
        results_path = tmp_path / "run" / "results.jsonl"
        rows = results_path.read_text().splitlines()
        assert len(rows) == 6  # per-chip rows regardless of chunking
        results_path.write_text("\n".join(rows[:5]) + "\n")
        resumed = campaign.run(
            run_dir=run_dir,
            resume=True,
            chips_per_unit=2,
            shared_population=False,
            **CAMPAIGN_KW,
        )
        assert resumed == full


KILL9_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.analysis.campaign import CharacterizationCampaign
    from repro.dram.geometry import ChipGeometry

    run_dir = sys.argv[1]
    campaign = CharacterizationCampaign(
        chips_per_vendor=2,
        geometry=ChipGeometry.from_capacity_gigabits(1.0 / 64.0),
        iterations=1,
        seed=1234,
    )

    def progress(result, tracker):
        print("UNIT", result.unit_id, flush=True)

    campaign.run(
        intervals_s=(0.512, 1.024),
        temperatures_c=(45.0, 55.0),
        run_dir=run_dir,
        chips_per_unit=2,
        progress=progress,
    )
    print("DONE", flush=True)
    """
)


@pytest.mark.slow
def test_kill9_leaves_no_tracked_leak_and_resumes_identically(campaign, tmp_path):
    """SIGKILL mid-run: the segment survives (by design -- only the sidecar
    knows about it), the next open of the run directory reclaims it, and the
    resumed campaign is byte-identical to an uninterrupted one."""
    reference = campaign.run(**CAMPAIGN_KW)

    before = segment_names()
    run_dir = tmp_path / "run"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", KILL9_SCRIPT, str(run_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    # Kill as soon as the first unit lands: mid-run, segment live.
    deadline = time.monotonic() + 120.0
    saw_unit = False
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("UNIT"):
            saw_unit = True
            break
        if line == "" and proc.poll() is not None:
            break
    assert saw_unit, "child never made progress"
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    stderr = proc.stderr.read()
    proc.stdout.close()
    proc.stderr.close()

    # The kill left the sidecar behind, and no resource_tracker noise.
    assert (run_dir / SIDECAR_NAME).exists()
    assert "leaked shared_memory" not in stderr
    leaked = segment_names() - before
    assert len(leaked) <= 1  # at most the one segment the sidecar records

    resumed = campaign.run(
        run_dir=str(run_dir), resume=True, chips_per_unit=2, **CAMPAIGN_KW
    )
    assert resumed == reference
    # Resume reclaimed the stale segment and unlinked its own.
    assert segment_names() == before
    assert not (run_dir / SIDECAR_NAME).exists()


@pytest.mark.slow
def test_service_cancel_unlinks_segments(tmp_path):
    """A cancelled fleet job must not leak its population segment across
    tenants sharing the service."""
    import asyncio

    from repro.service import CANCELLED, CampaignJobSpec, JobManager

    before = segment_names()

    async def scenario():
        manager = JobManager(tmp_path, pool_workers=0, max_running=1)
        await manager.start()
        try:
            spec = CampaignJobSpec(
                chips_per_vendor=2,
                capacity_gbit=1.0,
                iterations=2,
                intervals_s=(0.512, 1.024, 2.048),
                temperatures_c=(45.0, 55.0),
                fast_path=False,
                chips_per_unit=2,
                shared_population=True,
            )
            record = await manager.submit("acme", spec)
            deadline = time.monotonic() + 60.0
            while True:
                snap = manager.job(record.job_id)
                if snap.progress.get("completed", 0) >= 1:
                    break
                assert time.monotonic() < deadline, "job never made progress"
                await asyncio.sleep(0.01)
            await manager.cancel(record.job_id)
            deadline = time.monotonic() + 60.0
            while manager.job(record.job_id).state != CANCELLED:
                assert time.monotonic() < deadline
                await asyncio.sleep(0.01)
            return manager.job(record.job_id)
        finally:
            await manager.shutdown()

    record = asyncio.run(scenario())
    assert record.state == CANCELLED
    assert segment_names() == before
    assert not (Path(record.run_dir) / SIDECAR_NAME).exists()
