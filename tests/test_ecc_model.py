"""Unit tests for the binomial UBER/RBER model (Table 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.ecc.model import (
    CONSUMER_UBER,
    ECC2,
    NO_ECC,
    SECDED,
    EccStrength,
    tolerable_bit_errors,
    tolerable_rber,
    uber,
    uncorrectable_word_probability,
)
from repro.errors import ConfigurationError

GIB = 1 << 30


class TestUberModel:
    def test_no_ecc_uber_approximately_rber(self):
        """With no correction, any failing bit is uncorrectable."""
        assert uber(NO_ECC, 1e-12) == pytest.approx(1e-12, rel=0.01)

    def test_uber_zero_at_zero_rber(self):
        assert uber(SECDED, 0.0) == 0.0

    def test_uber_monotone_in_rber(self):
        values = [uber(SECDED, r) for r in (1e-10, 1e-8, 1e-6, 1e-4)]
        assert values == sorted(values)

    def test_stronger_ecc_lower_uber(self):
        rber = 1e-6
        assert uber(ECC2, rber) < uber(SECDED, rber) < uber(NO_ECC, rber)

    def test_invalid_rber_rejected(self):
        with pytest.raises(ConfigurationError):
            uncorrectable_word_probability(SECDED, 1.5)

    @given(st.floats(min_value=1e-12, max_value=1e-3))
    def test_uber_bounded_by_word_probability(self, rber):
        assert uber(SECDED, rber) <= uncorrectable_word_probability(SECDED, rber)


class TestTable1:
    """Pinned to the paper's Table 1 (UBER = 1e-15)."""

    def test_no_ecc_tolerable_rber(self):
        assert tolerable_rber(NO_ECC, CONSUMER_UBER) == pytest.approx(1.0e-15, rel=0.01)

    def test_secded_tolerable_rber(self):
        assert tolerable_rber(SECDED, CONSUMER_UBER) == pytest.approx(3.8e-9, rel=0.05)

    def test_ecc2_tolerable_rber(self):
        assert tolerable_rber(ECC2, CONSUMER_UBER) == pytest.approx(6.9e-7, rel=0.05)

    @pytest.mark.parametrize(
        "size_gib,expected",
        [(0.5, 16.3), (1, 32.6), (2, 65.3), (4, 130.6), (8, 261.1)],
    )
    def test_secded_tolerable_bit_errors(self, size_gib, expected):
        count = tolerable_bit_errors(SECDED, int(size_gib * GIB), CONSUMER_UBER)
        assert count == pytest.approx(expected, rel=0.05)

    def test_ecc2_512mb_about_3000(self):
        count = tolerable_bit_errors(ECC2, GIB // 2, CONSUMER_UBER)
        assert count == pytest.approx(3.0e3, rel=0.05)

    def test_no_ecc_2gb_tiny(self):
        count = tolerable_bit_errors(NO_ECC, 2 * GIB, CONSUMER_UBER)
        assert count == pytest.approx(1.7e-5, rel=0.05)


class TestInversion:
    @pytest.mark.parametrize("ecc", [NO_ECC, SECDED, ECC2])
    @pytest.mark.parametrize("target", [1e-15, 1e-17, 1e-12])
    def test_tolerable_rber_inverts_uber(self, ecc, target):
        rber = tolerable_rber(ecc, target)
        assert uber(ecc, rber) == pytest.approx(target, rel=0.01)

    def test_stricter_target_smaller_rber(self):
        assert tolerable_rber(SECDED, 1e-17) < tolerable_rber(SECDED, 1e-15)

    def test_invalid_target_rejected(self):
        with pytest.raises(ConfigurationError):
            tolerable_rber(SECDED, 0.0)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            tolerable_bit_errors(SECDED, 0)


class TestEccStrengthValidation:
    def test_negative_correctable_rejected(self):
        with pytest.raises(ConfigurationError):
            EccStrength(name="bad", word_bits=72, correctable=-1)

    def test_correctable_beyond_word_rejected(self):
        with pytest.raises(ConfigurationError):
            EccStrength(name="bad", word_bits=8, correctable=8)
