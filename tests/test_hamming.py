"""Unit and property tests for the SECDED Hamming codec."""

import pytest
from hypothesis import given, strategies as st

from repro.ecc.hamming import DecodeStatus, HammingSECDED
from repro.errors import EccError

CODEC64 = HammingSECDED(64)


class TestStructure:
    def test_64_bit_code_is_72_bits(self):
        """The classic (72, 64) SECDED layout."""
        assert CODEC64.codeword_bits == 72
        assert CODEC64.hamming_check_bits == 7

    def test_8_bit_code_is_13_bits(self):
        codec = HammingSECDED(8)
        assert codec.codeword_bits == 13  # 8 data + 4 hamming + 1 overall

    def test_invalid_width_rejected(self):
        with pytest.raises(EccError):
            HammingSECDED(0)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data", [0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEF00D, 0x5555555555555555]
    )
    def test_encode_decode_identity(self, data):
        result = CODEC64.decode(CODEC64.encode(data))
        assert result.status is DecodeStatus.OK
        assert result.data == data

    def test_data_too_wide_rejected(self):
        with pytest.raises(EccError):
            CODEC64.encode(1 << 64)

    def test_codeword_too_wide_rejected(self):
        with pytest.raises(EccError):
            CODEC64.decode(1 << 72)

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_roundtrip_property(self, data):
        result = CODEC64.decode(CODEC64.encode(data))
        assert result.status is DecodeStatus.OK
        assert result.data == data


class TestSingleErrorCorrection:
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=71),
    )
    def test_any_single_flip_corrected(self, data, bit):
        word = CODEC64.flip(CODEC64.encode(data), bit)
        result = CODEC64.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data

    def test_corrected_bit_reported(self):
        word = CODEC64.encode(0x1234)
        flipped = CODEC64.flip(word, 9)
        result = CODEC64.decode(flipped)
        assert result.corrected_bit == 9

    def test_overall_parity_bit_flip_corrected(self):
        word = CODEC64.flip(CODEC64.encode(42), 0)
        result = CODEC64.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.corrected_bit == 0
        assert result.data == 42


class TestDoubleErrorDetection:
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=71),
        st.integers(min_value=0, max_value=71),
    )
    def test_any_double_flip_detected(self, data, bit1, bit2):
        if bit1 == bit2:
            return
        word = CODEC64.flip(CODEC64.flip(CODEC64.encode(data), bit1), bit2)
        result = CODEC64.decode(word)
        assert result.status is DecodeStatus.DETECTED

    def test_flip_out_of_range_rejected(self):
        with pytest.raises(EccError):
            CODEC64.flip(0, 72)


class TestSmallCodec:
    """Exhaustive checks are feasible on a narrow codec."""

    CODEC = HammingSECDED(4)

    def test_exhaustive_single_correction(self):
        for data in range(16):
            word = self.CODEC.encode(data)
            for bit in range(self.CODEC.codeword_bits):
                result = self.CODEC.decode(self.CODEC.flip(word, bit))
                assert result.status is DecodeStatus.CORRECTED
                assert result.data == data

    def test_exhaustive_double_detection(self):
        for data in (0, 5, 10, 15):
            word = self.CODEC.encode(data)
            n = self.CODEC.codeword_bits
            for bit1 in range(n):
                for bit2 in range(bit1 + 1, n):
                    flipped = self.CODEC.flip(self.CODEC.flip(word, bit1), bit2)
                    assert self.CODEC.decode(flipped).status is DecodeStatus.DETECTED
