"""Unit tests for Algorithm 1 (brute-force profiling)."""

import pytest

from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.core.metrics import evaluate
from repro.dram.commands import Command
from repro.errors import ConfigurationError, ProfilingError
from repro.patterns import CHECKERBOARD, SOLID_ZERO, STANDARD_PATTERNS


class TestConfiguration:
    def test_default_patterns_are_standard(self):
        assert BruteForceProfiler().patterns == STANDARD_PATTERNS

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            BruteForceProfiler(iterations=0)

    def test_empty_patterns_rejected(self):
        with pytest.raises(ConfigurationError):
            BruteForceProfiler(patterns=())

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            BruteForceProfiler(idle_between_iterations_s=-1.0)


class TestAlgorithm1:
    def test_profile_records_all_passes(self, chip, target_conditions):
        profiler = BruteForceProfiler(iterations=2)
        profile = profiler.run(chip, target_conditions)
        assert len(profile.records) == 2 * len(STANDARD_PATTERNS)
        assert profile.iterations == 2
        assert profile.patterns == tuple(p.key for p in STANDARD_PATTERNS)

    def test_command_sequence_matches_algorithm_1(self, chip, target_conditions):
        """write -> disable -> wait -> enable -> read, per pattern per iteration."""
        BruteForceProfiler(patterns=(CHECKERBOARD,), iterations=2).run(chip, target_conditions)
        kinds = [r.command for r in chip.trace]
        expected_pass = [
            Command.WRITE_PATTERN,
            Command.REFRESH_DISABLE,
            Command.WAIT,
            Command.REFRESH_ENABLE,
            Command.READ_COMPARE,
        ]
        assert kinds == expected_pass * 2
        chip.trace.verify_protocol()

    def test_runtime_matches_eq9_structure(self, chip, target_conditions):
        """Runtime = (t_REFI + T_wr + T_rd) * N_dp * N_it (Eq 9)."""
        profiler = BruteForceProfiler(patterns=(CHECKERBOARD, SOLID_ZERO), iterations=3)
        profile = profiler.run(chip, target_conditions)
        per_pass = target_conditions.trefi + 2 * chip.pattern_io_seconds
        assert profile.runtime_seconds == pytest.approx(per_pass * 2 * 3)

    def test_idle_gap_extends_runtime(self, chip_factory, target_conditions):
        """N iterations charge exactly N - 1 idle gaps, none trailing.

        Regression test for the runtime-accounting bug where the gap was
        also charged after the final iteration, inflating runtime_seconds
        by one gap per run and skewing the Eq-9 comparisons.
        """
        fast = BruteForceProfiler(patterns=(CHECKERBOARD,), iterations=2)
        slow = BruteForceProfiler(
            patterns=(CHECKERBOARD,), iterations=2, idle_between_iterations_s=100.0
        )
        t_fast = fast.run(chip_factory(), target_conditions).runtime_seconds
        t_slow = slow.run(chip_factory(), target_conditions).runtime_seconds
        assert t_slow == pytest.approx(t_fast + 100.0)

    def test_two_iteration_runtime_pinned_with_idle_gap(self, chip_factory, target_conditions):
        """runtime_seconds for 2 iterations is exactly 2 passes + 1 gap."""
        chip = chip_factory()
        idle = 37.5
        profiler = BruteForceProfiler(
            patterns=(CHECKERBOARD,), iterations=2, idle_between_iterations_s=idle
        )
        profile = profiler.run(chip, target_conditions)
        per_pass = target_conditions.trefi + 2 * chip.pattern_io_seconds
        assert profile.runtime_seconds == pytest.approx(2 * per_pass + idle)

    def test_no_idle_gap_after_quiet_streak_stop(self, chip_factory, target_conditions):
        """A quiet-streak stop ends the run without charging another gap."""
        chip = chip_factory()
        idle = 50.0
        profiler = BruteForceProfiler(
            patterns=(CHECKERBOARD,),
            iterations=10,
            idle_between_iterations_s=idle,
            stop_after_quiet_iterations=2,
        )
        profile = profiler.run(chip, target_conditions)
        assert profile.iterations < 10
        per_pass = target_conditions.trefi + 2 * chip.pattern_io_seconds
        expected = profile.iterations * per_pass + (profile.iterations - 1) * idle
        assert profile.runtime_seconds == pytest.approx(expected)

    def test_profile_target_defaults_to_profiling_conditions(self, chip, target_conditions):
        profile = BruteForceProfiler(iterations=1).run(chip, target_conditions)
        assert profile.target_conditions == target_conditions
        assert not profile.is_reach_profile

    def test_interval_beyond_device_rejected(self, chip):
        with pytest.raises(ProfilingError):
            BruteForceProfiler(iterations=1).run(chip, Conditions(trefi=50.0))

    def test_more_iterations_discover_more(self, chip_factory, target_conditions):
        few = BruteForceProfiler(iterations=1).run(chip_factory(), target_conditions)
        many = BruteForceProfiler(iterations=8).run(chip_factory(), target_conditions)
        assert len(many) >= len(few)

    def test_coverage_improves_with_iterations(self, chip_factory, target_conditions):
        """Observation: brute force needs many iterations for high coverage."""
        chip = chip_factory()
        oracle = set(chip.oracle_failing_set(target_conditions).tolist())
        profile = BruteForceProfiler(iterations=8).run(chip, target_conditions)
        after_1 = evaluate(profile.cells_after_iterations(1), oracle)
        after_8 = evaluate(profile.cells_after_iterations(8), oracle)
        assert after_8.coverage >= after_1.coverage
        assert after_8.coverage > 0.8

    def test_records_observed_counts_include_repeats(self, chip, target_conditions):
        profile = BruteForceProfiler(iterations=3).run(chip, target_conditions)
        for rec in profile.records:
            assert rec.observed_count >= rec.new_count

    def test_mechanism_label(self, chip, target_conditions):
        profile = BruteForceProfiler(iterations=1).run(chip, target_conditions)
        assert profile.mechanism == "brute-force"
