"""Coverage of small public APIs not exercised elsewhere."""

import pytest

from repro.clock import SimClock
from repro.conditions import Conditions, ReachDelta
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.module import DRAMModule
from repro.dram.vendor import VENDOR_B
from repro.errors import ConfigurationError
from repro.infra import TestBed as InfraTestBed
from repro.infra.chamber import ThermalChamber

from conftest import TINY_GEOMETRY, TEST_SEED


class TestConditionsOrdering:
    def test_ordering_by_interval_first(self):
        assert Conditions(0.5, 55.0) < Conditions(1.0, 40.0)

    def test_ordering_by_temperature_second(self):
        assert Conditions(1.0, 45.0) < Conditions(1.0, 50.0)

    def test_sortable(self):
        points = [Conditions(1.0, 50.0), Conditions(0.5, 45.0), Conditions(1.0, 45.0)]
        ordered = sorted(points)
        assert ordered[0].trefi == 0.5
        assert ordered[-1].temperature == 50.0


class TestModuleProperties:
    def test_max_trefi_is_min_across_chips(self):
        clock = SimClock()
        chips = [
            SimulatedDRAMChip(
                geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=i,
                clock=clock, max_trefi_s=max_t,
            )
            for i, max_t in enumerate((2.6, 1.5))
        ]
        module = DRAMModule(chips)
        assert module.max_trefi_s == pytest.approx(1.5)

    def test_temperature_reads_first_chip(self):
        module = DRAMModule.build(n_chips=2, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        module.set_temperature(50.0)
        assert module.temperature_c == pytest.approx(50.0)

    def test_repr_mentions_capacity(self):
        module = DRAMModule.build(n_chips=2, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        assert "chips=2" in repr(module)


class TestChipIntrospection:
    def test_repr(self, chip):
        text = repr(chip)
        assert "vendor=B" in text

    def test_refresh_enabled_flag_tracks_state(self, chip):
        assert chip.refresh_enabled
        chip.disable_refresh()
        assert not chip.refresh_enabled
        chip.enable_refresh()
        assert chip.refresh_enabled

    def test_sync_is_idempotent(self, chip):
        chip.clock.advance(100.0)
        chip.sync()
        count = chip.vrt.episode_count
        chip.sync()
        assert chip.vrt.episode_count == count


class TestVendorHelpers:
    def test_expected_failures_scales_with_bits(self):
        conditions = Conditions(trefi=1.024, temperature=45.0)
        one = VENDOR_B.expected_failures(conditions, 1 << 30)
        four = VENDOR_B.expected_failures(conditions, 4 << 30)
        assert four == pytest.approx(4 * one)

    def test_retention_temp_coeff_positive_small(self):
        assert 0.0 < VENDOR_B.retention_temp_coeff < 0.2


class TestInfraConstruction:
    def test_testbed_rejects_foreign_chamber_clock(self):
        chamber = ThermalChamber(clock=SimClock())
        with pytest.raises(ConfigurationError):
            InfraTestBed(chamber=chamber, clock=SimClock())

    def test_chamber_custom_step(self):
        chamber = ThermalChamber()
        t0 = chamber.clock.now
        chamber.step(dt_s=2.5)
        assert chamber.clock.now - t0 == pytest.approx(2.5)

    def test_chamber_bad_period_rejected(self):
        with pytest.raises(ConfigurationError):
            ThermalChamber(control_period_s=0.0)


class TestReachDeltaStr:
    def test_renders_both_axes(self):
        text = str(ReachDelta(delta_trefi=0.25, delta_temperature=5.0))
        assert "250" in text and "5.0" in text
