"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main

TINY_ARGS = ["--capacity-gbit", "0.0625", "--seed", "7"]


class TestCli:
    def test_demo(self, capsys):
        assert main(TINY_ARGS + ["demo"]) == 0
        out = capsys.readouterr().out
        assert "brute force" in out
        assert "speedup" in out

    def test_profile_brute(self, capsys):
        assert main(TINY_ARGS + ["profile", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "brute-force profiling" in out
        assert "vs oracle" in out

    def test_profile_reach(self, capsys):
        assert main(TINY_ARGS + ["profile", "--reach", "0.25", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "reach profiling" in out

    def test_plan_feasible(self, capsys):
        assert main(TINY_ARGS + ["plan", "--trefi", "1.024"]) == 0
        out = capsys.readouterr().out
        assert "feasible        : True" in out

    def test_plan_infeasible_exit_code(self, capsys):
        # An FPR ceiling of ~0 rejects every non-zero reach and the zero
        # reach still plans fine, so force infeasibility with a huge target.
        code = main(TINY_ARGS + ["plan", "--trefi", "1.9", "--max-fpr", "0.0001", "--ecc", "No ECC"])
        assert code == 1

    def test_longevity(self, capsys):
        assert main(["longevity", "--capacity-gb", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile longevity" in out

    def test_longevity_infeasible(self, capsys):
        code = main(["longevity", "--capacity-gb", "2", "--ecc", "No ECC"])
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_vendor_selection(self, capsys):
        assert main(["--vendor", "C"] + TINY_ARGS[0:2] + ["longevity"]) == 0

    def test_campaign(self, capsys):
        assert main(TINY_ARGS + ["campaign", "--chips-per-vendor", "1"]) == 0
        out = capsys.readouterr().out
        assert "Campaign over 3 chips" in out
        assert "Temperature coefficients" in out

    def test_campaign_parallel_workers(self, capsys):
        code = main(TINY_ARGS + ["campaign", "--chips-per-vendor", "1", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Campaign over 3 chips" in out

    def test_campaign_run_dir_and_resume(self, tmp_path, capsys):
        run_dir = str(tmp_path / "run")
        args = TINY_ARGS + ["campaign", "--chips-per-vendor", "1", "--run-dir", run_dir]
        assert main(args) == 0
        first = capsys.readouterr().out
        # Relaunching the finished run resumes from the store: every chip is
        # already persisted, and the summary is reproduced identically.
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert (tmp_path / "run" / "results.jsonl").exists()
        assert (tmp_path / "run" / "manifest.json").exists()

    def test_campaign_without_resume_flag_refuses_reuse(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        run_dir = str(tmp_path / "run")
        args = TINY_ARGS + ["campaign", "--chips-per-vendor", "1", "--run-dir", run_dir]
        assert main(args) == 0
        capsys.readouterr()
        with pytest.raises(ConfigurationError, match="--resume"):
            main(args)

    def test_campaign_progress_lines(self, capsys):
        code = main(
            TINY_ARGS + ["campaign", "--chips-per-vendor", "1", "--progress"]
        )
        assert code == 0
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.startswith("[")]
        assert len(lines) == 3  # one per chip
        assert "[3/3]" in lines[-1]
        assert "ETA" in lines[-1]

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
