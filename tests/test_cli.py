"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main

TINY_ARGS = ["--capacity-gbit", "0.0625", "--seed", "7"]


class TestCli:
    def test_demo(self, capsys):
        assert main(TINY_ARGS + ["demo"]) == 0
        out = capsys.readouterr().out
        assert "brute force" in out
        assert "speedup" in out

    def test_profile_brute(self, capsys):
        assert main(TINY_ARGS + ["profile", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "brute-force profiling" in out
        assert "vs oracle" in out

    def test_profile_reach(self, capsys):
        assert main(TINY_ARGS + ["profile", "--reach", "0.25", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "reach profiling" in out

    def test_plan_feasible(self, capsys):
        assert main(TINY_ARGS + ["plan", "--trefi", "1.024"]) == 0
        out = capsys.readouterr().out
        assert "feasible        : True" in out

    def test_plan_infeasible_exit_code(self, capsys):
        # An FPR ceiling of ~0 rejects every non-zero reach and the zero
        # reach still plans fine, so force infeasibility with a huge target.
        code = main(TINY_ARGS + ["plan", "--trefi", "1.9", "--max-fpr", "0.0001", "--ecc", "No ECC"])
        assert code == 1

    def test_longevity(self, capsys):
        assert main(["longevity", "--capacity-gb", "2"]) == 0
        out = capsys.readouterr().out
        assert "profile longevity" in out

    def test_longevity_infeasible(self, capsys):
        code = main(["longevity", "--capacity-gb", "2", "--ecc", "No ECC"])
        assert code == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_vendor_selection(self, capsys):
        assert main(["--vendor", "C"] + TINY_ARGS[0:2] + ["longevity"]) == 0

    def test_campaign(self, capsys):
        assert main(TINY_ARGS + ["campaign", "--chips-per-vendor", "1"]) == 0
        out = capsys.readouterr().out
        assert "Campaign over 3 chips" in out
        assert "Temperature coefficients" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
