"""Tests for temperature-based reach profiling via the thermal chamber."""

import pytest

from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.core.metrics import coverage
from repro.errors import ConfigurationError
from repro.infra import TestBed as InfraTestBed
from repro.infra.thermal_profiling import profile_with_thermal_reach

from conftest import TINY_GEOMETRY, TEST_SEED

TARGET = Conditions(trefi=1.024, temperature=45.0)


def make_bed():
    bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY, seed=TEST_SEED)
    bed.set_ambient(45.0)
    return bed


class TestThermalReach:
    @pytest.fixture(scope="class")
    def report(self):
        return profile_with_thermal_reach(
            make_bed(), TARGET, delta_temperature_c=8.0, iterations=3
        )

    def test_profiles_for_every_chip(self, report):
        assert len(report.profiles) == 3
        for profile in report.profiles.values():
            assert profile.mechanism == "reach-thermal"
            assert profile.target_conditions == TARGET
            assert profile.profiling_conditions.temperature > 50.0

    def test_chamber_restored_afterwards(self):
        bed = make_bed()
        profile_with_thermal_reach(bed, TARGET, delta_temperature_c=8.0, iterations=1)
        assert bed.chamber.setpoint_c == pytest.approx(45.0)
        assert bed.chamber.ambient_c == pytest.approx(45.0, abs=0.5)

    def test_thermal_transitions_cost_time(self, report):
        assert report.heat_up_seconds > 0.0
        assert report.cool_down_seconds > 0.0
        assert 0.0 < report.thermal_overhead_fraction < 1.0

    def test_thermal_reach_achieves_high_coverage(self):
        """The Figure-8 equivalence operationally: heat beats extra wait."""
        bed = make_bed()
        chip = bed.chips_by_vendor()["B"][0]
        truth = BruteForceProfiler(iterations=16).run(chip, TARGET)
        fresh = make_bed()
        report = profile_with_thermal_reach(
            fresh, TARGET, delta_temperature_c=8.0, iterations=5
        )
        hot_profile = report.profiles[fresh.chips_by_vendor()["B"][0].chip_id]
        assert coverage(hot_profile.failing, truth.failing) > 0.97

    def test_zero_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_with_thermal_reach(make_bed(), TARGET, delta_temperature_c=0.0)

    def test_empty_bed_rejected(self):
        from repro.infra import TestBed as Bed

        with pytest.raises(ConfigurationError):
            profile_with_thermal_reach(Bed(), TARGET, delta_temperature_c=5.0)