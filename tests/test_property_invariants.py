"""Cross-cutting property tests of library invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conditions import Conditions, ReachDelta
from repro.core.metrics import coverage, false_positive_rate
from repro.core.profile import RetentionProfile
from repro.dram.vendor import VENDOR_A, VENDOR_B, VENDOR_C
from repro.ecc.model import ECC2, NO_ECC, SECDED, uber


class TestVendorModelProperties:
    @given(
        st.sampled_from([VENDOR_A, VENDOR_B, VENDOR_C]),
        st.floats(min_value=0.064, max_value=4.0),
        st.floats(min_value=0.064, max_value=4.0),
    )
    def test_ber_monotone_in_interval(self, vendor, t1, t2):
        lo, hi = min(t1, t2), max(t1, t2)
        assert vendor.ber(Conditions(trefi=lo)) <= vendor.ber(Conditions(trefi=hi))

    @given(
        st.sampled_from([VENDOR_A, VENDOR_B, VENDOR_C]),
        st.floats(min_value=0.064, max_value=4.0),
        st.floats(min_value=20.0, max_value=60.0),
        st.floats(min_value=20.0, max_value=60.0),
    )
    def test_ber_monotone_in_temperature(self, vendor, trefi, temp1, temp2):
        lo, hi = min(temp1, temp2), max(temp1, temp2)
        assert vendor.ber(Conditions(trefi=trefi, temperature=lo)) <= vendor.ber(
            Conditions(trefi=trefi, temperature=hi)
        )

    @given(
        st.sampled_from([VENDOR_A, VENDOR_B, VENDOR_C]),
        st.floats(min_value=0.1, max_value=3.0),
        st.floats(min_value=0.5, max_value=64.0),
    )
    def test_vrt_rate_superlinear(self, vendor, trefi, capacity):
        """Doubling the interval multiplies the rate by more than 2 (b > 1)."""
        single = vendor.vrt_arrival_rate_per_hour(trefi, capacity)
        doubled = vendor.vrt_arrival_rate_per_hour(trefi * 2.0, capacity)
        assert doubled > 2.0 * single


class TestMetricProperties:
    cells = st.frozensets(st.integers(0, 200), max_size=60)

    @given(cells, cells, cells)
    def test_coverage_monotone_in_found(self, a, b, truth):
        """Finding more cells never lowers coverage."""
        assert coverage(a | b, truth) >= coverage(a, truth)

    @given(cells, cells)
    def test_perfect_profile_metrics(self, found, extra):
        truth = found | extra
        assert coverage(truth, truth) == 1.0
        assert false_positive_rate(truth, truth) == 0.0

    @given(cells, cells)
    def test_complement_decomposition(self, found, truth):
        """covered + missed = |truth| exactly."""
        covered = len(found & truth)
        missed = len(truth - found)
        assert covered + missed == len(truth)
        if truth:
            assert coverage(found, truth) == pytest.approx(covered / len(truth))


class TestEccProperties:
    @given(st.floats(min_value=1e-12, max_value=1e-2))
    def test_stronger_ecc_never_worse(self, rber):
        assert uber(ECC2, rber) <= uber(SECDED, rber) <= uber(NO_ECC, rber)

    @given(
        st.floats(min_value=1e-12, max_value=1e-3),
        st.floats(min_value=1.0, max_value=5.0),
    )
    def test_uber_monotone(self, rber, factor):
        assert uber(SECDED, rber) <= uber(SECDED, min(rber * factor, 1.0))


class TestProfileSerializationProperties:
    @given(
        st.frozensets(
            st.one_of(
                st.integers(0, 10**6),
                st.tuples(st.integers(0, 31), st.integers(0, 10**6)),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50)
    def test_mixed_cell_types_roundtrip(self, cells):
        profile = RetentionProfile(
            failing=cells,
            profiling_conditions=Conditions(trefi=1.274),
            target_conditions=Conditions(trefi=1.024),
            patterns=("solid",),
            iterations=1,
            runtime_seconds=1.0,
            started_at=0.0,
        )
        assert RetentionProfile.from_json(profile.to_json()).failing == cells


class TestPlannerProperties:
    @given(
        st.floats(min_value=0.0, max_value=0.4),
        st.floats(min_value=0.0, max_value=0.4),
    )
    @settings(max_examples=30, deadline=None)
    def test_fpr_estimate_monotone_in_reach(self, d1, d2):
        from repro.core.planner import RelaxedRefreshPlanner
        from repro.dram.spd import SPDCharacterization

        spd = SPDCharacterization(
            vendor="B",
            capacity_gigabits=1.0,
            temp_coefficient=0.20,
            ber_anchors=((0.512, 1e-8), (1.024, 1.5e-7), (1.536, 8e-7), (2.048, 2e-6)),
            vrt_scale_per_hour=0.05,
            vrt_exponent=7.94,
            sigma_median_s=0.06,
        )
        planner = RelaxedRefreshPlanner(spd)
        target = Conditions(trefi=1.024)
        lo, hi = min(d1, d2), max(d1, d2)
        assert planner.estimated_false_positive_rate(
            target, ReachDelta(delta_trefi=lo)
        ) <= planner.estimated_false_positive_rate(
            target, ReachDelta(delta_trefi=hi)
        ) + 1e-12
