"""Unit tests for the event-driven memory-controller simulator, including
cross-validation of the closed-form latency model's refresh sensitivity."""

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.memctrl import MemoryControllerSim
from repro.sysperf.trace import MemRequest, TraceGenerator
from repro.sysperf.workloads import benchmark_by_name


def make_trace(name="gcc_like", n=800, seed=42, rate_scale=1.0):
    return TraceGenerator(benchmark_by_name(name), seed=seed).generate(n, rate_scale)


class TestTraceGenerator:
    def test_arrivals_monotone(self):
        trace = make_trace()
        times = [r.arrival_ns for r in trace]
        assert times == sorted(times)

    def test_row_locality_respected(self):
        profile = benchmark_by_name("libquantum_like")  # 0.9 locality
        trace = TraceGenerator(profile, seed=1).generate(2000)
        last_row = {}
        hits = 0
        for request in trace:
            if last_row.get(request.bank) == request.row:
                hits += 1
            last_row[request.bank] = request.row
        assert hits / len(trace) > 0.7

    def test_read_fraction_respected(self):
        trace = make_trace("sphinx_like", n=2000)  # 0.9 reads
        reads = sum(r.is_read for r in trace)
        assert reads / len(trace) == pytest.approx(0.9, abs=0.05)

    def test_rate_scale_compresses_arrivals(self):
        slow = make_trace(n=500, rate_scale=1.0)
        fast = make_trace(n=500, rate_scale=2.0)
        assert fast[-1].arrival_ns < slow[-1].arrival_ns

    def test_zero_requests_rejected(self):
        generator = TraceGenerator(benchmark_by_name("gcc_like"))
        with pytest.raises(ConfigurationError):
            generator.generate(0)


class TestSimulator:
    def test_empty_trace_rejected(self):
        sim = MemoryControllerSim(DRAMTimings())
        with pytest.raises(ConfigurationError):
            sim.run([])

    def test_all_requests_served(self):
        trace = make_trace()
        stats = MemoryControllerSim(DRAMTimings()).run(trace)
        assert stats.served == len(trace)

    def test_latency_at_least_unloaded(self):
        trace = make_trace()
        timings = DRAMTimings()
        stats = MemoryControllerSim(timings).run(trace)
        assert stats.avg_latency_ns >= timings.row_hit_latency_ns

    def test_refresh_inflates_latency(self):
        """Disabling refresh must strictly help -- the end-to-end premise."""
        trace = make_trace("mcf_like", n=1500, rate_scale=2.0)
        timings = DRAMTimings(density_gigabits=64)
        with_refresh = MemoryControllerSim(timings, trefi_s=0.064).run(trace)
        without = MemoryControllerSim(timings, trefi_s=None).run(trace)
        assert with_refresh.avg_latency_ns > without.avg_latency_ns

    def test_longer_refresh_interval_lower_latency(self):
        trace = make_trace("mcf_like", n=1500, rate_scale=2.0)
        timings = DRAMTimings(density_gigabits=64)
        short = MemoryControllerSim(timings, trefi_s=0.064).run(trace)
        long = MemoryControllerSim(timings, trefi_s=0.512).run(trace)
        assert long.avg_latency_ns < short.avg_latency_ns

    def test_row_hit_rate_tracks_profile(self):
        trace = make_trace("libquantum_like", n=1500)
        stats = MemoryControllerSim(DRAMTimings()).run(trace)
        assert stats.row_hit_rate > 0.6

    def test_heavier_load_longer_latency(self):
        light = MemoryControllerSim(DRAMTimings()).run(make_trace("mcf_like", n=800, rate_scale=0.5))
        heavy = MemoryControllerSim(DRAMTimings()).run(make_trace("mcf_like", n=800, rate_scale=3.0))
        assert heavy.avg_latency_ns > light.avg_latency_ns

    def test_closed_form_direction_matches_event_sim(self):
        """The analytic model and the event-driven simulator must agree on
        the *direction and rough scale* of the refresh effect."""
        from repro.sysperf.system import SystemSimulator

        timings = DRAMTimings(density_gigabits=64)
        trace = make_trace("lbm_like", n=2000, rate_scale=1.0)
        sim_64 = MemoryControllerSim(timings, trefi_s=0.064).run(trace)
        sim_off = MemoryControllerSim(timings, trefi_s=None).run(trace)
        event_gain = sim_64.avg_latency_ns / sim_off.avg_latency_ns

        system = SystemSimulator(timings=timings)
        mix = (benchmark_by_name("lbm_like"),)
        model_64 = system.simulate_mix(mix, 0.064).avg_latency_ns
        model_off = system.simulate_mix(mix, None).avg_latency_ns
        model_gain = model_64 / model_off
        assert event_gain > 1.0
        assert model_gain > 1.0
