"""Tests for chip-to-chip process variation."""

import dataclasses

import numpy as np
import pytest

from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.vendor import VENDOR_B

from conftest import TINY_GEOMETRY, TEST_SEED

TARGET = Conditions(trefi=1.024, temperature=45.0)


class TestProcessVariation:
    def test_different_chips_different_tails(self):
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=0)
        b = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=1)
        assert a.expected_ber(TARGET) != b.expected_ber(TARGET)

    def test_same_identity_same_jitter(self):
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=3)
        b = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=3)
        assert a.expected_ber(TARGET) == b.expected_ber(TARGET)
        assert np.array_equal(a.population.indices, b.population.indices)

    def test_variation_matches_configured_sigma(self):
        """Across many chips, the ln-median spread follows the vendor's
        chip_to_chip_ln_sigma."""
        medians = [
            SimulatedDRAMChip(
                geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=i
            ).vendor.retention_ln_median
            for i in range(60)
        ]
        spread = np.std(medians)
        assert spread == pytest.approx(VENDOR_B.chip_to_chip_ln_sigma, rel=0.35)
        assert np.mean(medians) == pytest.approx(VENDOR_B.retention_ln_median, abs=0.05)

    def test_variation_can_be_disabled(self):
        vendor = dataclasses.replace(VENDOR_B, chip_to_chip_ln_sigma=0.0)
        a = SimulatedDRAMChip(vendor=vendor, geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=0)
        b = SimulatedDRAMChip(vendor=vendor, geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=1)
        assert a.expected_ber(TARGET) == b.expected_ber(TARGET)
        assert a.vendor.retention_ln_median == VENDOR_B.retention_ln_median

    def test_failure_counts_track_the_jittered_model(self):
        """A chip's sampled weak tail follows its own (jittered) BER, not
        the vendor nominal."""
        chip = SimulatedDRAMChip(seed=TEST_SEED, chip_id=7)  # 1 Gbit for counts
        expected = chip.expected_ber(Conditions(trefi=2.0)) * chip.capacity_bits
        oracle = chip.oracle_failing_set(Conditions(trefi=2.0), p_min=0.5)
        assert len(oracle) == pytest.approx(expected, rel=0.25)

    def test_spd_reports_the_actual_chip(self):
        """SPD characterization reflects the jittered chip, so the planner
        sees the silicon it will actually drive."""
        from repro.dram.spd import characterize_for_spd

        chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=9)
        spd = characterize_for_spd(chip)
        assert spd.ber_at(1.024) == pytest.approx(chip.expected_ber(TARGET), rel=1e-6)
