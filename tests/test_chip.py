"""Unit tests for the simulated DRAM chip's command-level behaviour."""

import numpy as np
import pytest

from repro.clock import SimClock
from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.commands import Command
from repro.errors import CommandSequenceError, ConfigurationError
from repro.patterns import CHECKERBOARD, RANDOM, SOLID_ZERO

from conftest import TINY_GEOMETRY, TEST_SEED


def run_exposure(chip, pattern, trefi):
    chip.write_pattern(pattern)
    chip.disable_refresh()
    chip.wait(trefi)
    chip.enable_refresh()
    return chip.read_errors()


class TestProtocol:
    def test_read_without_write_rejected(self, chip):
        with pytest.raises(CommandSequenceError):
            chip.read_errors()

    def test_double_disable_rejected(self, chip):
        chip.disable_refresh()
        with pytest.raises(CommandSequenceError):
            chip.disable_refresh()

    def test_double_enable_rejected(self, chip):
        with pytest.raises(CommandSequenceError):
            chip.enable_refresh()

    def test_trace_records_commands(self, chip):
        run_exposure(chip, CHECKERBOARD, 0.5)
        kinds = [r.command for r in chip.trace]
        assert kinds == [
            Command.WRITE_PATTERN,
            Command.REFRESH_DISABLE,
            Command.WAIT,
            Command.REFRESH_ENABLE,
            Command.READ_COMPARE,
        ]

    def test_trace_passes_logic_analyzer(self, chip):
        for _ in range(3):
            run_exposure(chip, CHECKERBOARD, 0.3)
        chip.trace.verify_protocol()

    def test_exposure_window_reconstruction(self, chip):
        run_exposure(chip, CHECKERBOARD, 0.75)
        windows = chip.trace.exposures()
        assert len(windows) == 1
        start, end = windows[0]
        assert end - start == pytest.approx(0.75)

    def test_set_temperature_mid_exposure_rejected(self, chip):
        """Temperature changes are refused while refresh is disabled.

        Regression test: previously the chip silently accepted the change
        and evaluated the *whole* in-progress exposure at the final
        temperature.  The paper's methodology only changes ambient
        temperature between tests.
        """
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(0.5)
        with pytest.raises(CommandSequenceError):
            chip.set_temperature(50.0)
        # The exposure is unharmed and the temperature unchanged.
        assert chip.temperature_c == pytest.approx(45.0)
        chip.enable_refresh()
        chip.read_errors()
        # Between tests (refresh enabled) the change is legal again.
        chip.set_temperature(50.0)
        assert chip.temperature_c == pytest.approx(50.0)


class TestTimeAccounting:
    def test_write_costs_io_time(self, chip):
        t0 = chip.clock.now
        chip.write_pattern(CHECKERBOARD)
        assert chip.clock.now - t0 == pytest.approx(chip.pattern_io_seconds)

    def test_full_pass_time(self, chip):
        t0 = chip.clock.now
        run_exposure(chip, CHECKERBOARD, 1.0)
        expected = 2 * chip.pattern_io_seconds + 1.0
        assert chip.clock.now - t0 == pytest.approx(expected)

    def test_exposure_tracks_refresh_window(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(0.4)
        assert chip.current_exposure() == pytest.approx(0.4)
        chip.enable_refresh()
        assert chip.current_exposure() == pytest.approx(0.4)

    def test_no_exposure_with_refresh_enabled(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.wait(2.0)
        assert chip.current_exposure() == 0.0
        assert len(chip.read_errors()) == 0

    def test_write_restarts_exposure(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(1.0)
        chip.write_pattern(CHECKERBOARD)  # restores cells
        chip.wait(0.2)
        assert chip.current_exposure() == pytest.approx(0.2)

    def test_read_restores_cells(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(1.0)
        chip.read_errors()
        # Exposure restarted by the read-out.
        assert chip.current_exposure() == pytest.approx(0.0, abs=1e-9)


class TestFailureBehaviour:
    def test_no_failures_at_tiny_exposure(self, chip):
        errors = run_exposure(chip, CHECKERBOARD, 0.001)
        assert len(errors) == 0

    def test_failures_grow_with_exposure(self, chip_factory):
        lo = len(run_exposure(chip_factory(), CHECKERBOARD, 0.512))
        hi = len(run_exposure(chip_factory(), CHECKERBOARD, 2.048))
        assert hi > lo

    def test_failures_grow_with_temperature(self, chip_factory):
        cool = chip_factory()
        hot = chip_factory()
        hot.set_temperature(55.0)
        n_cool = len(run_exposure(cool, CHECKERBOARD, 1.024))
        n_hot = len(run_exposure(hot, CHECKERBOARD, 1.024))
        assert n_hot > n_cool

    def test_failure_count_near_expected_ber(self, chip):
        conditions = Conditions(trefi=2.048, temperature=45.0)
        observed = len(run_exposure(chip, CHECKERBOARD, 2.048))
        expected = chip.expected_ber(conditions) * chip.capacity_bits
        # One pattern sees a DPD-weakened subset of the worst-case tail.
        assert 0.1 * expected < observed < 2.5 * expected

    def test_errors_sorted_unique_in_range(self, chip):
        errors = run_exposure(chip, CHECKERBOARD, 2.0)
        assert np.all(np.diff(errors) > 0)
        assert errors.min() >= 0 and errors.max() < chip.capacity_bits

    def test_exposure_beyond_max_trefi_rejected(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(chip.max_trefi_s + 1.0)
        chip.enable_refresh()
        with pytest.raises(ConfigurationError):
            chip.read_errors()

    def test_reads_are_stochastic_for_marginal_cells(self, chip):
        """Repeated identical exposures do not observe identical sets."""
        sets = []
        for _ in range(6):
            sets.append(frozenset(run_exposure(chip, CHECKERBOARD, 1.024).tolist()))
        assert len(set(sets)) > 1


class TestOracle:
    def test_oracle_monotone_in_interval(self, chip):
        small = chip.oracle_failing_set(Conditions(trefi=0.512))
        large = chip.oracle_failing_set(Conditions(trefi=2.0))
        assert set(small.tolist()) <= set(large.tolist())
        assert len(large) > len(small)

    def test_oracle_beyond_horizon_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            chip.oracle_failing_set(Conditions(trefi=chip.max_trefi_s + 0.5))

    def test_observed_failures_mostly_in_oracle(self, chip):
        observed = set(run_exposure(chip, CHECKERBOARD, 1.024).tolist())
        oracle = set(chip.oracle_failing_set(Conditions(trefi=1.024), p_min=0.01).tolist())
        assert len(observed - oracle) <= max(1, len(observed) // 20)


class TestConstruction:
    def test_same_seed_same_population(self):
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        b = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        assert np.array_equal(a.population.indices, b.population.indices)

    def test_different_chip_id_different_population(self):
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=0)
        b = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, chip_id=1)
        assert not np.array_equal(a.population.indices, b.population.indices)

    def test_shared_clock(self):
        clock = SimClock()
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, clock=clock)
        a.write_pattern(CHECKERBOARD)
        assert clock.now > 0.0

    def test_temperature_above_max_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            chip.set_temperature(90.0)

    def test_initial_temperature_above_max_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulatedDRAMChip(geometry=TINY_GEOMETRY, temperature_c=80.0, max_temperature_c=55.0)

    def test_weak_cell_count_scales_with_capacity(self):
        small = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=1)
        assert small.weak_cell_count > 0
        assert small.weak_cell_count < small.capacity_bits


class TestRandomPattern:
    def test_random_pattern_explores_alignments(self, chip):
        """Random data discovers cells a fixed pattern misses (Observation 3)."""
        fixed_cells = set()
        random_cells = set()
        for _ in range(8):
            fixed_cells.update(run_exposure(chip, CHECKERBOARD, 1.5).tolist())
        for _ in range(8):
            random_cells.update(run_exposure(chip, RANDOM, 1.5).tolist())
        assert len(random_cells - fixed_cells) > 0
