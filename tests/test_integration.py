"""Cross-module integration tests: the full REAPER story end to end."""

import numpy as np
import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core import (
    BruteForceProfiler,
    OnlineProfilingScheduler,
    REAPER,
    ReachProfiler,
    RetentionProfile,
    evaluate,
    longevity_for_system,
)
from repro.dram import DRAMModule, SimulatedDRAMChip
from repro.dram.vendor import VENDOR_B
from repro.ecc import EccScrubber, SECDED
from repro.ecc.model import tolerable_bit_errors
from repro.infra import TestBed as InfraTestBed
from repro.mitigation import ArchShield, RAIDR, SECRET

from conftest import TINY_GEOMETRY, TEST_SEED

TARGET = Conditions(trefi=1.024, temperature=45.0)


class TestFullOnlineLoop:
    """REAPER + mitigation + scheduler over simulated operating days."""

    def test_archshield_deployment(self, chip):
        shield = ArchShield(capacity_bits=chip.capacity_bits)
        estimate = longevity_for_system(
            VENDOR_B, chip.capacity_bits // 8, SECDED, TARGET, coverage=0.99
        )
        reaper = REAPER(chip, shield, TARGET, iterations=2)
        scheduler = OnlineProfilingScheduler(reaper, estimate, safety_factor=0.5)
        report = scheduler.run_for(5 * 86400.0)
        assert len(report.rounds) >= 2
        assert shield.known_cell_count >= len(report.rounds[0].profile)
        assert 0.0 < report.profiling_fraction < 0.2

    def test_raidr_deployment(self, chip):
        raidr = RAIDR(
            total_rows=chip.geometry.total_rows,
            bits_per_row=chip.geometry.bits_per_row,
            relaxed_interval_s=TARGET.trefi,
        )
        reaper = REAPER(chip, raidr, TARGET, iterations=2)
        reaper.profile_and_update()
        assert raidr.bin_row_count(0) > 0
        # Relaxing refresh must save most refresh operations despite the
        # conservative bin.
        assert raidr.refresh_savings_fraction() > 0.8

    def test_secret_sized_by_longevity_analysis(self, chip):
        """Use the analysis stack to size the spare pool, then deploy."""
        expected = VENDOR_B.expected_failures(
            Conditions(trefi=TARGET.trefi + 0.25, temperature=45.0), chip.capacity_bits
        )
        secret = SECRET(spare_cells=int(expected * 4) + 64)
        reaper = REAPER(chip, secret, TARGET, iterations=2)
        record = reaper.profile_and_update()
        assert secret.spares_used == len(record.profile)


class TestProfilerComparison:
    """The paper's three-way comparison on one chip population."""

    def test_reach_dominates_scrubbing_in_coverage(self, chip_factory):
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), TARGET)
        reach = ReachProfiler(iterations=5).run(chip_factory(), TARGET)
        scrub = EccScrubber(rounds=16).run(chip_factory(), TARGET)
        reach_eval = evaluate(reach, truth.failing)
        scrub_eval = evaluate(scrub.failing_cells, truth.failing)
        assert reach_eval.coverage > scrub_eval.coverage + 0.05

    def test_reach_on_module(self):
        module = DRAMModule.build(n_chips=2, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        profile = ReachProfiler(iterations=2).run(module, TARGET)
        assert profile.failing, "module-level profiling found nothing"
        assert all(isinstance(cell, tuple) for cell in profile.failing)

    def test_profile_serialization_roundtrip_through_mitigation(self, chip):
        profile = ReachProfiler(iterations=2).run(chip, TARGET)
        restored = RetentionProfile.from_json(profile.to_json())
        shield = ArchShield(capacity_bits=chip.capacity_bits)
        assert shield.ingest(restored.failing) == len(profile.failing)


class TestTestbedCampaign:
    """A miniature version of the paper's 368-chip characterization."""

    def test_multi_vendor_profiling_campaign(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        bed.set_ambient(45.0)
        profiles = bed.profile_all(BruteForceProfiler(iterations=2), TARGET)
        assert set(profiles) == {0, 1, 2}
        # Vendors differ in tail mass, so failure counts should differ.
        counts = [len(p) for p in profiles.values()]
        assert len(set(counts)) > 1

    def test_temperature_sweep_changes_failures(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        profiler = BruteForceProfiler(iterations=2)
        bed.set_ambient(40.0)
        cool = {cid: len(p) for cid, p in bed.profile_all(profiler, TARGET).items()}
        bed.set_ambient(55.0)
        hot = {cid: len(p) for cid, p in bed.profile_all(profiler, TARGET).items()}
        assert sum(hot.values()) > sum(cool.values())


class TestReliabilityGuarantee:
    def test_escaped_failures_fit_ecc_budget(self, chip_factory):
        """The whole point: after reach profiling + mitigation, the cells
        that escaped fit within the SECDED budget of Table 1 (scaled to the
        tiny chip)."""
        chip = chip_factory()
        truth = set(chip.oracle_failing_set(TARGET, p_min=0.2).tolist())
        profile = ReachProfiler(iterations=5).run(chip, TARGET)
        escaped = truth - set(
            int(c) if not isinstance(c, tuple) else c for c in profile.failing
        )
        budget = tolerable_bit_errors(SECDED, chip.capacity_bits // 8) * (
            # The tiny test chip is far below Table-1 sizes; scale by the
            # same per-byte budget the table implies.
            1.0
        )
        # The budget for 8 MiB is < 1 cell, so simply require very few
        # escapees in absolute terms relative to the truth set.
        assert len(escaped) <= max(1, len(truth) // 20) or len(escaped) <= budget + 1
