"""Unit tests for the vendor retention models, including paper anchors."""

import math

import pytest

from repro.conditions import Conditions
from repro.dram.vendor import VENDOR_A, VENDOR_B, VENDOR_C, VENDORS, VendorModel, vendor_by_name
from repro.errors import ConfigurationError


class TestRegistry:
    def test_three_vendors(self):
        assert sorted(VENDORS) == ["A", "B", "C"]

    def test_lookup_by_name(self):
        assert vendor_by_name("B") is VENDOR_B

    def test_unknown_vendor_rejected(self):
        with pytest.raises(ConfigurationError):
            vendor_by_name("Z")


class TestEq1TemperatureCoefficients:
    """Eq 1 of the paper: R_A ~ e^{0.22dT}, R_B ~ e^{0.20dT}, R_C ~ e^{0.26dT}."""

    def test_vendor_coefficients(self):
        assert VENDOR_A.failure_rate_temp_coeff == pytest.approx(0.22)
        assert VENDOR_B.failure_rate_temp_coeff == pytest.approx(0.20)
        assert VENDOR_C.failure_rate_temp_coeff == pytest.approx(0.26)

    def test_failure_rate_scale_is_exponential(self):
        assert VENDOR_B.failure_rate_scale(10.0) == pytest.approx(math.exp(2.0))

    @pytest.mark.parametrize("vendor", list(VENDORS.values()), ids=lambda v: v.name)
    def test_ber_scales_close_to_eq1_near_anchor(self, vendor):
        """+10 degC multiplies the failure rate by ~e^{10k} near ~1 s."""
        base = vendor.ber(Conditions(trefi=1.024, temperature=45.0))
        hot = vendor.ber(Conditions(trefi=1.024, temperature=55.0))
        expected = vendor.failure_rate_scale(10.0)
        assert hot / base == pytest.approx(expected, rel=0.35)

    def test_roughly_10x_per_10_degrees(self):
        """Section 5.1: ~10x failures per +10 degC."""
        base = VENDOR_B.ber(Conditions(trefi=1.024, temperature=45.0))
        hot = VENDOR_B.ber(Conditions(trefi=1.024, temperature=55.0))
        assert 3.0 < hot / base < 30.0


class TestBerModel:
    def test_ber_increases_with_interval(self):
        lo = VENDOR_B.ber(Conditions(trefi=0.512))
        hi = VENDOR_B.ber(Conditions(trefi=2.048))
        assert hi > lo

    def test_ber_increases_with_temperature(self):
        cool = VENDOR_B.ber(Conditions(trefi=1.024, temperature=40.0))
        hot = VENDOR_B.ber(Conditions(trefi=1.024, temperature=50.0))
        assert hot > cool

    def test_ber_negligible_at_jedec_default(self):
        """Essentially no cells fail at the 64 ms JEDEC interval."""
        assert VENDOR_B.ber(Conditions(trefi=0.064)) < 1e-10

    def test_paper_anchor_2464_failures_at_1024ms_2gb(self):
        """Section 6.2.3: ~2464 failures in a 2 GB device at 1024 ms / 45 degC."""
        expected = VENDOR_B.expected_failures(Conditions(trefi=1.024), 16 * (1 << 30))
        assert expected == pytest.approx(2464, rel=0.15)

    def test_fpr_headroom_at_plus_250ms(self):
        """Section 6.1.2: +250 ms reach keeps FPR below ~50%.

        The model-level equivalent: the BER at target+250ms is less than 2x
        the BER at the target, so at most half the reach failures are new.
        """
        base = VENDOR_B.ber(Conditions(trefi=1.024))
        reach = VENDOR_B.ber(Conditions(trefi=1.274))
        assert reach / base < 2.0

    def test_weak_cell_probability_matches_ber(self):
        assert VENDOR_B.weak_cell_probability(1.024, 45.0) == pytest.approx(
            VENDOR_B.ber(Conditions(trefi=1.024, temperature=45.0))
        )


class TestVrtAccumulation:
    def test_anchor_0_73_per_hour_at_1024ms(self):
        """Section 6.2.3: A = 0.73 cells/hour at 1024 ms on a 16 Gbit device."""
        rate = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 16.0, 45.0)
        assert rate == pytest.approx(0.73, rel=0.05)

    def test_anchor_one_cell_per_20s_at_2048ms(self):
        """Figure 3: ~1 new cell / 20 s at 2048 ms on a 16 Gbit device."""
        rate = VENDOR_B.vrt_arrival_rate_per_hour(2.048, 16.0, 45.0)
        assert 3600.0 / rate == pytest.approx(20.0, rel=0.10)

    def test_rate_is_power_law_in_interval(self):
        r1 = VENDOR_B.vrt_arrival_rate_per_hour(1.0, 16.0)
        r2 = VENDOR_B.vrt_arrival_rate_per_hour(2.0, 16.0)
        assert r2 / r1 == pytest.approx(2.0**VENDOR_B.vrt_arrival_exponent)

    def test_rate_scales_linearly_with_capacity(self):
        r1 = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 1.0)
        r16 = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 16.0)
        assert r16 / r1 == pytest.approx(16.0)

    def test_rate_scales_with_temperature(self):
        cool = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 16.0, 45.0)
        hot = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 16.0, 55.0)
        assert hot / cool == pytest.approx(math.exp(2.0))

    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            VENDOR_B.vrt_arrival_rate_per_hour(0.0, 16.0)


class TestValidation:
    def test_bad_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            VendorModel(
                name="X",
                failure_rate_temp_coeff=0.2,
                retention_ln_median=9.0,
                retention_ln_sigma=0.0,
                cell_sigma_ln_median_s=0.06,
                cell_sigma_ln_sigma=0.6,
                vrt_arrival_scale_per_gbit_hour=0.04,
                vrt_arrival_exponent=8.0,
            )

    def test_bad_random_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            VendorModel(
                name="X",
                failure_rate_temp_coeff=0.2,
                retention_ln_median=9.0,
                retention_ln_sigma=1.8,
                cell_sigma_ln_median_s=0.06,
                cell_sigma_ln_sigma=0.6,
                vrt_arrival_scale_per_gbit_hour=0.04,
                vrt_arrival_exponent=8.0,
                random_alignment_cap=1.0,
            )

    def test_retention_scale_at_reference_is_one(self):
        assert VENDOR_B.retention_scale(45.0) == pytest.approx(1.0)

    def test_retention_scale_shrinks_when_hot(self):
        assert VENDOR_B.retention_scale(55.0) < 1.0
        assert VENDOR_B.retention_scale(35.0) > 1.0
