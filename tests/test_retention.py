"""Unit tests for weak-tail retention sampling."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.dram.retention import RetentionSampler, WeakCellSample
from repro.dram.vendor import VENDOR_B
from repro.errors import ConfigurationError

GBIT = 1 << 30


def make_sample(capacity_bits=GBIT, horizon=4.0, seed=7):
    sampler = RetentionSampler(VENDOR_B, rng_mod.derive(seed, "retention-test"))
    return sampler.sample(capacity_bits, horizon)


class TestSampling:
    def test_count_matches_expected_tail(self):
        sample = make_sample()
        expected = GBIT * VENDOR_B.weak_cell_probability(4.0, 45.0)
        assert len(sample) == pytest.approx(expected, rel=0.1)

    def test_all_retention_below_horizon(self):
        sample = make_sample()
        assert np.all(sample.mu_wc_s <= 4.0)
        assert np.all(sample.mu_wc_s > 0.0)

    def test_indices_sorted_unique_in_range(self):
        sample = make_sample()
        assert np.all(np.diff(sample.indices) > 0)
        assert sample.indices[0] >= 0
        assert sample.indices[-1] < GBIT

    def test_sigma_positive_and_bounded(self):
        sample = make_sample()
        assert np.all(sample.sigma_s > 0.0)
        assert np.all(sample.sigma_s <= sample.mu_wc_s / 4.0 + 1e-12)

    def test_susceptibility_in_range(self):
        sample = make_sample()
        assert np.all(sample.susceptibility >= 0.0)
        assert np.all(sample.susceptibility < VENDOR_B.dpd_susceptibility_max)

    def test_vrt_fraction_near_configured(self):
        sample = make_sample()
        assert sample.vrt_flag.mean() == pytest.approx(VENDOR_B.vrt_cell_fraction, abs=0.01)

    def test_deterministic_given_rng(self):
        a = make_sample(seed=11)
        b = make_sample(seed=11)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.mu_wc_s, b.mu_wc_s)

    def test_different_seed_different_sample(self):
        a = make_sample(seed=11)
        b = make_sample(seed=12)
        assert not np.array_equal(a.indices, b.indices)

    def test_larger_horizon_more_cells(self):
        small = make_sample(horizon=2.0)
        large = make_sample(horizon=6.0)
        assert len(large) > len(small)

    def test_tiny_capacity_can_be_empty(self):
        sample = make_sample(capacity_bits=1024, horizon=0.5)
        assert len(sample) == 0
        assert sample.indices.dtype == np.int64

    def test_invalid_capacity_rejected(self):
        sampler = RetentionSampler(VENDOR_B, rng_mod.derive(1, "x"))
        with pytest.raises(ConfigurationError):
            sampler.sample(0, 4.0)

    def test_invalid_horizon_rejected(self):
        sampler = RetentionSampler(VENDOR_B, rng_mod.derive(1, "x"))
        with pytest.raises(ConfigurationError):
            sampler.sample(GBIT, 0.0)

    def test_lognormal_tail_shape(self):
        """Doubling the horizon multiplies the tail mass per the lognormal CDF."""
        sample2 = make_sample(horizon=2.0)
        sample4 = make_sample(horizon=4.0)
        ratio = len(sample4) / max(len(sample2), 1)
        expected = VENDOR_B.weak_cell_probability(4.0, 45.0) / VENDOR_B.weak_cell_probability(2.0, 45.0)
        assert ratio == pytest.approx(expected, rel=0.25)


class TestWeakCellSampleValidation:
    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ConfigurationError):
            WeakCellSample(
                indices=np.arange(3),
                mu_wc_s=np.ones(2),
                sigma_s=np.ones(3),
                susceptibility=np.zeros(3),
                vrt_flag=np.zeros(3, dtype=bool),
                orientation=np.ones(3, dtype=np.uint8),
            )

    def test_len(self):
        sample = make_sample(capacity_bits=GBIT, horizon=2.0)
        assert len(sample) == len(sample.indices)
