"""Unit tests for reach profiling (the paper's contribution)."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.bruteforce import BruteForceProfiler
from repro.core.metrics import evaluate
from repro.core.reach import ReachProfiler
from repro.errors import ConfigurationError, ProfilingError


class TestConfiguration:
    def test_default_reach_is_plus_250ms(self):
        profiler = ReachProfiler()
        assert profiler.reach.delta_trefi == pytest.approx(0.250)

    def test_zero_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachProfiler(iterations=0)

    def test_profiling_conditions_applies_delta(self):
        profiler = ReachProfiler(reach=ReachDelta(delta_trefi=0.25, delta_temperature=5.0))
        reach = profiler.profiling_conditions(Conditions(trefi=1.0, temperature=45.0))
        assert reach.trefi == pytest.approx(1.25)
        assert reach.temperature == pytest.approx(50.0)


class TestRun:
    def test_profile_records_both_condition_sets(self, chip, target_conditions):
        profiler = ReachProfiler(iterations=1)
        profile = profiler.run(chip, target_conditions)
        assert profile.target_conditions == target_conditions
        assert profile.profiling_conditions.trefi == pytest.approx(1.274)
        assert profile.is_reach_profile
        assert profile.mechanism == "reach"

    def test_reach_beyond_device_rejected(self, chip):
        profiler = ReachProfiler(reach=ReachDelta(delta_trefi=10.0), iterations=1)
        with pytest.raises(ProfilingError):
            profiler.run(chip, Conditions(trefi=1.0))

    def test_temperature_reach_sets_and_restores(self, chip_factory):
        chip = chip_factory(max_temperature_c=60.0)
        profiler = ReachProfiler(
            reach=ReachDelta(delta_temperature=5.0), iterations=1
        )
        profiler.run(chip, Conditions(trefi=1.024, temperature=45.0))
        assert chip.temperature_c == pytest.approx(45.0)

    def test_temperature_reach_without_management_rejected(self, chip):
        profiler = ReachProfiler(
            reach=ReachDelta(delta_temperature=5.0),
            iterations=1,
            manage_temperature=False,
        )
        with pytest.raises(ProfilingError):
            profiler.run(chip, Conditions(trefi=1.0, temperature=45.0))


class TestKeyResult:
    """The paper's central claims, at unit-test scale."""

    def test_high_coverage_with_few_iterations(self, chip_factory, target_conditions):
        """Reach profiling with 5 iterations covers the brute-force truth."""
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        reach = ReachProfiler(iterations=5).run(chip_factory(), target_conditions)
        result = evaluate(reach, truth.failing)
        assert result.coverage > 0.98

    def test_reach_is_faster_than_brute_force(self, chip_factory, target_conditions):
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        reach = ReachProfiler(iterations=5).run(chip_factory(), target_conditions)
        speedup = truth.runtime_seconds / reach.runtime_seconds
        assert speedup > 2.0

    def test_false_positives_bounded(self, chip_factory, target_conditions):
        """+250 ms keeps the false positive rate under ~50% (Section 6.1.2)."""
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        reach = ReachProfiler(iterations=5).run(chip_factory(), target_conditions)
        result = evaluate(reach, truth.failing)
        assert result.false_positive_rate < 0.60

    def test_more_aggressive_reach_more_false_positives(self, chip_factory, target_conditions):
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        mild = ReachProfiler(reach=ReachDelta(delta_trefi=0.125), iterations=5).run(
            chip_factory(), target_conditions
        )
        aggressive = ReachProfiler(reach=ReachDelta(delta_trefi=0.5), iterations=5).run(
            chip_factory(max_trefi_s=2.6), target_conditions
        )
        fpr_mild = evaluate(mild, truth.failing).false_positive_rate
        fpr_aggr = evaluate(aggressive, truth.failing).false_positive_rate
        assert fpr_aggr > fpr_mild

    def test_temperature_reach_also_raises_coverage(self, chip_factory, target_conditions):
        """Raising temperature is an alternative reach knob (Observation 4)."""
        truth = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        hot = ReachProfiler(
            reach=ReachDelta(delta_temperature=10.0), iterations=5
        ).run(chip_factory(max_temperature_c=60.0), target_conditions)
        result = evaluate(hot, truth.failing)
        assert result.coverage > 0.95
