"""Unit tests for the command trace / logic-analyzer verification."""

import pytest

from repro.dram.commands import Command, CommandTrace, ProtocolViolation


def trace_of(*steps):
    trace = CommandTrace()
    for time, command in steps:
        trace.append(time, command)
    return trace


class TestVerification:
    def test_empty_trace_valid(self):
        trace_of().verify_protocol()

    def test_legal_sequence_passes(self):
        trace_of(
            (0.0, Command.WRITE_PATTERN),
            (0.1, Command.REFRESH_DISABLE),
            (1.1, Command.WAIT),
            (1.1, Command.REFRESH_ENABLE),
            (1.2, Command.READ_COMPARE),
        ).verify_protocol()

    def test_time_regression_detected(self):
        with pytest.raises(ProtocolViolation):
            trace_of((1.0, Command.WAIT), (0.5, Command.WAIT)).verify_protocol()

    def test_double_disable_detected(self):
        with pytest.raises(ProtocolViolation):
            trace_of(
                (0.0, Command.REFRESH_DISABLE),
                (1.0, Command.REFRESH_DISABLE),
            ).verify_protocol()

    def test_enable_without_disable_detected(self):
        with pytest.raises(ProtocolViolation):
            trace_of((0.0, Command.REFRESH_ENABLE)).verify_protocol()

    def test_read_before_write_detected(self):
        with pytest.raises(ProtocolViolation):
            trace_of((0.0, Command.READ_COMPARE)).verify_protocol()


class TestQueries:
    def test_of_type_filters(self):
        trace = trace_of(
            (0.0, Command.WRITE_PATTERN),
            (0.5, Command.WAIT),
            (1.0, Command.WRITE_PATTERN),
        )
        assert len(trace.of_type(Command.WRITE_PATTERN)) == 2
        assert len(trace.of_type(Command.READ_COMPARE)) == 0

    def test_exposures_reconstructed(self):
        trace = trace_of(
            (0.0, Command.REFRESH_DISABLE),
            (2.0, Command.REFRESH_ENABLE),
            (3.0, Command.REFRESH_DISABLE),
            (3.5, Command.REFRESH_ENABLE),
        )
        assert trace.exposures() == [(0.0, 2.0), (3.0, 3.5)]

    def test_unclosed_exposure_ignored(self):
        trace = trace_of((0.0, Command.REFRESH_DISABLE))
        assert trace.exposures() == []

    def test_len_and_iter(self):
        trace = trace_of((0.0, Command.WAIT), (1.0, Command.WAIT))
        assert len(trace) == 2
        assert [r.time for r in trace] == [0.0, 1.0]
