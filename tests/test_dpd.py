"""Unit tests for the data-pattern-dependence model."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.dram.dpd import DPDModel
from repro.errors import ConfigurationError, ProfilingError
from repro.patterns import CHECKERBOARD, RANDOM, SOLID_ZERO


def make_model(n_cells=500, cap=0.97, seed=3):
    rng = rng_mod.derive(seed, "dpd-test")
    susceptibility = rng.uniform(0.0, 0.3, size=n_cells)
    return DPDModel(susceptibility, rng_mod.derive(seed, "dpd-align"), cap)


class TestAlignment:
    def test_alignment_in_unit_interval(self):
        model = make_model()
        a = model.alignment(CHECKERBOARD, fresh=True)
        assert np.all(a >= 0.0) and np.all(a <= 1.0)

    def test_deterministic_pattern_alignment_cached(self):
        model = make_model()
        a1 = model.alignment(CHECKERBOARD, fresh=True)
        a2 = model.alignment(CHECKERBOARD)
        assert np.array_equal(a1, a2)

    def test_deterministic_pattern_stable_across_writes(self):
        model = make_model()
        a1 = model.alignment(CHECKERBOARD, fresh=True)
        a2 = model.alignment(CHECKERBOARD, fresh=True)
        assert np.array_equal(a1, a2)

    def test_inverse_pattern_has_own_alignment(self):
        model = make_model()
        a = model.alignment(CHECKERBOARD, fresh=True)
        inv = model.alignment(CHECKERBOARD.inverse, fresh=True)
        assert not np.array_equal(a, inv)

    def test_random_pattern_redraws_on_fresh(self):
        model = make_model()
        a1 = model.alignment(RANDOM, fresh=True).copy()
        a2 = model.alignment(RANDOM, fresh=True)
        assert not np.array_equal(a1, a2)

    def test_random_pattern_stable_without_fresh(self):
        model = make_model()
        a1 = model.alignment(RANDOM, fresh=True)
        a2 = model.alignment(RANDOM, fresh=False)
        assert np.array_equal(a1, a2)

    def test_random_alignment_capped(self):
        model = make_model(cap=0.8)
        for _ in range(5):
            a = model.alignment(RANDOM, fresh=True)
            assert np.all(a <= 0.8)

    def test_deterministic_patterns_can_exceed_random_cap(self):
        model = make_model(n_cells=20000, cap=0.5)
        a = model.alignment(SOLID_ZERO, fresh=True)
        assert np.any(a > 0.5)


class TestQueryPurity:
    """Read-only DPD queries must not draw RNG state (the determinism bug)."""

    def test_unwritten_alignment_query_raises(self):
        model = make_model()
        with pytest.raises(ProfilingError):
            model.alignment(CHECKERBOARD)

    def test_unwritten_stochastic_query_raises(self):
        model = make_model()
        with pytest.raises(ProfilingError):
            model.alignment(RANDOM)

    def test_failed_query_does_not_perturb_rng_stream(self):
        """Inspecting an unwritten pattern leaves future draws unchanged."""
        pristine = make_model()
        inspected = make_model()
        with pytest.raises(ProfilingError):
            inspected.alignment(CHECKERBOARD)
        with pytest.raises(ProfilingError):
            inspected.alignment(RANDOM)
        a1 = pristine.alignment(RANDOM, fresh=True)
        a2 = inspected.alignment(RANDOM, fresh=True)
        assert np.array_equal(a1, a2)

    def test_reset_replays_construction_draws(self):
        model = make_model(seed=9)
        first = model.alignment(RANDOM, fresh=True).copy()
        model.alignment(RANDOM, fresh=True)  # advance the stream
        model.reset(rng_mod.derive(9, "dpd-align"))
        with pytest.raises(ProfilingError):
            model.alignment(RANDOM)  # caches were dropped
        assert np.array_equal(model.alignment(RANDOM, fresh=True), first)


class TestEffectiveRetention:
    def test_full_alignment_recovers_worst_case(self):
        model = make_model()
        mu = np.full(500, 2.0)
        out = model.effective_retention(mu, np.ones(500))
        assert np.allclose(out, mu)

    def test_zero_alignment_gives_benign_case(self):
        model = make_model()
        mu = np.full(500, 2.0)
        out = model.effective_retention(mu, np.zeros(500))
        expected = mu / (1.0 - model.susceptibility)
        assert np.allclose(out, expected)
        assert np.all(out >= mu)

    def test_monotone_in_alignment(self):
        """Higher alignment (more adversarial data) means shorter retention."""
        model = make_model()
        mu = np.full(500, 2.0)
        weak = model.effective_retention(mu, np.full(500, 0.9))
        mild = model.effective_retention(mu, np.full(500, 0.1))
        assert np.all(weak <= mild)


class TestValidation:
    def test_bad_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            make_model(cap=1.5)

    def test_bad_susceptibility_rejected(self):
        rng = rng_mod.derive(1, "x")
        with pytest.raises(ConfigurationError):
            DPDModel(np.array([1.0]), rng, 0.9)

    def test_n_cells(self):
        assert make_model(n_cells=42).n_cells == 42
