"""Stateful property testing of the chip command protocol.

Drives a simulated chip through random *legal* command sequences and checks
the invariants a SoftMC-style infrastructure relies on: the command trace
always verifies, the clock never goes backwards, exposures are accounted
exactly, and read-outs never report cells outside the array.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule
from hypothesis import strategies as st

from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.patterns import CHECKERBOARD, RANDOM, SOLID_ZERO

MICRO_GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)
MAX_EXPOSURE = 2.0


class ChipProtocol(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.chip = SimulatedDRAMChip(geometry=MICRO_GEOMETRY, seed=5150)
        self.written = False
        self.refresh_enabled = True
        self.last_clock = self.chip.clock.now

    # ------------------------------------------------------------------
    @rule(pattern=st.sampled_from([CHECKERBOARD, SOLID_ZERO, RANDOM, CHECKERBOARD.inverse]))
    def write(self, pattern):
        self.chip.write_pattern(pattern)
        self.written = True

    @precondition(lambda self: self.refresh_enabled)
    @rule()
    def disable_refresh(self):
        self.chip.disable_refresh()
        self.refresh_enabled = False

    @precondition(lambda self: not self.refresh_enabled)
    @rule()
    def enable_refresh(self):
        self.chip.enable_refresh()
        self.refresh_enabled = True

    @rule(dt=st.floats(min_value=0.001, max_value=0.4))
    def wait(self, dt):
        # Keep exposures within the chip's supported horizon; a real test
        # program has the same obligation.
        if not self.refresh_enabled and self.chip.current_exposure() + dt > MAX_EXPOSURE:
            return
        self.chip.wait(dt)

    @precondition(lambda self: self.written)
    @rule()
    def read(self):
        errors = self.chip.read_errors()
        assert np.all(errors >= 0)
        assert np.all(errors < self.chip.capacity_bits)
        assert np.all(np.diff(errors) > 0)  # sorted unique

    # ------------------------------------------------------------------
    @invariant()
    def trace_always_legal(self):
        self.chip.trace.verify_protocol()

    @invariant()
    def clock_monotone(self):
        assert self.chip.clock.now >= self.last_clock
        self.last_clock = self.chip.clock.now

    @invariant()
    def exposure_consistent(self):
        exposure = self.chip.current_exposure()
        assert exposure >= 0.0
        if self.refresh_enabled or self.chip._disable_time is None:
            # Frozen exposure never exceeds what the protocol allowed.
            assert exposure <= MAX_EXPOSURE + 0.4 + 1e-9


TestChipProtocol = ChipProtocol.TestCase
TestChipProtocol.settings = settings(max_examples=15, stateful_step_count=25, deadline=None)
