"""Unit tests for the Eq-8 end-to-end overhead integration (Figs 11-13)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.overhead import (
    EndToEndEvaluator,
    ProfilerKind,
    profiling_power_mw,
    profiling_time_fraction,
)
from repro.sysperf.workloads import benchmark_by_name, workload_mixes


def heavy_mix():
    return tuple(
        benchmark_by_name(n) for n in ("mcf_like", "lbm_like", "milc_like", "soplex_like")
    )


@pytest.fixture(scope="module")
def evaluator():
    return EndToEndEvaluator(chip_density_gigabits=64)


class TestFig11ProfilingTimeFraction:
    def test_paper_anchor_4h_64gb(self):
        """Section 7.3.1: 4-hour cadence, 64 Gb chips -> ~22.7% brute-force,
        ~9.1% REAPER."""
        brute = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 4 * 3600.0, 64)
        reaper = profiling_time_fraction(ProfilerKind.REAPER, 4 * 3600.0, 64)
        assert brute == pytest.approx(0.227, rel=0.1)
        assert reaper == pytest.approx(0.091, rel=0.1)

    def test_reaper_is_2_5x_cheaper(self):
        brute = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 4 * 3600.0, 32)
        reaper = profiling_time_fraction(ProfilerKind.REAPER, 4 * 3600.0, 32)
        assert brute / reaper == pytest.approx(2.5)

    def test_fraction_shrinks_with_cadence(self):
        fast = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 1 * 3600.0, 64)
        slow = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 64 * 3600.0, 64)
        assert slow < fast

    def test_fraction_grows_with_density(self):
        small = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 4 * 3600.0, 8)
        large = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 4 * 3600.0, 64)
        assert large > small

    def test_ideal_profiler_is_free(self):
        assert profiling_time_fraction(ProfilerKind.IDEAL, 3600.0, 64) == 0.0

    def test_fraction_capped_at_one(self):
        assert profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 1.0, 64) == 1.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 0.0, 64)


class TestFig12ProfilingPower:
    def test_power_shrinks_with_cadence(self):
        fast = profiling_power_mw(ProfilerKind.BRUTE_FORCE, 3600.0, 64)
        slow = profiling_power_mw(ProfilerKind.BRUTE_FORCE, 16 * 3600.0, 64)
        assert slow < fast

    def test_power_grows_with_density(self):
        assert profiling_power_mw(ProfilerKind.BRUTE_FORCE, 3600.0, 64) > profiling_power_mw(
            ProfilerKind.BRUTE_FORCE, 3600.0, 8
        )

    def test_reaper_cheaper_than_brute(self):
        brute = profiling_power_mw(ProfilerKind.BRUTE_FORCE, 3600.0, 64)
        reaper = profiling_power_mw(ProfilerKind.REAPER, 3600.0, 64)
        assert reaper < brute

    def test_ideal_is_free(self):
        assert profiling_power_mw(ProfilerKind.IDEAL, 3600.0, 64) == 0.0


class TestLongevityDrivenCadence:
    def test_interval_shrinks_with_trefi(self, evaluator):
        assert evaluator.reprofile_interval_seconds(1.536) < evaluator.reprofile_interval_seconds(
            1.024
        )

    def test_overhead_negligible_at_short_trefi(self, evaluator):
        assert evaluator.profiling_overhead(ProfilerKind.BRUTE_FORCE, 0.256) < 0.005

    def test_overhead_substantial_at_long_trefi(self, evaluator):
        assert evaluator.profiling_overhead(ProfilerKind.BRUTE_FORCE, 1.536) > 0.2

    def test_reaper_overhead_below_brute(self, evaluator):
        brute = evaluator.profiling_overhead(ProfilerKind.BRUTE_FORCE, 1.280)
        reaper = evaluator.profiling_overhead(ProfilerKind.REAPER, 1.280)
        assert reaper < brute

    def test_no_refresh_has_no_profiling(self, evaluator):
        assert evaluator.profiling_overhead(ProfilerKind.BRUTE_FORCE, None) == 0.0


class TestFig13Evaluation:
    def test_eq8_applies_overhead(self, evaluator):
        ideal = evaluator.evaluate_mix(heavy_mix(), 1.280, ProfilerKind.IDEAL)
        brute = evaluator.evaluate_mix(heavy_mix(), 1.280, ProfilerKind.BRUTE_FORCE)
        expected = (1.0 + ideal.performance_improvement) * (1.0 - brute.profiling_overhead) - 1.0
        assert brute.performance_improvement == pytest.approx(expected)

    def test_ordering_ideal_reaper_brute(self, evaluator):
        """At long intervals: ideal > REAPER > brute force (Figure 13)."""
        mix = heavy_mix()
        values = {
            kind: evaluator.evaluate_mix(mix, 1.280, kind).performance_improvement
            for kind in ProfilerKind
        }
        assert values[ProfilerKind.IDEAL] > values[ProfilerKind.REAPER]
        assert values[ProfilerKind.REAPER] > values[ProfilerKind.BRUTE_FORCE]

    def test_brute_force_degrades_at_very_long_interval(self, evaluator):
        """Brute-force profiling turns refresh relaxation into a net loss at
        very long intervals while REAPER holds up far better -- the paper's
        'previously unreasonable' regime."""
        mix = heavy_mix()
        brute = evaluator.evaluate_mix(mix, 1.536, ProfilerKind.BRUTE_FORCE)
        reaper = evaluator.evaluate_mix(mix, 1.536, ProfilerKind.REAPER)
        assert brute.performance_improvement < 0.0
        assert reaper.performance_improvement > brute.performance_improvement + 0.1

    def test_all_profilers_equal_below_512ms(self, evaluator):
        mix = heavy_mix()
        values = [
            evaluator.evaluate_mix(mix, 0.256, kind).performance_improvement
            for kind in ProfilerKind
        ]
        assert max(values) - min(values) < 0.005

    def test_power_reduction_positive_and_bounded(self, evaluator):
        point = evaluator.evaluate_mix(heavy_mix(), 0.512, ProfilerKind.REAPER)
        assert 0.1 < point.power_reduction < 0.7

    def test_sweep_covers_grid(self, evaluator):
        mixes = workload_mixes(3)
        points = evaluator.sweep(mixes, [0.512, None])
        assert len(points) == 2 * 3 * 3  # intervals x kinds x mixes

    def test_archshield_combination_costs_one_percent(self, evaluator):
        point = evaluator.evaluate_mix(heavy_mix(), 1.024, ProfilerKind.REAPER)
        combined = evaluator.with_archshield(point, archshield_cost=0.01)
        assert combined == pytest.approx(
            (1.0 + point.performance_improvement) * 0.99 - 1.0
        )

    def test_invalid_configs_rejected(self):
        with pytest.raises(ConfigurationError):
            EndToEndEvaluator(n_chips=0)
        with pytest.raises(ConfigurationError):
            EndToEndEvaluator(reprofile_safety_factor=0.0)
        with pytest.raises(ConfigurationError):
            EndToEndEvaluator(reaper_speedup=0.5)
