"""Unit tests for multi-interval RAIDR bin updating."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.errors import ConfigurationError
from repro.mitigation.binning import update_raidr_bins
from repro.mitigation.raidr import RAIDR


def make_raidr(chip, bins=(0.256, 0.512), relaxed=1.024):
    return RAIDR(
        total_rows=chip.geometry.total_rows,
        bits_per_row=chip.geometry.bits_per_row,
        relaxed_interval_s=relaxed,
        bin_intervals_s=bins,
    )


class TestLadder:
    def test_rows_distributed_across_bins(self, chip):
        raidr = make_raidr(chip)
        assigned = update_raidr_bins(chip, raidr, iterations=2)
        assert assigned, "expected some weak rows"
        assert set(assigned.values()) <= {0, 1}
        for row, bin_index in assigned.items():
            assert raidr.refresh_interval_for_row(row) <= raidr.bin_intervals_s[bin_index]

    def test_first_failure_wins(self, chip):
        """A row failing at the first ladder rung stays in the strictest bin."""
        raidr = make_raidr(chip)
        assigned = update_raidr_bins(chip, raidr, iterations=2)
        strict_rows = {row for row, b in assigned.items() if b == 0}
        for row in strict_rows:
            assert raidr.refresh_interval_for_row(row) == pytest.approx(0.256)

    def test_binned_intervals_respect_oracle(self, chip_factory):
        """No row may be refreshed slower than its weakest oracle cell allows."""
        chip = chip_factory()
        raidr = make_raidr(chip)
        update_raidr_bins(chip, raidr, iterations=5)
        oracle = chip.oracle_failing_set(Conditions(trefi=1.024), p_min=0.5)
        bits = chip.geometry.bits_per_row
        missed = [
            int(cell) for cell in oracle
            if raidr.refresh_interval_for_row(int(cell) // bits) >= 1.024
        ]
        # High-probability failing cells should essentially all be protected
        # (tiny-chip oracle sets are a couple dozen cells, so allow a couple
        # of stochastic escapes).
        assert len(missed) <= max(2, len(oracle) // 8)

    def test_reach_ladder_assigns_more_rows(self, chip_factory):
        """Reach profiling at each rung widens coverage (more rows binned)."""
        plain_chip, reach_chip = chip_factory(), chip_factory(max_trefi_s=2.6)
        plain = update_raidr_bins(plain_chip, make_raidr(plain_chip), iterations=1)
        reached = update_raidr_bins(
            reach_chip,
            make_raidr(reach_chip),
            iterations=1,
            reach=ReachDelta(delta_trefi=0.25),
        )
        assert len(reached) >= len(plain)

    def test_ladder_beyond_device_rejected(self, chip):
        raidr = make_raidr(chip, relaxed=10.0)
        with pytest.raises(ConfigurationError):
            update_raidr_bins(chip, raidr)

    def test_refresh_savings_remain_large(self, chip):
        raidr = make_raidr(chip)
        update_raidr_bins(chip, raidr, iterations=2)
        assert raidr.refresh_savings_fraction() > 0.8
