"""Boundary and edge-condition tests across the stack."""

import numpy as np
import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core import BruteForceProfiler, ReachProfiler
from repro.dram.chip import MAX_SUPPORTED_TEMPERATURE_C, SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.errors import CapacityError, ConfigurationError, ProfilingError
from repro.mitigation import ArchShield, BloomFilter
from repro.patterns import CHECKERBOARD

from conftest import TINY_GEOMETRY, TEST_SEED


class TestExposureBoundaries:
    def test_profiling_exactly_at_max_trefi(self, chip):
        """The boundary itself is legal; one epsilon beyond is not."""
        profile = BruteForceProfiler(iterations=1).run(
            chip, Conditions(trefi=chip.max_trefi_s, temperature=45.0)
        )
        assert profile.runtime_seconds > 0.0

    def test_reach_crossing_max_trefi_rejected(self, chip):
        profiler = ReachProfiler(reach=ReachDelta(delta_trefi=0.001), iterations=1)
        with pytest.raises(ProfilingError):
            profiler.run(chip, Conditions(trefi=chip.max_trefi_s, temperature=45.0))

    def test_temperature_exactly_at_cap(self):
        chip = SimulatedDRAMChip(
            geometry=TINY_GEOMETRY, seed=TEST_SEED,
            max_temperature_c=MAX_SUPPORTED_TEMPERATURE_C,
        )
        chip.set_temperature(MAX_SUPPORTED_TEMPERATURE_C)
        assert chip.temperature_c == MAX_SUPPORTED_TEMPERATURE_C

    def test_temperature_cap_enforced_at_construction(self):
        with pytest.raises(ConfigurationError):
            SimulatedDRAMChip(
                geometry=TINY_GEOMETRY,
                max_temperature_c=MAX_SUPPORTED_TEMPERATURE_C + 1.0,
            )

    def test_zero_length_exposure_reads_clean(self, chip):
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.enable_refresh()
        assert len(chip.read_errors()) == 0


class TestSmallestGeometries:
    def test_single_bank_chip(self):
        geometry = ChipGeometry(banks=1, rows_per_bank=64, bits_per_row=64)
        chip = SimulatedDRAMChip(geometry=geometry, seed=1)
        # A 4 Kbit array essentially never has weak cells; everything still works.
        profile = BruteForceProfiler(iterations=1).run(
            chip, Conditions(trefi=1.0, temperature=45.0)
        )
        assert profile.failing == frozenset()
        assert profile.runtime_seconds > 0.0

    def test_empty_oracle_on_tiny_chip(self):
        geometry = ChipGeometry(banks=1, rows_per_bank=64, bits_per_row=64)
        chip = SimulatedDRAMChip(geometry=geometry, seed=1)
        assert len(chip.oracle_failing_set(Conditions(trefi=1.0))) == 0

    def test_coverage_of_empty_truth_is_perfect(self):
        from repro.core import evaluate

        result = evaluate(set(), set())
        assert result.coverage == 1.0
        assert result.false_positive_rate == 0.0


class TestMitigationAtCapacity:
    def test_archshield_exactly_full(self):
        shield = ArchShield(capacity_bits=1 << 16, entry_overhead_bits=128)
        budget = shield.max_entries
        shield.ingest({i * 64 for i in range(budget)})
        assert shield.utilization == 1.0
        # Re-ingesting known cells is fine at full capacity.
        assert shield.ingest({0}) == 0
        # One more *new* word overflows.
        with pytest.raises(CapacityError):
            shield.ingest({budget * 64})

    def test_bloom_filter_saturation_degrades_gracefully(self):
        bloom = BloomFilter(size_bits=64, n_hashes=2)
        for i in range(500):
            bloom.add(i)
        # Saturated: everything matches (fp rate -> 1) but no false negatives.
        assert bloom.fill_ratio > 0.95
        assert all(i in bloom for i in range(500))
        assert bloom.expected_fp_rate() > 0.9


class TestConditionExtremes:
    def test_very_long_interval_conditions_valid(self):
        conditions = Conditions(trefi=600.0)  # ten minutes: paper's "minutes" tail
        assert conditions.trefi_ms == 600000.0

    def test_profiling_beyond_device_max_is_loud(self, chip):
        with pytest.raises(ProfilingError):
            BruteForceProfiler(iterations=1).run(chip, Conditions(trefi=600.0))

    def test_vrt_exposure_check_is_loud_not_silent(self, chip):
        """Waiting past the horizon with refresh off fails at read time with
        actionable advice, never by silently under-reporting."""
        chip.write_pattern(CHECKERBOARD)
        chip.disable_refresh()
        chip.wait(chip.max_trefi_s * 2)
        chip.enable_refresh()
        with pytest.raises(ConfigurationError, match="max_trefi_s"):
            chip.read_errors()
