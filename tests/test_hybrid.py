"""Tests for the REAPER + ECC-scrub hybrid maintenance loop."""

import pytest

from repro.conditions import Conditions
from repro.core.hybrid import HybridMaintainer
from repro.core.reaper import REAPER
from repro.errors import ConfigurationError
from repro.mitigation import ArchShield

TARGET = Conditions(trefi=1.024, temperature=45.0)
#: VRT accumulation scales as ~t^8, so the harvest tests run at 2048 ms
#: where newcomers arrive at a usefully observable rate on a tiny chip.
VRT_TARGET = Conditions(trefi=2.048, temperature=45.0)
DAY = 86400.0


def make_maintainer(chip, reprofile_h=24.0, scrub_h=2.0, target=TARGET):
    reaper = REAPER(chip, ArchShield(capacity_bits=chip.capacity_bits), target, iterations=2)
    return HybridMaintainer(
        reaper,
        reprofile_interval_seconds=reprofile_h * 3600.0,
        scrub_interval_seconds=scrub_h * 3600.0,
    )


class TestConfiguration:
    def test_scrub_must_be_more_frequent(self, chip):
        reaper = REAPER(chip, ArchShield(capacity_bits=chip.capacity_bits), TARGET)
        with pytest.raises(ConfigurationError):
            HybridMaintainer(reaper, 3600.0, 7200.0)

    def test_positive_intervals_required(self, chip):
        reaper = REAPER(chip, ArchShield(capacity_bits=chip.capacity_bits), TARGET)
        with pytest.raises(ConfigurationError):
            HybridMaintainer(reaper, 0.0, 1.0)

    def test_positive_duration_required(self, chip):
        maintainer = make_maintainer(chip)
        with pytest.raises(ConfigurationError):
            maintainer.run_for(0.0)


class TestMaintenance:
    def test_event_counts(self, chip):
        maintainer = make_maintainer(chip, reprofile_h=12.0, scrub_h=2.0)
        report = maintainer.run_for(1.0 * DAY)
        assert report.reaper_rounds >= 2
        assert report.scrub_passes > report.reaper_rounds
        assert report.profiling_seconds > 0.0
        assert report.scrubbing_seconds > 0.0

    def test_scrubbing_harvests_vrt_newcomers(self, chip):
        """Between rounds, scrubbing catches cells REAPER would only see at
        the next round."""
        maintainer = make_maintainer(chip, reprofile_h=60.0, scrub_h=1.0, target=VRT_TARGET)
        report = maintainer.run_for(2.0 * DAY)
        assert report.cells_from_scrubbing > 0
        assert 0.0 < report.scrub_harvest_fraction < 1.0

    def test_hybrid_protects_more_than_reaper_alone(self, chip_factory):
        """With identical reprofiling cadence, scrub harvesting between
        rounds adds protection REAPER-only operation lacks (same chip
        randomness; a couple of cells of stochastic slack allowed)."""
        solo_chip = chip_factory()
        solo_shield = ArchShield(capacity_bits=solo_chip.capacity_bits)
        solo = REAPER(solo_chip, solo_shield, VRT_TARGET, iterations=2)
        clock_end = solo_chip.clock.now + 2.0 * DAY
        while solo_chip.clock.now < clock_end:
            solo.profile_and_update()
            remaining = clock_end - solo_chip.clock.now
            if remaining <= 0:
                break
            solo_chip.wait(min(24.0 * 3600.0, remaining))

        hybrid_chip = chip_factory()
        maintainer = make_maintainer(
            hybrid_chip, reprofile_h=24.0, scrub_h=2.0, target=VRT_TARGET
        )
        maintainer.run_for(2.0 * DAY)
        hybrid_count = maintainer.reaper.mitigation.known_cell_count
        assert hybrid_count >= solo_shield.known_cell_count - 3

    def test_mitigation_accumulates_both_sources(self, chip):
        maintainer = make_maintainer(chip, reprofile_h=12.0, scrub_h=3.0)
        report = maintainer.run_for(1.0 * DAY)
        total = maintainer.reaper.mitigation.known_cell_count
        assert total == report.cells_from_reaper + report.cells_from_scrubbing
