"""Unit tests for keyed RNG derivation."""

import numpy as np
from hypothesis import given, strategies as st

from repro import rng as rng_mod


class TestDerive:
    def test_same_key_same_stream(self):
        a = rng_mod.derive(7, "chip", 0)
        b = rng_mod.derive(7, "chip", 0)
        assert np.array_equal(a.random(16), b.random(16))

    def test_different_key_different_stream(self):
        a = rng_mod.derive(7, "chip", 0)
        b = rng_mod.derive(7, "chip", 1)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_different_seed_different_stream(self):
        a = rng_mod.derive(7, "chip", 0)
        b = rng_mod.derive(8, "chip", 0)
        assert not np.array_equal(a.random(16), b.random(16))

    def test_key_parts_are_not_concatenation_ambiguous(self):
        # ("ab", "c") must differ from ("a", "bc").
        a = rng_mod.derive(7, "ab", "c")
        b = rng_mod.derive(7, "a", "bc")
        assert not np.array_equal(a.random(16), b.random(16))

    def test_bytes_and_str_parts_distinct(self):
        a = rng_mod.derive(7, b"x")
        b = rng_mod.derive(7, "x")
        # bytes and the identical string should still derive the same digest
        # input only if their encodings collide; blake2b input includes raw
        # bytes for both, so these are equal by design -- document behaviour.
        assert np.array_equal(a.random(4), b.random(4))

    def test_derive_seed_deterministic(self):
        assert rng_mod.derive_seed(1, "a") == rng_mod.derive_seed(1, "a")
        assert rng_mod.derive_seed(1, "a") != rng_mod.derive_seed(1, "b")

    @given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
    def test_derive_total_function(self, seed, key):
        generator = rng_mod.derive(seed, key)
        value = generator.random()
        assert 0.0 <= value < 1.0
