"""Unit and property tests for the double-error-correcting BCH codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.bch import BCHDEC
from repro.ecc.hamming import DecodeStatus
from repro.ecc.memory import EccProtectedMemory
from repro.ecc.model import EccStrength, uncorrectable_word_probability
from repro.errors import EccError

CODEC = BCHDEC(64)


class TestStructure:
    def test_64_bit_code_is_78_bits(self):
        assert CODEC.codeword_bits == 78
        assert CODEC.parity_bits == 14
        assert CODEC.correctable == 2

    def test_narrow_code(self):
        codec = BCHDEC(16)
        assert codec.codeword_bits == 30

    def test_width_limits(self):
        with pytest.raises(EccError):
            BCHDEC(0)
        with pytest.raises(EccError):
            BCHDEC(120)  # 120 + 14 > 127

    def test_codeword_bounds_checked(self):
        with pytest.raises(EccError):
            CODEC.encode(1 << 64)
        with pytest.raises(EccError):
            CODEC.decode(1 << 78)
        with pytest.raises(EccError):
            CODEC.flip(0, 78)


class TestRoundTrip:
    @pytest.mark.parametrize("data", [0, 1, (1 << 64) - 1, 0xDEADBEEFCAFEF00D])
    def test_clean_roundtrip(self, data):
        result = CODEC.decode(CODEC.encode(data))
        assert result.status is DecodeStatus.OK
        assert result.data == data

    @given(st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=60)
    def test_roundtrip_property(self, data):
        result = CODEC.decode(CODEC.encode(data))
        assert result.status is DecodeStatus.OK
        assert result.data == data


class TestCorrection:
    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=77),
    )
    @settings(max_examples=80)
    def test_any_single_flip_corrected(self, data, bit):
        result = CODEC.decode(CODEC.flip(CODEC.encode(data), bit))
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data
        assert result.corrected_bits_pair == (bit,)

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.integers(min_value=0, max_value=77),
        st.integers(min_value=0, max_value=77),
    )
    @settings(max_examples=80)
    def test_any_double_flip_corrected(self, data, bit1, bit2):
        if bit1 == bit2:
            return
        word = CODEC.flip(CODEC.flip(CODEC.encode(data), bit1), bit2)
        result = CODEC.decode(word)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == data
        assert result.corrected_bits_pair == tuple(sorted((bit1, bit2)))

    @given(
        st.integers(min_value=0, max_value=(1 << 64) - 1),
        st.sets(st.integers(min_value=0, max_value=77), min_size=3, max_size=3),
    )
    @settings(max_examples=60)
    def test_triple_flip_never_silently_passes(self, data, bits):
        """Three errors exceed the correction radius: the decoder must not
        report a clean word (it may detect or miscorrect -- distance 5)."""
        word = CODEC.encode(data)
        for bit in bits:
            word = CODEC.flip(word, bit)
        result = CODEC.decode(word)
        assert result.status is not DecodeStatus.OK


class TestWithMemory:
    def test_bch_protected_memory_double_errors(self):
        memory = EccProtectedMemory(n_words=64, codec=BCHDEC(64), seed=6)
        memory.fill_random()
        width = memory.codec.codeword_bits
        # Two errors in one word: SECDED would only detect; BCH corrects.
        memory.inject_cell_failures([width * 5 + 3, width * 5 + 40])
        outcome = memory.scrub()
        assert outcome.words_corrected == 1
        assert outcome.words_uncorrectable == 0
        assert memory.verify_against_golden() == 0

    def test_uncorrectable_fraction_matches_binomial(self):
        rber = 0.02
        memory = EccProtectedMemory(n_words=3000, codec=BCHDEC(64), seed=8)
        memory.fill_random()
        memory.inject_random_failures(rber)
        outcome = memory.scrub(repair=False)
        strength = EccStrength(name="bch78", word_bits=78, correctable=2)
        predicted = uncorrectable_word_probability(strength, rber)
        assert outcome.uncorrectable_fraction == pytest.approx(predicted, rel=0.35)

    def test_mismatched_codec_width_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            EccProtectedMemory(n_words=4, data_bits=32, codec=BCHDEC(64))
