"""The campaign service: specs, ledger, manager, HTTP API, crash resume.

The contract under test is the one the service advertises:

* a campaign submitted over HTTP produces a summary **byte-identical** to
  the blocking ``CharacterizationCampaign.run`` path with the same spec;
* concurrent submissions from different tenants are isolated (per-tenant
  run dirs) and scheduled fairly (round-robin across tenants);
* cancel persists partial results; shutdown/kill never loses finished
  units; a restarted manager re-adopts unfinished jobs from ``jobs.jsonl``
  and completes them via resume.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    CampaignJobSpec,
    JobLedger,
    JobManager,
    QueueFullError,
    ServiceClient,
    ServiceConfig,
    ServiceThread,
    UnknownJobError,
    validate_tenant,
)

#: Small-and-fast spec: 3 chips, one condition, vectorized fast path.
TINY_SPEC = dict(
    chips_per_vendor=1,
    capacity_gbit=1.0 / 16.0,
    iterations=1,
    intervals_s=(0.512,),
    temperatures_c=(45.0,),
)
#: Deliberately slow spec (~200 ms per chip): full-size chips on the
#: scalar path, so cancel/kill tests reliably land mid-run.
SLOW_SPEC = dict(
    chips_per_vendor=2,
    capacity_gbit=1.0,
    iterations=2,
    intervals_s=(0.512, 1.024, 2.048),
    temperatures_c=(45.0, 55.0),
    fast_path=False,
)


def direct_summary(**spec_kwargs) -> dict:
    """The blocking-path summary for a spec (the byte-identity baseline)."""
    spec = CampaignJobSpec(**spec_kwargs)
    campaign = spec.build_campaign()
    summary = campaign.run(
        intervals_s=spec.intervals_s, temperatures_c=spec.temperatures_c
    )
    return summary.to_json_dict()


def canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ----------------------------------------------------------------------
# Spec and tenant validation
# ----------------------------------------------------------------------
class TestCampaignJobSpec:
    def test_defaults_mirror_cli(self):
        spec = CampaignJobSpec()
        assert spec.chips_per_vendor == 4
        assert spec.seed == 0x5EED
        assert spec.intervals_s == (0.512, 1.024, 2.048)
        assert spec.temperatures_c == (45.0, 55.0)

    def test_json_roundtrip(self):
        spec = CampaignJobSpec(**SLOW_SPEC)
        assert CampaignJobSpec.from_json_dict(spec.to_json_dict()) == spec

    def test_unknown_keys_rejected_with_allowed_list(self):
        with pytest.raises(ConfigurationError) as excinfo:
            CampaignJobSpec.from_json_dict({"chips_per_vndor": 8})
        message = str(excinfo.value)
        assert "chips_per_vndor" in message and "chips_per_vendor" in message

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignJobSpec(chips_per_vendor=0)
        with pytest.raises(ConfigurationError):
            CampaignJobSpec(intervals_s=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            CampaignJobSpec(temperatures_c=())

    def test_tenant_rules(self):
        assert validate_tenant("acme-lab.2") == "acme-lab.2"
        for bad in ("", ".hidden", "a/b", "a b", "x" * 65, "../up"):
            with pytest.raises(ConfigurationError):
                validate_tenant(bad)


# ----------------------------------------------------------------------
# Ledger
# ----------------------------------------------------------------------
class TestJobLedger:
    def test_fold_keeps_latest_state_and_first_spec(self, tmp_path):
        ledger = JobLedger(tmp_path / "jobs.jsonl")
        ledger.append("job-000001", "acme", "queued", spec={"seed": 7})
        ledger.append("job-000001", "acme", "running")
        ledger.append("job-000002", "globex", "queued", spec={"seed": 8})
        ledger.close()
        folded = JobLedger(tmp_path / "jobs.jsonl").replay()
        assert list(folded) == ["job-000001", "job-000002"]
        assert folded["job-000001"]["state"] == "running"
        assert folded["job-000001"]["spec"] == {"seed": 7}

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        ledger = JobLedger(path)
        ledger.append("job-000001", "acme", "queued", spec={})
        ledger.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"job_id": "job-000002", "tena')  # kill -9 artifact
        folded = JobLedger(path).replay()
        assert list(folded) == ["job-000001"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text('not json\n{"job_id": "j", "state": "queued"}\n')
        with pytest.raises(ConfigurationError):
            JobLedger(path).replay()


# ----------------------------------------------------------------------
# JobManager (in-process, serial in-thread execution)
# ----------------------------------------------------------------------
async def _wait_state(manager, job_id, states, timeout=120.0):
    deadline = time.monotonic() + timeout
    while True:
        record = manager.job(job_id)
        if record.state in states:
            return record
        if time.monotonic() >= deadline:
            raise TimeoutError(f"job {job_id} stuck in {record.state}")
        await asyncio.sleep(0.01)


class TestJobManager:
    def test_submit_runs_to_done_and_matches_blocking_path(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                record = await manager.submit("acme", CampaignJobSpec(**TINY_SPEC))
                assert record.state == QUEUED
                final = await _wait_state(manager, record.job_id, (DONE,))
                assert final.progress["completed"] == final.progress["total"]
                result = manager.result(record.job_id)
            finally:
                await manager.shutdown()
            return record, result

        record, result = asyncio.run(scenario())
        assert canon(result) == canon(direct_summary(**TINY_SPEC))
        # namespaced run dir + durable summary snapshot
        run_dir = tmp_path / "acme" / record.job_id
        assert (run_dir / "results.jsonl").exists()
        persisted = json.loads((run_dir / "summary.json").read_text())
        assert canon(persisted) == canon(result)

    def test_concurrent_tenants_isolated_and_identical(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=2)
            await manager.start()
            try:
                spec = CampaignJobSpec(**TINY_SPEC)
                a = await manager.submit("acme", spec)
                b = await manager.submit("globex", spec)
                await _wait_state(manager, a.job_id, (DONE,))
                await _wait_state(manager, b.job_id, (DONE,))
                return (
                    manager.result(a.job_id),
                    manager.result(b.job_id),
                    a.job_id,
                    b.job_id,
                )
            finally:
                await manager.shutdown()

        result_a, result_b, id_a, id_b = asyncio.run(scenario())
        assert canon(result_a) == canon(result_b) == canon(direct_summary(**TINY_SPEC))
        assert (tmp_path / "acme" / id_a).is_dir()
        assert (tmp_path / "globex" / id_b).is_dir()

    def test_lake_report_per_tenant(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=2)
            await manager.start()
            try:
                spec = CampaignJobSpec(**TINY_SPEC)
                a = await manager.submit("acme", spec)
                b = await manager.submit("acme", spec)
                other = await manager.submit("globex", spec)
                for record in (a, b, other):
                    await _wait_state(manager, record.job_id, (DONE,))
                runs = await manager.lake_report("acme", report="runs")
                trend = await manager.lake_report(
                    "acme", report="trend", kind="interval"
                )
                summary = await manager.lake_report(
                    "acme", report="summary", runs=[a.job_id]
                )
                with pytest.raises(ConfigurationError):
                    await manager.lake_report("acme", report="bogus")
                with pytest.raises(ConfigurationError):
                    await manager.lake_report("acme", report="summary")
                return a.job_id, b.job_id, runs, trend, summary
            finally:
                await manager.shutdown()

        id_a, id_b, runs, trend, summary = asyncio.run(scenario())
        # Tenant isolation: globex's job never enters acme's lake.
        assert runs["compacted"] == [id_a, id_b]
        assert [row[0] for row in runs["rows"]] == [id_a, id_b]
        assert trend["report"] == "trend" and trend["rows"]
        # Lake-derived summary is byte-identical to the JSONL-derived one.
        from repro.lake import summary_from_run_dir

        assert canon(summary["summary"]) == canon(
            summary_from_run_dir(tmp_path / "acme" / id_a)
        )

    def test_fair_round_robin_across_tenants(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                spec = CampaignJobSpec(**TINY_SPEC)
                a1 = await manager.submit("acme", spec)
                a2 = await manager.submit("acme", spec)
                b1 = await manager.submit("globex", spec)
                for rec in (a1, a2, b1):
                    await _wait_state(manager, rec.job_id, (DONE,))
                return {r.job_id: manager.job(r.job_id) for r in (a1, a2, b1)}
            finally:
                await manager.shutdown()

        records = asyncio.run(scenario())
        by_start = sorted(records.values(), key=lambda r: r.started_ts)
        # acme queued two before globex's one; fairness interleaves them.
        assert [r.tenant for r in by_start] == ["acme", "globex", "acme"]

    def test_cancel_queued_job(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                first = await manager.submit("acme", CampaignJobSpec(**TINY_SPEC))
                second = await manager.submit("acme", CampaignJobSpec(**TINY_SPEC))
                cancelled = await manager.cancel(second.job_id)
                assert cancelled.state == CANCELLED
                await _wait_state(manager, first.job_id, (DONE,))
                return manager.job(second.job_id)
            finally:
                await manager.shutdown()

        record = asyncio.run(scenario())
        assert record.state == CANCELLED
        assert record.error is None

    def test_cancel_running_persists_partials(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                record = await manager.submit("acme", CampaignJobSpec(**SLOW_SPEC))
                deadline = time.monotonic() + 60.0
                while True:
                    snap = manager.job(record.job_id)
                    if snap.progress.get("completed", 0) >= 1:
                        break
                    assert time.monotonic() < deadline, "job never made progress"
                    await asyncio.sleep(0.01)
                await manager.cancel(record.job_id)
                final = await _wait_state(manager, record.job_id, (CANCELLED,))
                return final
            finally:
                await manager.shutdown()

        record = asyncio.run(scenario())
        run_dir = Path(record.run_dir)
        rows = (run_dir / "results.jsonl").read_text().splitlines()
        assert rows, "drained units must be persisted"
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["status"] == "interrupted"
        # partial: fewer persisted rows than the full campaign's 6 chips
        assert len(rows) < 6

    def test_unknown_job_and_premature_result(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0)
            await manager.start()
            try:
                with pytest.raises(UnknownJobError):
                    manager.job("job-999999")
                record = await manager.submit("acme", CampaignJobSpec(**TINY_SPEC))
                with pytest.raises(ConfigurationError):
                    manager.result(record.job_id)  # still queued/running
                await _wait_state(manager, record.job_id, (DONE,))
            finally:
                await manager.shutdown()

        asyncio.run(scenario())

    def test_queue_bound(self, tmp_path):
        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1, max_queued=1)
            await manager.start()
            try:
                spec = CampaignJobSpec(**SLOW_SPEC)
                running = await manager.submit("acme", spec)
                # scheduler drains the queue into the running slot first
                await _wait_state(manager, running.job_id, ("running",), timeout=30)
                await manager.submit("acme", spec)  # fills the single queue slot
                with pytest.raises(QueueFullError):
                    await manager.submit("acme", spec)
            finally:
                await manager.shutdown()

        asyncio.run(scenario())

    def test_restart_resumes_from_ledger(self, tmp_path):
        """Simulate a crash: ledger says running, run dir is partial."""
        spec = CampaignJobSpec(**TINY_SPEC)

        async def crash_phase():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            record = await manager.submit("acme", spec)
            # "Crash": abandon without shutdown; the ledger retains the
            # queued row (and possibly running) with no terminal row.
            for task in list(manager._running.values()):
                task.cancel()
            if manager._scheduler:
                manager._scheduler.cancel()
            manager.ledger.close()
            return record.job_id

        job_id = asyncio.run(crash_phase())

        async def resume_phase():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                adopted = manager.job(job_id)
                assert adopted.state in (QUEUED, "running", DONE)
                await _wait_state(manager, job_id, (DONE,))
                return manager.result(job_id)
            finally:
                await manager.shutdown()

        result = asyncio.run(resume_phase())
        assert canon(result) == canon(direct_summary(**TINY_SPEC))


# ----------------------------------------------------------------------
# HTTP API (real sockets via ServiceThread)
# ----------------------------------------------------------------------
@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(
        root=tmp_path / "svc", port=0, pool_workers=0, max_running=2
    )
    with ServiceThread(config) as svc:
        yield svc


class TestHttpApi:
    def test_submit_stream_result_roundtrip(self, service):
        client = ServiceClient(service.host, service.port)
        assert client.healthz()["status"] == "ok"

        job = client.submit("acme", dict(TINY_SPEC))
        events = [ev["event"] for ev in client.events(job["job_id"])]
        assert "runner.start" in events
        assert events[-1] == "job.state"  # stream ends with the terminal event

        record = client.wait(job["job_id"], timeout=120)
        assert record["state"] == DONE
        assert record["progress"]["completed"] == record["progress"]["total"]
        assert canon(client.result(job["job_id"])) == canon(
            direct_summary(**TINY_SPEC)
        )

    def test_concurrent_multi_tenant_submissions(self, service):
        client = ServiceClient(service.host, service.port)
        jobs = [
            client.submit(tenant, dict(TINY_SPEC))
            for tenant in ("acme", "globex", "acme")
        ]
        records = [client.wait(j["job_id"], timeout=120) for j in jobs]
        assert all(r["state"] == DONE for r in records)
        baseline = canon(direct_summary(**TINY_SPEC))
        for j in jobs:
            assert canon(client.result(j["job_id"])) == baseline
        assert len(client.jobs(tenant="acme")) == 2
        assert len(client.jobs(tenant="globex")) == 1
        assert len(client.jobs()) == 3

    def test_lake_report_over_http(self, service):
        client = ServiceClient(service.host, service.port)
        jobs = [client.submit("acme", dict(TINY_SPEC)) for _ in range(2)]
        for job in jobs:
            client.wait(job["job_id"], timeout=120)
        report = client.lake_report("acme", report="runs")
        assert report["tenant"] == "acme"
        assert report["compacted"] == [j["job_id"] for j in jobs]
        summary = client.lake_report(
            "acme", report="summary", runs=[jobs[0]["job_id"]]
        )
        assert summary["summary"]["units"] == summary["summary"]["ok"]
        with pytest.raises(ConfigurationError):
            client.lake_report("acme", report="bogus")

    def test_error_mapping(self, service):
        client = ServiceClient(service.host, service.port)
        with pytest.raises(UnknownJobError):
            client.job("job-424242")
        with pytest.raises(ConfigurationError):
            client.submit("bad/tenant", {})
        with pytest.raises(ConfigurationError):
            client.submit("acme", {"no_such_knob": 1})

    def test_cancel_over_http(self, service):
        client = ServiceClient(service.host, service.port)
        job = client.submit("acme", dict(SLOW_SPEC))
        deadline = time.monotonic() + 60.0
        while True:
            record = client.job(job["job_id"])
            if record["progress"].get("completed", 0) >= 1:
                break
            assert time.monotonic() < deadline
            time.sleep(0.01)
        client.cancel(job["job_id"])
        final = client.wait(job["job_id"], timeout=60)
        assert final["state"] == CANCELLED
        run_dir = Path(final["run_dir"])
        assert (run_dir / "results.jsonl").read_text().splitlines()


# ----------------------------------------------------------------------
# kill -9 the server mid-run; a restarted server resumes and completes
# ----------------------------------------------------------------------
def _spawn_server(root: Path) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--root", str(root), "--port", "0",
            "--pool-workers", "0", "--max-running", "1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    assert line.startswith("serving on http://"), f"unexpected banner: {line!r}"
    address = line.strip().rsplit("/", 1)[-1]
    host, port = address.split(":")
    return proc, host, int(port)


@pytest.mark.slow
def test_kill9_then_restart_completes_jobs(tmp_path):
    root = tmp_path / "svc"
    proc, host, port = _spawn_server(root)
    try:
        client = ServiceClient(host, port)
        slow = client.submit("acme", dict(SLOW_SPEC))
        queued = client.submit("acme", dict(TINY_SPEC))
        deadline = time.monotonic() + 120.0
        while True:
            record = client.job(slow["job_id"])
            if record["progress"].get("completed", 0) >= 1:
                break
            assert time.monotonic() < deadline, "slow job made no progress"
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # Partial results from the killed run survive on disk.
    slow_dir = root / "acme" / slow["job_id"]
    assert (slow_dir / "results.jsonl").exists()

    proc2, host2, port2 = _spawn_server(root)
    try:
        client2 = ServiceClient(host2, port2)
        final_slow = client2.wait(slow["job_id"], timeout=300)
        final_queued = client2.wait(queued["job_id"], timeout=300)
        assert final_slow["state"] == DONE
        assert final_queued["state"] == DONE
        assert canon(client2.result(slow["job_id"])) == canon(
            direct_summary(**SLOW_SPEC)
        )
        assert canon(client2.result(queued["job_id"])) == canon(
            direct_summary(**TINY_SPEC)
        )
    finally:
        proc2.send_signal(signal.SIGTERM)
        try:
            proc2.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc2.kill()
            proc2.wait(timeout=30)
