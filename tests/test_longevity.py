"""Unit tests for the Eq-7 longevity model, pinned to the paper's example."""

import math

import pytest

from repro.conditions import Conditions
from repro.core.longevity import (
    longevity_for_system,
    minimum_required_coverage,
    profile_longevity_seconds,
)
from repro.dram.vendor import VENDOR_B
from repro.ecc.model import ECC2, NO_ECC, SECDED
from repro.errors import ConfigurationError

GIB = 1 << 30


class TestEq7:
    def test_basic_formula(self):
        """T = (N - C) / A in hours."""
        seconds = profile_longevity_seconds(65.0, 25.0, 0.73)
        assert seconds / 3600.0 == pytest.approx(40.0 / 0.73)

    def test_zero_accumulation_is_forever(self):
        assert math.isinf(profile_longevity_seconds(65.0, 0.0, 0.0))

    def test_budget_already_exhausted_is_zero(self):
        assert profile_longevity_seconds(65.0, 70.0, 0.73) == 0.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            profile_longevity_seconds(-1.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            profile_longevity_seconds(1.0, -1.0, 1.0)
        with pytest.raises(ConfigurationError):
            profile_longevity_seconds(1.0, 0.0, -1.0)


class TestPaperExample:
    """Section 6.2.3: 2 GB + SECDED @ 1024 ms / 45 degC, 99% coverage."""

    def test_longevity_is_about_2_3_days(self):
        estimate = longevity_for_system(
            vendor=VENDOR_B,
            capacity_bytes=2 * GIB,
            ecc=SECDED,
            target=Conditions(trefi=1.024, temperature=45.0),
            coverage=0.99,
        )
        assert estimate.longevity_days == pytest.approx(2.3, rel=0.15)

    def test_tolerable_failures_about_65(self):
        estimate = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0)
        )
        assert estimate.tolerable_failures == pytest.approx(65.0, rel=0.05)

    def test_expected_failures_about_2464(self):
        estimate = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0)
        )
        assert estimate.expected_failures == pytest.approx(2464, rel=0.15)

    def test_accumulation_about_0_73_per_hour(self):
        estimate = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0)
        )
        assert estimate.accumulation_per_hour == pytest.approx(0.73, rel=0.05)


class TestSystemSensitivity:
    def test_stronger_ecc_longer_longevity(self):
        target = Conditions(trefi=1.024, temperature=45.0)
        weak = longevity_for_system(VENDOR_B, 2 * GIB, SECDED, target)
        strong = longevity_for_system(VENDOR_B, 2 * GIB, ECC2, target)
        assert strong.longevity_seconds > weak.longevity_seconds

    def test_longer_interval_shorter_longevity(self):
        short = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0)
        )
        long = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=2.048, temperature=45.0)
        )
        assert long.longevity_seconds < short.longevity_seconds

    def test_better_coverage_longer_longevity(self):
        target = Conditions(trefi=1.024, temperature=45.0)
        poor = longevity_for_system(VENDOR_B, 2 * GIB, SECDED, target, coverage=0.97)
        good = longevity_for_system(VENDOR_B, 2 * GIB, SECDED, target, coverage=0.999)
        assert good.longevity_seconds > poor.longevity_seconds

    def test_no_ecc_is_infeasible_at_aggressive_target(self):
        estimate = longevity_for_system(
            VENDOR_B, 2 * GIB, NO_ECC, Conditions(trefi=1.024, temperature=45.0),
            coverage=0.99,
        )
        assert not estimate.feasible

    def test_invalid_coverage_rejected(self):
        with pytest.raises(ConfigurationError):
            longevity_for_system(
                VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024), coverage=1.5
            )


class TestMinimumCoverage:
    def test_aggressive_target_needs_high_coverage(self):
        required = minimum_required_coverage(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0)
        )
        assert 0.95 < required < 1.0

    def test_mild_target_needs_no_coverage(self):
        required = minimum_required_coverage(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=0.128, temperature=45.0)
        )
        assert required == 0.0

    def test_required_coverage_monotone_in_interval(self):
        mild = minimum_required_coverage(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=0.512, temperature=45.0)
        )
        harsh = minimum_required_coverage(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=2.048, temperature=45.0)
        )
        assert harsh >= mild
