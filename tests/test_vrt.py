"""Unit tests for the episodic VRT process."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.dram.vrt import VRTProcess
from repro.dram.vendor import VENDOR_B
from repro.errors import ConfigurationError

GBIT = 1 << 30


def make_process(horizon=2.2, seed=5, capacity=16 * GBIT):
    return VRTProcess(
        vendor=VENDOR_B,
        capacity_bits=capacity,
        horizon_s=horizon,
        rng=rng_mod.derive(seed, "vrt-test"),
    )


class TestArrivals:
    def test_no_time_no_episodes(self):
        process = make_process()
        assert process.episode_count == 0

    def test_arrival_rate_matches_vendor_model(self):
        """Over 10 hours, arrivals should match A(horizon) closely."""
        process = make_process()
        hours = 10.0
        process.advance_to(hours * 3600.0)
        expected = VENDOR_B.vrt_arrival_rate_per_hour(2.2, 16.0, 45.0) * hours
        assert process.episode_count == pytest.approx(expected, rel=0.15)

    def test_advance_is_incremental(self):
        process = make_process()
        process.advance_to(3600.0)
        count1 = process.episode_count
        process.advance_to(7200.0)
        assert process.episode_count >= count1

    def test_backwards_advance_rejected(self):
        process = make_process()
        process.advance_to(100.0)
        with pytest.raises(ConfigurationError):
            process.advance_to(50.0)

    def test_temperature_raises_arrival_rate(self):
        cool = make_process(seed=9)
        hot = make_process(seed=9)
        cool.advance_to(20 * 3600.0, temperature_c=45.0)
        hot.advance_to(20 * 3600.0, temperature_c=55.0)
        assert hot.episode_count > 2 * cool.episode_count


class TestFailingCells:
    def test_power_law_exposure_scaling(self):
        """Episodes failing a t-exposure scale as t^b (Figure 4's law)."""
        process = make_process()
        process.advance_to(40 * 3600.0)
        now = process.time_s
        n_full = len(process.episodes_overlapping(0.0, now, 2.2))
        n_half = len(process.episodes_overlapping(0.0, now, 1.1))
        expected_ratio = 0.5**VENDOR_B.vrt_arrival_exponent
        assert n_half / n_full == pytest.approx(expected_ratio, rel=0.5)

    def test_active_set_is_subset_of_overlapping(self):
        process = make_process()
        process.advance_to(20 * 3600.0)
        now = process.time_s
        active = set(process.failing_cells(now, 2.0).tolist())
        window = set(process.episodes_overlapping(0.0, now, 2.0).tolist())
        assert active <= window

    def test_episodes_expire(self):
        """After many dwell times of quiet, old episodes leave the active set."""
        process = make_process()
        process.advance_to(10 * 3600.0)
        mid = process.time_s
        active_mid = len(process.failing_cells(mid, 2.0))
        # Jump far ahead: everything from the early window should have expired
        # while the active population stays near steady state.
        process.advance_to(mid + 40 * VENDOR_B.vrt_dwell_mean_s)
        early_window = set(process.episodes_overlapping(0.0, mid, 2.0).tolist())
        active_now = set(process.failing_cells(process.time_s, 2.0).tolist())
        assert len(active_now & early_window) < max(1, len(early_window) // 4)
        assert active_mid >= 0  # smoke

    def test_exposure_beyond_horizon_rejected(self):
        process = make_process(horizon=2.0)
        process.advance_to(3600.0)
        with pytest.raises(ConfigurationError):
            process.failing_cells(3600.0, 2.5)

    def test_window_order_enforced(self):
        process = make_process()
        with pytest.raises(ConfigurationError):
            process.episodes_overlapping(10.0, 5.0, 1.0)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            make_process(horizon=0.0)

    def test_steady_state_active_population(self):
        """Active episodes ~ A * dwell once past a few dwell times."""
        process = make_process(horizon=2.2)
        t = 10 * VENDOR_B.vrt_dwell_mean_s
        process.advance_to(t)
        rate = VENDOR_B.vrt_arrival_rate_per_hour(2.2, 16.0, 45.0)
        expected = rate * VENDOR_B.vrt_dwell_mean_s / 3600.0
        active = len(process.failing_cells(t, 2.2))
        assert active == pytest.approx(expected, rel=0.35)

    def test_deterministic_given_seed(self):
        a = make_process(seed=21)
        b = make_process(seed=21)
        a.advance_to(3600.0)
        b.advance_to(3600.0)
        assert np.array_equal(a.failing_cells(3600.0, 2.0), b.failing_cells(3600.0, 2.0))
