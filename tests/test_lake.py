"""The columnar result lake: encoding, compaction, stores, analytics.

The load-bearing contract throughout: every summary derived from the
lake's columnar segments is **byte-identical** (``json.dumps`` with
sorted keys) to the same summary derived by re-parsing the source
``results.jsonl``.
"""

from __future__ import annotations

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError
from repro.lake import (
    LAKE_SCHEMA,
    CompactionReport,
    LakeStore,
    ResultLake,
    decode_results,
    encode_results,
    fold_results_jsonl,
    load_columns,
    run_id_for_dir,
    run_summary,
    save_columns,
    summary_from_lake,
    summary_from_run_dir,
)
from repro.lake.columns import VALUE_JSON, _chip_encodable
from repro.runner import RunnerEngine, WorkUnit
from repro.runner.store import ResultStore

from conftest import TINY_GEOMETRY

CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))


def _dumps(payload):
    return json.dumps(payload, sort_keys=True)


def _chip_value(chip_id, vendor="A", fails=((0.512, 1.0), (1.024, 3.0))):
    return {
        "chip_id": chip_id,
        "vendor": vendor,
        "interval_failures": [[c, f] for c, f in fails],
        "temperature_failures": [[45.0, f] for _, f in fails],
    }


def _rows(values, failed=()):
    rows = {}
    for i, value in enumerate(values):
        unit_id = f"u-{i:03d}"
        rows[unit_id] = {
            "unit_id": unit_id,
            "status": "ok",
            "attempts": 1,
            "elapsed_s": 0.25 * (i + 1),
            "value": value,
        }
    for unit_id in failed:
        rows[unit_id] = {
            "unit_id": unit_id,
            "status": "failed",
            "attempts": 2,
            "elapsed_s": 0.1,
            "error": {"type": "RuntimeError", "message": "boom", "traceback": "tb"},
        }
    return rows


def _campaign_run(tmp_path, name, seed=42):
    run_dir = tmp_path / name
    campaign = CharacterizationCampaign(
        chips_per_vendor=1, geometry=TINY_GEOMETRY, iterations=1, seed=seed
    )
    campaign.run(run_dir=str(run_dir), **CAMPAIGN_KW)
    return run_dir


class TestColumnsRoundtrip:
    def test_chip_values_roundtrip_exactly(self):
        rows = _rows([_chip_value(0), _chip_value(1, vendor="B")], failed=["u-009"])
        cols = encode_results(rows)
        decoded = decode_results(cols)
        assert set(decoded) == set(rows)
        for unit_id, row in rows.items():
            assert _dumps(decoded[unit_id].to_json_dict()) == _dumps(row)
        # Chip-shaped values really took the columnar path.
        assert int((cols.value_kind == VALUE_JSON).sum()) == 0

    def test_non_chip_values_fall_back_to_json(self):
        values = [
            {"free": "form"},
            [1, 2, 3],
            "text",
            7,
            # chip-ish but with an int failure count: stays JSON so the
            # int-vs-float distinction survives byte-identically.
            {
                "chip_id": 5,
                "vendor": "A",
                "interval_failures": [[0.5, 1]],
                "temperature_failures": [],
            },
        ]
        rows = _rows(values)
        cols = encode_results(rows)
        assert int((cols.value_kind == VALUE_JSON).sum()) == len(values)
        decoded = decode_results(cols)
        for unit_id, row in rows.items():
            assert _dumps(decoded[unit_id].to_json_dict()) == _dumps(row)

    def test_chip_encodable_predicate(self):
        assert _chip_encodable(_chip_value(3))
        assert not _chip_encodable({"chip_id": 3})
        assert not _chip_encodable({**_chip_value(3), "extra": 1})
        assert not _chip_encodable({**_chip_value(3), "chip_id": True})
        assert not _chip_encodable(None)

    def test_save_load_schema_guard(self, tmp_path):
        cols = encode_results(_rows([_chip_value(0)]))
        path = save_columns(cols, tmp_path / "seg.npz")
        again = load_columns(path)
        assert decode_results(again).keys() == decode_results(cols).keys()

        arrays = dict(np.load(path, allow_pickle=False))
        arrays["schema"] = np.array([LAKE_SCHEMA + 1], dtype=np.int64)
        np.savez_compressed(tmp_path / "bad.npz", **arrays)
        with pytest.raises(ConfigurationError, match="recompact"):
            load_columns(tmp_path / "bad.npz")

        (tmp_path / "junk.npz").write_bytes(b"not a zip")
        with pytest.raises(ConfigurationError):
            load_columns(tmp_path / "junk.npz")


class TestFoldJsonl:
    def test_later_rows_win_and_corruption_is_counted(self, tmp_path):
        path = tmp_path / "results.jsonl"
        rows = [
            {"unit_id": "u-0", "status": "ok", "value": 1},
            {"unit_id": "u-1", "status": "failed",
             "error": {"type": "E", "message": "m", "traceback": "t"}},
            {"unit_id": "u-0", "status": "ok", "value": 2},  # resume re-record
        ]
        lines = [json.dumps(r, sort_keys=True) for r in rows]
        lines.insert(1, '{"neither": "unit row"}')  # interior: no unit_id
        lines.insert(2, "{broken json")  # interior corruption
        path.write_text("\n".join(lines) + '\n{"unit_id": "u-9", "st', "utf-8")
        folded, raw, skipped = fold_results_jsonl(path)
        assert raw == 3
        assert skipped == 3  # no-unit_id row + broken line + torn tail
        assert set(folded) == {"u-0", "u-1"}
        assert folded["u-0"]["value"] == 2


class TestResultLake:
    def test_compaction_matches_store_and_summary_is_byte_identical(
        self, tmp_path
    ):
        run_dir = _campaign_run(tmp_path, "round-0")
        lake = ResultLake(tmp_path / "lake")
        report = lake.compact_run_dir(run_dir)
        assert isinstance(report, CompactionReport)
        run_id = run_id_for_dir(run_dir)
        assert lake.run_ids() == [run_id]
        assert report.units > 0 and report.observations > 0

        store = ResultStore(run_dir)
        expected = store.load_results()
        actual = lake.results(run_id)
        assert set(actual) == set(expected)
        for unit_id in expected:
            assert _dumps(actual[unit_id].to_json_dict()) == _dumps(
                expected[unit_id].to_json_dict()
            )
        assert _dumps(summary_from_lake(lake, run_id)) == _dumps(
            summary_from_run_dir(run_dir)
        )
        # The fast path really engaged: all-chip run, no delta journal.
        assert not lake.has_delta(run_id)

    def test_recompaction_is_idempotent(self, tmp_path):
        run_dir = _campaign_run(tmp_path, "round-0")
        lake = ResultLake(tmp_path / "lake")
        first = lake.compact_run_dir(run_dir)
        second = lake.compact_run_dir(run_dir)
        assert first.units == second.units
        assert lake.run_ids() == [run_id_for_dir(run_dir)]

    def test_unknown_run_id(self, tmp_path):
        lake = ResultLake(tmp_path / "lake")
        with pytest.raises(ConfigurationError, match="not in the lake"):
            lake.columns("nope")

    def test_non_run_dir_refused(self, tmp_path):
        (tmp_path / "empty").mkdir()
        lake = ResultLake(tmp_path / "lake")
        with pytest.raises(ConfigurationError):
            lake.compact_run_dir(tmp_path / "empty")


def _worker(payload):
    if payload.get("boom"):
        raise RuntimeError("boom")
    return {"x2": payload["n"] * 2}


def _units(n, boom=()):
    return [
        WorkUnit(unit_id=f"u-{i:03d}", kind="t", payload={"n": i, "boom": i in boom})
        for i in range(n)
    ]


MANIFEST = {"fingerprint": "f" * 32, "experiment": "lake-test", "n_units": 8}


class TestLakeStore:
    def test_engine_run_resume_and_fingerprint_guard(self, tmp_path):
        lake_root = tmp_path / "lake"
        store = LakeStore(lake_root, "run-a")
        report = RunnerEngine(store=store).run(_worker, _units(8, boom={3}), MANIFEST)
        assert report.stats.succeeded == 7 and report.stats.failed == 1

        lake = ResultLake(lake_root)
        assert not lake.has_delta("run-a")  # close() folded the journal
        assert lake.entry("run-a")["manifest"]["status"] == "complete"
        summary = summary_from_lake(lake, "run-a")
        assert summary["ok"] == 7 and summary["failed_units"] == ["u-003"]
        assert len(summary["other_ok_units"]) == 7  # non-chip values

        # Reuse without resume is refused; resume executes only the gap.
        with pytest.raises(ConfigurationError):
            RunnerEngine(store=LakeStore(lake_root, "run-a")).run(
                _worker, _units(8), MANIFEST
            )
        resumed = RunnerEngine(
            store=LakeStore(lake_root, "run-a"), resume=True
        ).run(_worker, _units(8), MANIFEST)
        assert resumed.stats.executed == 1  # just the previously failed unit
        assert resumed.stats.skipped == 7
        assert summary_from_lake(lake, "run-a")["failed"] == 0

        with pytest.raises(ConfigurationError):
            RunnerEngine(
                store=LakeStore(lake_root, "run-a"), resume=True
            ).run(_worker, _units(8), {**MANIFEST, "fingerprint": "0" * 32})

    def test_store_and_run_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            RunnerEngine(
                store=LakeStore(tmp_path / "lake", "run-a"),
                run_dir=tmp_path / "run",
            )


class TestAnalytics:
    @pytest.fixture(scope="class")
    def lake(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("analytics")
        lake = ResultLake(tmp_path / "lake")
        for i, seed in enumerate((42, 43)):
            lake.compact_run_dir(_campaign_run(tmp_path, f"round-{i}", seed=seed))
        return lake

    def test_runs_report(self, lake):
        report = lake_reports()["runs"](lake)
        assert [row[0] for row in report["rows"]] == ["round-0", "round-1"]
        assert "round-0" in report["text"]

    def test_trend_report(self, lake):
        report = lake_reports()["trend"](lake, vendor=None, kind="interval")
        assert report["kind"] == "interval"
        # 2 runs x 3 vendors x 2 intervals
        assert len(report["rows"]) == 12
        for row in report["rows"]:
            assert row[0] in ("round-0", "round-1")
            assert row[3] >= 1  # chips
        assert "mean_failures" in report["text"]

    def test_contour_report(self, lake):
        report = lake_reports()["contour"](lake, kind="temperature")
        assert len(report["rows"]) == 2  # two temperatures pooled over runs
        conditions = [row[0] for row in report["rows"]]
        assert conditions == sorted(conditions)

    def test_longevity_report(self, lake):
        report = lake_reports()["longevity"](lake)
        assert len(report["rows"]) == 3  # one per vendor
        for row in report["rows"]:
            assert row[1] == 2  # both runs cover every vendor

    def test_summary_byte_identity_across_runs(self, lake, tmp_path_factory):
        for run_id in lake.run_ids():
            run_dir = lake.manifest(run_id)  # sanity: manifest exists
            assert isinstance(run_dir, dict)


def lake_reports():
    from repro.lake import REPORTS

    return REPORTS


class TestCli:
    def _repro(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )

    def test_compact_then_query(self, tmp_path):
        run_a = _campaign_run(tmp_path, "round-0", seed=42)
        run_b = _campaign_run(tmp_path, "round-1", seed=43)
        lake_dir = tmp_path / "lake"
        proc = self._repro(
            "lake", "compact", str(run_a), str(run_b), "--lake", str(lake_dir)
        )
        assert proc.returncode == 0, proc.stderr
        assert "round-0" in proc.stdout and "round-1" in proc.stdout

        proc = self._repro("lake", "query", "--lake", str(lake_dir))
        assert proc.returncode == 0, proc.stderr
        assert "round-0" in proc.stdout

        proc = self._repro(
            "lake", "query", "--lake", str(lake_dir), "--report", "trend",
            "--json",
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["report"] == "trend"

        proc = self._repro(
            "lake", "query", "--lake", str(lake_dir), "--report", "summary",
            "--runs", "round-0", "--json",
        )
        assert proc.returncode == 0, proc.stderr
        lake = ResultLake(lake_dir)
        assert proc.stdout.strip() == _dumps(summary_from_lake(lake, "round-0"))
        assert proc.stdout.strip() == _dumps(summary_from_run_dir(run_a))

    def test_summary_requires_one_run(self, tmp_path):
        run_a = _campaign_run(tmp_path, "round-0")
        lake_dir = tmp_path / "lake"
        assert self._repro(
            "lake", "compact", str(run_a), "--lake", str(lake_dir)
        ).returncode == 0
        proc = self._repro(
            "lake", "query", "--lake", str(lake_dir), "--report", "summary"
        )
        assert proc.returncode != 0
