"""The tile-sharded megakernel: (chips x conditions) plane dispatch.

Tile dispatch carries the same contract as every other fleet
optimization -- byte-identical results, just more schedulable -- plus an
exact-reduction obligation of its own.  The tests here pin

* :func:`repro.core.fleetprof.advance_uniform_doubles` advances a PCG64
  stream to exactly the state ``count`` uniform-double draws reach,
  including the buffered-half-word fallback;
* :meth:`~repro.core.fleetprof.FleetProfiler.seek_grid` lands every chip
  on the identical clock / trace / RNG / VRT state a full evaluated
  sweep reaches, for stochastic and deterministic patterns and with the
  vectorized VRT fast path forced off;
* ``run_grid(tile=...)`` equals the matching slice of a full sweep with
  matching end states, fused and sequential;
* the tile plan helpers (:func:`condition_plan`, :func:`tile_bounds`,
  :func:`auto_condition_tiles`, :func:`build_tile_units`) produce exact
  covers with deterministic cost-descending order;
* campaign summaries are byte-identical across serial, chunk, and tile
  dispatch at 1, 2, and 8 workers, and tile / chunk / per-chip runs
  resume each other's run directories (including mid-run interrupts);
* :func:`merge_tile_counts` is order-independent and refuses overlaps
  and gaps instead of summing them into silently wrong totals;
* the cost-aware :class:`repro.runner.executors.CostWindow` reproduces
  the legacy fixed 4x window for homogeneous unit costs and adapts at
  the extremes;
* tile completion is observable: ``kernel.tile.*`` metrics, the
  ``tile_progress`` feed, and the ``repro top`` TILES column.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.analysis.campaign import CharacterizationCampaign
from repro.conditions import Conditions
from repro.core.fleetprof import FleetProfiler, advance_uniform_doubles
from repro.dram.geometry import ChipGeometry
from repro.dram.vendor import VENDOR_A, VENDOR_B
from repro.errors import ConfigurationError
from repro.infra.testbed import FleetBed
from repro.obs import Observability
from repro.obs.top import render_frame
from repro.runner import (
    CostWindow,
    UnitResult,
    auto_condition_tiles,
    build_chip_units,
    build_tile_units,
    condition_plan,
    fleet_tile_dispatch,
    merge_tile_counts,
    tile_bounds,
    unit_cost,
)
from repro.runner.units import STATUS_FAILED, STATUS_OK, UnitFailure, WorkUnit

from conftest import TEST_SEED

MICRO = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)
MEMBERS = [(0, VENDOR_B), (1, VENDOR_B), (2, VENDOR_A)]

CAMPAIGN_KW = dict(intervals_s=(0.256, 0.512, 1.024), temperatures_c=(45.0, 55.0))


# ----------------------------------------------------------------------
# RNG stream seek primitive
# ----------------------------------------------------------------------
class TestAdvanceUniformDoubles:
    @pytest.mark.parametrize("count", [0, 1, 7, 1000])
    def test_advance_equals_draws(self, count):
        drawn = rng_mod.derive(TEST_SEED, "advance-pin", 0)
        seeked = rng_mod.derive(TEST_SEED, "advance-pin", 0)
        drawn.random(count) if count else None
        advance_uniform_doubles(seeked, count)
        state = seeked.bit_generator.state
        assert state == drawn.bit_generator.state
        # And the next draw agrees, not just the opaque state blob.
        assert seeked.random() == drawn.random()

    def test_buffered_half_word_falls_back_to_draws(self):
        """A generator holding a buffered 32-bit half (from a float32 or
        uint32 draw) cannot use O(1) ``advance``; the fallback must still
        land on the drawn-past state."""
        drawn = rng_mod.derive(TEST_SEED, "advance-buf", 0)
        seeked = rng_mod.derive(TEST_SEED, "advance-buf", 0)
        drawn.random(3, dtype=np.float32)
        seeked.random(3, dtype=np.float32)
        assert seeked.bit_generator.state.get("has_uint32", 0)
        drawn.random(257)
        advance_uniform_doubles(seeked, 257)
        assert seeked.bit_generator.state == drawn.bit_generator.state

    def test_large_count_is_fast(self):
        rng = rng_mod.derive(TEST_SEED, "advance-big", 0)
        t0 = time.monotonic()
        advance_uniform_doubles(rng, 10**15)
        assert time.monotonic() - t0 < 1.0  # O(1), not O(count)


# ----------------------------------------------------------------------
# seek_grid / run_grid(tile=...)
# ----------------------------------------------------------------------
def fresh_fleet(fast_path=None):
    bed = FleetBed.build(
        members=MEMBERS, geometry=MICRO, seed=TEST_SEED, fast_path=fast_path
    )
    bed.set_ambient(45.0)
    from repro.dram.fleet import ChipFleet

    return ChipFleet(bed.chips)


def chip_end_state(fleet):
    states = []
    for chip in fleet.chips:
        states.append(
            (
                chip.clock.now,
                chip.read_rng.bit_generator.state,
                chip.vrt._rng.bit_generator.state,
                len(chip.trace.records),
            )
        )
    return states


GRID = (
    Conditions(0.256, temperature=45.0),
    Conditions(0.512, temperature=45.0),
    Conditions(1.024, temperature=45.0),
    Conditions(2.048, temperature=45.0),
)


class TestSeekGrid:
    def test_seek_matches_evaluated_sweep(self):
        profiler = FleetProfiler(iterations=2)
        ref = fresh_fleet()
        profiler.run_grid(ref, GRID)
        seeked = fresh_fleet()
        profiler.seek_grid(seeked, GRID)
        assert chip_end_state(seeked) == chip_end_state(ref)
        for a, b in zip(seeked.chips, ref.chips):
            assert a.trace.records == b.trace.records

    def test_seek_matches_with_vectorized_vrt_disabled(self, monkeypatch):
        """Force the VRT vectorized advance to refuse, exercising the
        scalar per-step fallback; end states must not change."""
        from repro.dram import vrt as vrt_mod

        profiler = FleetProfiler(iterations=1)
        ref = fresh_fleet()
        profiler.run_grid(ref, GRID[:2])
        monkeypatch.setattr(
            vrt_mod.VRTProcess,
            "advance_schedule",
            lambda self, times, temp: False,
            raising=True,
        )
        seeked = fresh_fleet()
        profiler.seek_grid(seeked, GRID[:2])
        assert chip_end_state(seeked) == chip_end_state(ref)

    def test_seek_is_resumable_mid_plan(self):
        """seek(prefix) then run(suffix) equals run(full) -- the exact
        shape measure_fleet_tile uses across a temperature boundary."""
        profiler = FleetProfiler(iterations=2)
        ref = fresh_fleet()
        full = profiler.run_grid(ref, GRID)
        tiled = fresh_fleet()
        profiler.seek_grid(tiled, GRID[:2])
        tail = profiler.run_grid(tiled, GRID[2:])
        assert tail == full[2:]
        assert chip_end_state(tiled) == chip_end_state(ref)

    def test_empty_seek_is_a_no_op(self):
        profiler = FleetProfiler(iterations=1)
        fleet = fresh_fleet()
        before = chip_end_state(fleet)
        profiler.seek_grid(fleet, ())
        assert chip_end_state(fleet) == before


class TestRunGridTile:
    @pytest.mark.parametrize("megakernel", [True, False])
    @pytest.mark.parametrize("tile", [(0, 4), (0, 2), (1, 3), (3, 4), (2, 2)])
    def test_tile_equals_slice_of_full_run(self, tile, megakernel):
        profiler = FleetProfiler(iterations=2)
        full = profiler.run_grid(fresh_fleet(), GRID, megakernel=megakernel)
        start, stop = tile
        got = profiler.run_grid(
            fresh_fleet(), GRID, megakernel=megakernel, tile=tile
        )
        assert got == full[start:stop]

    def test_tile_end_state_matches_prefix_of_full(self):
        """After run_grid(tile=(1, 3)) the fleet sits exactly where a
        3-condition evaluated sweep leaves it (prefix seeked, middle
        evaluated, tail untouched)."""
        profiler = FleetProfiler(iterations=2)
        ref = fresh_fleet()
        profiler.run_grid(ref, GRID[:3])
        tiled = fresh_fleet()
        profiler.run_grid(tiled, GRID, tile=(1, 3))
        assert chip_end_state(tiled) == chip_end_state(ref)

    @pytest.mark.parametrize("tile", [(-1, 2), (0, 9), (3, 1)])
    def test_bad_tile_bounds_are_refused(self, tile):
        profiler = FleetProfiler(iterations=1)
        with pytest.raises(ConfigurationError):
            profiler.run_grid(fresh_fleet(), GRID, tile=tile)


# ----------------------------------------------------------------------
# Tile plan helpers
# ----------------------------------------------------------------------
class TestTilePlan:
    def test_condition_plan_order(self):
        plan = condition_plan((0.5, 1.0, 2.0), (45.0, 55.0, 70.0))
        assert plan == (
            (0.5, 45.0),
            (1.0, 45.0),
            (2.0, 45.0),
            (2.0, 55.0),
            (2.0, 70.0),
        )

    def test_tile_bounds_exact_cover(self):
        for n in (1, 2, 5, 7, 16):
            for tiles in (1, 2, 3, 8, 50):
                bounds = tile_bounds(n, tiles)
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                assert all(a[1] == b[0] for a, b in zip(bounds, bounds[1:]))
                assert all(stop > start for start, stop in bounds)
                sizes = [stop - start for start, stop in bounds]
                assert max(sizes) - min(sizes) <= 1
                assert len(bounds) == min(tiles, n)

    def test_auto_tiles_scales_with_workers_and_caps(self):
        # One worker, one chunk: enough tiles to fill the plan, max 8.
        assert auto_condition_tiles(6, 1, 1) == 6
        # Many chunks per worker already: minimal tiling.
        assert auto_condition_tiles(6, 64, 2) == 1
        # Few chunks, many workers: capped at 8 and at the plan size.
        assert auto_condition_tiles(100, 1, 8) == 8
        assert auto_condition_tiles(4, 1, 8) == 4

    def test_build_tile_units_cover_and_order(self):
        units = build_chip_units(
            chips_per_vendor=2,
            geometry=MICRO,
            iterations=1,
            seed=TEST_SEED,
            intervals_s=CAMPAIGN_KW["intervals_s"],
            temperatures_c=CAMPAIGN_KW["temperatures_c"],
        )
        tiles = build_tile_units(units, chips_per_unit=3, condition_tiles=2)
        n_chunks = -(-len(units) // 3)
        assert len(tiles) == n_chunks * 2
        # Deterministic cost-descending order, exact per-chunk cover.
        costs = [t.cost for t in tiles]
        assert costs == sorted(costs, reverse=True)
        seen = {}
        for t in tiles:
            key = t.payload["members"][0]["unit_id"]
            seen.setdefault(key, []).append(tuple(t.payload["tile"]))
        n_conditions = len(CAMPAIGN_KW["intervals_s"]) + 1
        for intervals in seen.values():
            ordered = sorted(intervals)
            assert ordered[0][0] == 0 and ordered[-1][1] == n_conditions
            assert all(a[1] == b[0] for a, b in zip(ordered, ordered[1:]))

    def test_build_tile_units_rejects_nonpositive_tiles(self):
        with pytest.raises(ConfigurationError):
            build_tile_units((), chips_per_unit=2, condition_tiles=0)


# ----------------------------------------------------------------------
# Exact reduction
# ----------------------------------------------------------------------
def tiny_members(n_chips=2):
    units = build_chip_units(
        chips_per_vendor=1,
        geometry=MICRO,
        iterations=1,
        seed=TEST_SEED,
        intervals_s=(0.512, 1.024),
        temperatures_c=(45.0, 55.0),
        vendor_names=("A", "B"),
    )[:n_chips]
    return [{"unit_id": u.unit_id, "payload": u.payload} for u in units]


def tile_value(members, pairs):
    return {
        "chips": [
            {
                "unit_id": m["unit_id"],
                "counts": [[c, float(v) + i] for c, v in pairs],
            }
            for i, m in enumerate(members)
        ]
    }


class TestMergeTileCounts:
    def test_order_independent(self):
        members = tiny_members()
        a = tile_value(members, [(0, 3), (1, 5)])
        b = tile_value(members, [(2, 7)])
        assert merge_tile_counts(members, [a, b]) == merge_tile_counts(
            members, [b, a]
        )

    def test_overlap_is_refused(self):
        members = tiny_members()
        a = tile_value(members, [(0, 3), (1, 5)])
        b = tile_value(members, [(1, 9), (2, 7)])
        with pytest.raises(ConfigurationError, match="two tiles"):
            merge_tile_counts(members, [a, b])

    def test_gap_is_refused(self):
        members = tiny_members()
        a = tile_value(members, [(0, 3)])
        b = tile_value(members, [(2, 7)])
        with pytest.raises(ConfigurationError, match="gaps"):
            merge_tile_counts(members, [a, b])

    def test_member_mismatch_is_refused(self):
        members = tiny_members()
        a = tile_value(list(reversed(members)), [(0, 3), (1, 5), (2, 7)])
        with pytest.raises(ConfigurationError, match="members"):
            merge_tile_counts(members, [a])


class TestDispatchExpand:
    def make_dispatch_and_tiles(self, **kwargs):
        dispatch = fleet_tile_dispatch(chips_per_unit=2, condition_tiles=2, **kwargs)
        units = build_chip_units(
            chips_per_vendor=1,
            geometry=MICRO,
            iterations=1,
            seed=TEST_SEED,
            intervals_s=(0.512, 1.024),
            temperatures_c=(45.0, 55.0),
            vendor_names=("A", "B"),
        )
        tiles = dispatch.group(tuple(units))
        return dispatch, tiles

    def ok_result(self, unit):
        start, stop = unit.payload["tile"]
        members = unit.payload["members"]
        pairs = [(c, 10 * c) for c in range(start, stop)]
        return UnitResult(
            unit_id=unit.unit_id,
            status=STATUS_OK,
            value=tile_value(members, pairs),
            elapsed_s=0.25,
        )

    def test_partial_group_withholds_results(self):
        dispatch, tiles = self.make_dispatch_and_tiles()
        assert len(tiles) == 2  # one 2-chip chunk x two tiles
        assert dispatch.expand(tiles[0], self.ok_result(tiles[0])) == ()
        expanded = dispatch.expand(tiles[1], self.ok_result(tiles[1]))
        assert [r.unit_id for r in expanded] == [
            m["unit_id"] for m in tiles[0].payload["members"]
        ]
        assert all(r.ok for r in expanded)
        value = expanded[0].value
        assert set(value) == {
            "chip_id",
            "vendor",
            "interval_failures",
            "temperature_failures",
        }
        # Finalize after a complete drain reports nothing dropped.
        assert dispatch.finalize() == ()

    def test_failed_tile_fails_the_whole_chunk(self):
        dispatch, tiles = self.make_dispatch_and_tiles()
        dispatch.expand(tiles[0], self.ok_result(tiles[0]))
        boom = UnitFailure(type="RuntimeError", message="boom", traceback="")
        failed = UnitResult(
            unit_id=tiles[1].unit_id, status=STATUS_FAILED, error=boom
        )
        expanded = dispatch.expand(tiles[1], failed)
        assert len(expanded) == 2
        assert all(r.status == STATUS_FAILED and r.error == boom for r in expanded)

    def test_metrics_and_progress_feed(self):
        layer = Observability()
        seen = []
        dispatch, tiles = self.make_dispatch_and_tiles(
            observability=layer, on_tile=seen.append
        )
        for unit in tiles:
            dispatch.expand(unit, self.ok_result(unit))
        names = {row["name"] for row in layer.snapshot()}
        assert {
            "kernel.tile.plan",
            "kernel.tile.open",
            "kernel.tile.completed",
            "kernel.tile.seconds",
            "kernel.tile.oldest_open_s",
        } <= names
        completed = next(
            row
            for row in layer.snapshot()
            if row["name"] == "kernel.tile.completed"
        )
        assert completed["value"] == len(tiles)
        assert [s["done"] for s in seen] == list(range(1, len(tiles) + 1))
        assert all(s["total"] == len(tiles) for s in seen)
        assert seen[-1]["open_groups"] == 0


# ----------------------------------------------------------------------
# Campaign byte-identity and resume
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign():
    return CharacterizationCampaign(
        chips_per_vendor=2, geometry=MICRO, iterations=1, seed=TEST_SEED
    )


@pytest.fixture(scope="module")
def serial_summary(campaign):
    return campaign.run(**CAMPAIGN_KW)


def summary_bytes(summary):
    return json.dumps(summary.to_json_dict(), sort_keys=True)


class TestCampaignIdentity:
    @pytest.mark.parametrize("tiles", [1, 2, 4, 99, 0])
    def test_tile_counts_match_serial(self, campaign, serial_summary, tiles):
        tiled = campaign.run(chips_per_unit=2, condition_tiles=tiles, **CAMPAIGN_KW)
        assert summary_bytes(tiled) == summary_bytes(serial_summary)

    def test_sequential_kernel_tiles_match_serial(self, campaign, serial_summary):
        tiled = campaign.run(
            chips_per_unit=2, condition_tiles=3, megakernel=False, **CAMPAIGN_KW
        )
        assert summary_bytes(tiled) == summary_bytes(serial_summary)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_pooled_tiles_match_serial(self, campaign, serial_summary, workers):
        pooled = campaign.run(
            backend="process",
            workers=workers,
            chips_per_unit=2,
            condition_tiles=2,
            **CAMPAIGN_KW,
        )
        assert summary_bytes(pooled) == summary_bytes(serial_summary)

    def test_condition_tiles_requires_fleet_path(self, campaign):
        with pytest.raises(ConfigurationError):
            campaign.run(condition_tiles=2, **CAMPAIGN_KW)
        with pytest.raises(ConfigurationError):
            campaign.run(chips_per_unit=1, condition_tiles=2, **CAMPAIGN_KW)
        with pytest.raises(ConfigurationError):
            campaign.run(chips_per_unit=2, condition_tiles=-1, **CAMPAIGN_KW)

    def test_manifest_records_tiling_but_not_in_fingerprint(
        self, campaign, serial_summary, tmp_path
    ):
        run_a = tmp_path / "tiled"
        campaign.run(
            run_dir=str(run_a), chips_per_unit=2, condition_tiles=2, **CAMPAIGN_KW
        )
        manifest = json.loads((run_a / "manifest.json").read_text())
        assert manifest["condition_tiles"] == 2
        # The same directory resumes under chunk dispatch: tiling is
        # execution geometry, not campaign identity.
        resumed = campaign.run(
            run_dir=str(run_a), resume=True, chips_per_unit=3, **CAMPAIGN_KW
        )
        assert summary_bytes(resumed) == summary_bytes(serial_summary)

    def test_spec_diff_names_geometry_on_real_mismatch(self, campaign, tmp_path):
        run_dir = tmp_path / "run"
        campaign.run(
            run_dir=str(run_dir), chips_per_unit=2, condition_tiles=2, **CAMPAIGN_KW
        )
        with pytest.raises(ConfigurationError) as excinfo:
            campaign.run(
                run_dir=str(run_dir),
                resume=True,
                chips_per_unit=2,
                condition_tiles=4,
                intervals_s=(0.256, 0.512),
                temperatures_c=CAMPAIGN_KW["temperatures_c"],
            )
        message = str(excinfo.value)
        assert "intervals_s" in message
        assert "condition_tiles" in message


class TestCrossModeResume:
    def truncate_results(self, run_dir, keep):
        results_path = Path(run_dir) / "results.jsonl"
        rows = results_path.read_text().splitlines()
        assert len(rows) > keep
        results_path.write_text("\n".join(rows[:keep]) + "\n")

    def test_tile_run_resumes_under_chunk_dispatch(
        self, campaign, serial_summary, tmp_path
    ):
        run_dir = str(tmp_path / "run")
        campaign.run(
            run_dir=run_dir, chips_per_unit=2, condition_tiles=2, **CAMPAIGN_KW
        )
        self.truncate_results(run_dir, keep=2)
        resumed = campaign.run(
            run_dir=run_dir, resume=True, chips_per_unit=3, **CAMPAIGN_KW
        )
        assert summary_bytes(resumed) == summary_bytes(serial_summary)

    def test_chunk_run_resumes_under_tile_dispatch(
        self, campaign, serial_summary, tmp_path
    ):
        run_dir = str(tmp_path / "run")
        campaign.run(run_dir=run_dir, chips_per_unit=3, **CAMPAIGN_KW)
        self.truncate_results(run_dir, keep=1)
        resumed = campaign.run(
            run_dir=run_dir, resume=True, chips_per_unit=2, condition_tiles=3,
            **CAMPAIGN_KW,
        )
        assert summary_bytes(resumed) == summary_bytes(serial_summary)

    def test_interrupted_tile_run_resumes_identically(
        self, campaign, serial_summary, tmp_path
    ):
        """A cooperative stop mid-tile-plan withholds partially merged
        chunks; the resume re-runs exactly those chips and the final
        summary is byte-identical."""
        run_dir = str(tmp_path / "run")
        seen = []
        campaign.run(
            run_dir=run_dir,
            chips_per_unit=2,
            condition_tiles=2,
            progress=lambda result, tracker: seen.append(result.unit_id),
            should_stop=lambda: len(seen) >= 2,
            **CAMPAIGN_KW,
        )
        rows = (Path(run_dir) / "results.jsonl").read_text().splitlines()
        assert 0 < len(rows) < 4  # partial frontier persisted
        resumed = campaign.run(
            run_dir=run_dir,
            resume=True,
            chips_per_unit=2,
            condition_tiles=4,
            **CAMPAIGN_KW,
        )
        assert summary_bytes(resumed) == summary_bytes(serial_summary)


KILL9_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.analysis.campaign import CharacterizationCampaign
    from repro.dram.geometry import ChipGeometry

    run_dir = sys.argv[1]
    campaign = CharacterizationCampaign(
        chips_per_vendor=2,
        geometry=ChipGeometry.from_capacity_gigabits(1.0 / 64.0),
        iterations=1,
        seed=1234,
    )

    def progress(result, tracker):
        print("UNIT", result.unit_id, flush=True)

    campaign.run(
        intervals_s=(0.256, 0.512, 1.024),
        temperatures_c=(45.0, 55.0),
        run_dir=run_dir,
        chips_per_unit=2,
        condition_tiles=2,
        progress=progress,
    )
    print("DONE", flush=True)
    """
)


@pytest.mark.slow
def test_kill9_mid_tile_resumes_identically(campaign, serial_summary, tmp_path):
    """SIGKILL between tiles of a chunk: the run directory holds only
    fully merged chips, and a resume under a *different* tiling finishes
    the rest byte-identically."""
    run_dir = tmp_path / "run"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", KILL9_SCRIPT, str(run_dir)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 120.0
    saw_unit = False
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line.startswith("UNIT"):
            saw_unit = True
            break
        if line == "" and proc.poll() is not None:
            break
    assert saw_unit, "child never made progress"
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    proc.stdout.close()
    proc.stderr.close()

    resumed = campaign.run(
        run_dir=str(run_dir),
        resume=True,
        chips_per_unit=3,
        condition_tiles=4,
        **CAMPAIGN_KW,
    )
    assert summary_bytes(resumed) == summary_bytes(serial_summary)


# ----------------------------------------------------------------------
# Cost-aware submission window
# ----------------------------------------------------------------------
class TestCostWindow:
    def drain(self, window, costs):
        """Admit greedily; returns the high-water in-flight count."""
        high = 0
        for cost in costs:
            assert window.admit(cost)
            high = max(high, window.inflight)
        return high

    def test_homogeneous_costs_reproduce_the_legacy_window(self):
        for pool in (1, 2, 4, 8):
            for cost in (0.5, 1.0, 400.0):
                window = CostWindow(pool, [cost] * 64)
                admitted = 0
                while window.admit(cost):
                    admitted += 1
                assert admitted == 4 * pool  # the old fixed max(1, 4*pool)

    def test_huge_units_floor_at_pool_plus_one(self):
        window = CostWindow(4, [1.0, 1.0, 1.0, 1000.0, 1000.0])
        admitted = 0
        while window.admit(1000.0):
            admitted += 1
        assert admitted == 5  # pool + 1: the pipeline never starves

    def test_tiny_units_cap_at_32x_pool(self):
        window = CostWindow(2, [100.0] * 10)
        admitted = 0
        while window.admit(1e-6):
            admitted += 1
        assert admitted == 32 * 2

    def test_complete_frees_budget(self):
        window = CostWindow(1, [1.0] * 8)
        while window.admit(1.0):
            pass
        assert not window.admit(1.0)
        window.complete(1.0)
        assert window.admit(1.0)

    def test_unit_cost_prefers_explicit_cost(self):
        unit = WorkUnit(unit_id="u", kind="k", payload={}, cost=7.5)
        assert unit_cost(unit) == 7.5
        sized = WorkUnit(unit_id="u", kind="k", payload={"x": "y" * 8192})
        assert unit_cost(sized) > unit_cost(
            WorkUnit(unit_id="v", kind="k", payload={})
        )

    def test_cost_is_not_identity(self):
        """cost is scheduling metadata: units differing only in cost
        compare equal, so resume fingerprints cannot depend on it."""
        a = WorkUnit(unit_id="u", kind="k", payload={"p": 1}, cost=1.0)
        b = WorkUnit(unit_id="u", kind="k", payload={"p": 1}, cost=9.0)
        assert a == b

    def test_pool_completes_mixed_cost_plan(self, campaign, serial_summary):
        """End-to-end: the rewritten windowed submission loop drains a
        heterogeneous tile plan completely and correctly."""
        pooled = campaign.run(
            backend="process",
            workers=2,
            chips_per_unit=1,
            **CAMPAIGN_KW,
        )
        assert summary_bytes(pooled) == summary_bytes(serial_summary)


# ----------------------------------------------------------------------
# Service spec and repro top
# ----------------------------------------------------------------------
class TestServiceSpec:
    def test_spec_round_trips_condition_tiles(self):
        from repro.service import CampaignJobSpec

        spec = CampaignJobSpec(chips_per_unit=2, condition_tiles=3)
        data = spec.to_json_dict()
        assert data["condition_tiles"] == 3
        assert CampaignJobSpec.from_json_dict(data) == spec
        assert CampaignJobSpec.from_json_dict({}).condition_tiles is None

    def test_spec_validates_condition_tiles(self):
        from repro.service import CampaignJobSpec

        with pytest.raises(ConfigurationError):
            CampaignJobSpec(chips_per_unit=2, condition_tiles=-1)
        with pytest.raises(ConfigurationError):
            CampaignJobSpec(condition_tiles=2)  # needs the fleet path

    def test_tiled_job_matches_blocking_path_and_reports_tiles(self, tmp_path):
        """End-to-end through the manager: a tile-dispatched job finishes
        byte-identical to the blocking path and its progress carries the
        live tiles feed repro top renders."""
        import asyncio

        from repro.service import DONE, CampaignJobSpec, JobManager

        spec_kwargs = dict(
            chips_per_vendor=2,
            capacity_gbit=1.0 / 64.0,
            iterations=1,
            intervals_s=(0.256, 0.512, 1.024),
            temperatures_c=(45.0, 55.0),
            chips_per_unit=2,
            condition_tiles=2,
        )

        async def scenario():
            manager = JobManager(tmp_path, pool_workers=0, max_running=1)
            await manager.start()
            try:
                record = await manager.submit("acme", CampaignJobSpec(**spec_kwargs))
                deadline = time.monotonic() + 120.0
                while manager.job(record.job_id).state != DONE:
                    assert time.monotonic() < deadline
                    await asyncio.sleep(0.01)
                final = manager.job(record.job_id)
                return final, manager.result(record.job_id)
            finally:
                await manager.shutdown()

        final, result = asyncio.run(scenario())
        tiles = final.progress["tiles"]
        assert tiles["done"] == tiles["total"] > 0
        assert tiles["open_groups"] == 0

        spec = {
            k: v
            for k, v in spec_kwargs.items()
            if k not in ("chips_per_unit", "condition_tiles")
        }
        from repro.service import CampaignJobSpec as Spec

        baseline = Spec(**spec).build_campaign().run(
            intervals_s=spec["intervals_s"], temperatures_c=spec["temperatures_c"]
        )
        assert json.dumps(result, sort_keys=True) == summary_bytes(baseline)


class TestTopTiles:
    HEALTH = {"status": "ok", "queued": 0, "running": 1}

    def test_render_frame_shows_tile_progress(self):
        jobs = [
            {
                "tenant": "acme",
                "job_id": "job-000001",
                "state": "running",
                "progress": {
                    "completed": 2,
                    "total": 6,
                    "tiles": {
                        "done": 5,
                        "total": 12,
                        "open_groups": 2,
                        "oldest_open_s": 3.5,
                    },
                },
            }
        ]
        frame = render_frame(self.HEALTH, jobs, {}, [])
        assert "TILES" in frame and "STRAGGLE" in frame
        assert "5/12" in frame
        assert "3.50s" in frame

    def test_render_frame_without_tiles_shows_dash(self):
        jobs = [
            {
                "tenant": "acme",
                "job_id": "job-000002",
                "state": "running",
                "progress": {"completed": 1, "total": 6},
            }
        ]
        frame = render_frame(self.HEALTH, jobs, {}, [])
        row = next(line for line in frame.splitlines() if "job-000002" in line)
        assert row.split()[4] == "-"  # TILES column
