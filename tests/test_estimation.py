"""Tests for the online accumulation-rate estimator."""

import math

import pytest

from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.core.estimation import AccumulationRateEstimator
from repro.errors import ConfigurationError


class TestEstimator:
    def test_simple_rate(self):
        estimator = AccumulationRateEstimator()
        estimator.observe(3600.0, 5)
        estimator.observe(7200.0, 10)
        estimate = estimator.estimate()
        assert estimate.rate_per_hour == pytest.approx(5.0)
        assert estimate.newcomers == 15
        assert estimate.observed_hours == pytest.approx(3.0)

    def test_confidence_interval_brackets_rate(self):
        estimator = AccumulationRateEstimator()
        estimator.observe(3600.0, 9)
        estimate = estimator.estimate()
        assert estimate.confidence_low_per_hour < estimate.rate_per_hour
        assert estimate.confidence_high_per_hour > estimate.rate_per_hour
        assert estimate.confidence_low_per_hour >= 0.0

    def test_interval_tightens_with_observation(self):
        sparse = AccumulationRateEstimator()
        sparse.observe(3600.0, 4)
        dense = AccumulationRateEstimator()
        for _ in range(16):
            dense.observe(3600.0, 4)
        sparse_width = (
            sparse.estimate().confidence_high_per_hour
            - sparse.estimate().confidence_low_per_hour
        )
        dense_width = (
            dense.estimate().confidence_high_per_hour
            - dense.estimate().confidence_low_per_hour
        )
        assert dense_width < sparse_width

    def test_informative_flag(self):
        estimator = AccumulationRateEstimator()
        estimator.observe(3600.0, 1)
        assert not estimator.estimate().is_informative
        estimator.observe(3600.0, 5)
        assert estimator.estimate().is_informative

    def test_zero_newcomers_allowed(self):
        estimator = AccumulationRateEstimator()
        estimator.observe(3600.0, 0)
        estimate = estimator.estimate()
        assert estimate.rate_per_hour == 0.0
        assert estimate.confidence_high_per_hour > 0.0  # still uncertain

    def test_validation(self):
        estimator = AccumulationRateEstimator()
        with pytest.raises(ConfigurationError):
            estimator.observe(0.0, 1)
        with pytest.raises(ConfigurationError):
            estimator.observe(1.0, -1)
        with pytest.raises(ConfigurationError):
            estimator.estimate()

    def test_longevity_conservative_is_shorter(self):
        estimator = AccumulationRateEstimator()
        estimator.observe(3600.0, 10)
        safe = estimator.longevity_seconds(100.0, 0.0, conservative=True)
        nominal = estimator.longevity_seconds(100.0, 0.0, conservative=False)
        assert safe < nominal


class TestAgainstSimulatedChip:
    def test_recovers_the_chip_accumulation_rate(self, chip_factory):
        """Feeding the estimator real discovery windows recovers the
        vendor-model VRT rate within the Poisson interval."""
        chip = chip_factory(max_trefi_s=2.6)
        conditions = Conditions(trefi=2.048, temperature=45.0)
        probe = BruteForceProfiler(iterations=1)
        base = BruteForceProfiler(iterations=10)
        seen = set(base.run(chip, conditions).failing)

        estimator = AccumulationRateEstimator()
        for _ in range(30):
            t0 = chip.clock.now
            chip.wait(2 * 3600.0)
            found = set(probe.run(chip, conditions).failing)
            estimator.observe(chip.clock.now - t0, len(found - seen))
            seen |= found

        capacity_gbit = chip.capacity_bits / (1 << 30)
        expected = chip.vendor.vrt_arrival_rate_per_hour(2.048, capacity_gbit, 45.0)
        estimate = estimator.estimate()
        assert estimate.confidence_low_per_hour <= expected * 1.6
        assert estimate.confidence_high_per_hour >= expected * 0.4
