"""Consistency between geometry addressing and mitigation key helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import ChipGeometry
from repro.ecc.scrubbing import word_of
from repro.mitigation.archshield import word_key
from repro.mitigation.base import row_key

GEOMETRY = ChipGeometry(banks=4, rows_per_bank=256, bits_per_row=512)


class TestKeyConsistency:
    @given(st.integers(min_value=0, max_value=GEOMETRY.capacity_bits - 1))
    def test_row_key_matches_geometry(self, flat):
        """Mitigation row keys agree with the geometry's global row index."""
        assert row_key(flat, GEOMETRY.bits_per_row) == GEOMETRY.row_of(flat)

    @given(st.integers(min_value=0, max_value=GEOMETRY.capacity_bits - 1))
    def test_cells_in_one_row_share_key(self, flat):
        row_start = (flat // GEOMETRY.bits_per_row) * GEOMETRY.bits_per_row
        assert row_key(flat, GEOMETRY.bits_per_row) == row_key(
            row_start, GEOMETRY.bits_per_row
        )

    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_module_refs_keep_chip_namespace(self, chip, flat):
        key = row_key((chip, flat), 512)
        assert key == (chip, flat // 512)
        word = word_key((chip, flat), 64)
        assert word == (chip, flat // 64)

    @given(st.integers(min_value=0, max_value=10**9))
    def test_word_key_and_scrubber_word_agree(self, flat):
        """ArchShield's word grouping and the scrubber's must coincide, or
        the hybrid loop would double-count entries."""
        assert word_key(flat, 64) == word_of(flat, 64)

    @given(st.integers(min_value=0, max_value=10**6))
    def test_word_keys_nest_inside_row_keys(self, flat):
        """All cells of one 64-bit word live in one row (512-bit rows)."""
        word = word_key(flat, 64)
        first_cell = word * 64
        last_cell = word * 64 + 63
        assert row_key(first_cell, 512) == row_key(last_cell, 512)
