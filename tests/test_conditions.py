"""Unit tests for operating conditions and reach deltas."""

import pytest
from hypothesis import given, strategies as st

from repro.conditions import Conditions, HEADLINE_REACH, JEDEC_TREFW, ReachDelta
from repro.errors import ConfigurationError


class TestConditions:
    def test_defaults_to_reference_temperature(self):
        assert Conditions(trefi=0.064).temperature == 45.0

    def test_trefi_ms(self):
        assert Conditions(trefi=1.024).trefi_ms == pytest.approx(1024.0)

    def test_zero_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            Conditions(trefi=0.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            Conditions(trefi=-0.1)

    def test_implausible_temperature_rejected(self):
        with pytest.raises(ConfigurationError):
            Conditions(trefi=0.064, temperature=500.0)

    def test_jedec_default_constant(self):
        assert JEDEC_TREFW == pytest.approx(0.064)

    def test_equality_and_hash(self):
        assert Conditions(1.0, 45.0) == Conditions(1.0, 45.0)
        assert hash(Conditions(1.0, 45.0)) == hash(Conditions(1.0, 45.0))

    def test_with_reach_adds_both_axes(self):
        target = Conditions(trefi=1.0, temperature=45.0)
        reach = target.with_reach(ReachDelta(delta_trefi=0.25, delta_temperature=5.0))
        assert reach.trefi == pytest.approx(1.25)
        assert reach.temperature == pytest.approx(50.0)

    def test_reaches_componentwise(self):
        base = Conditions(1.0, 45.0)
        assert Conditions(1.25, 45.0).reaches(base)
        assert Conditions(1.0, 50.0).reaches(base)
        assert not Conditions(0.5, 50.0).reaches(base)

    def test_str_rendering(self):
        assert "1024ms" in str(Conditions(1.024, 45.0))

    @given(
        st.floats(min_value=1e-3, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=20.0),
    )
    def test_reach_always_reaches_target(self, trefi, d_trefi, d_temp):
        target = Conditions(trefi=trefi, temperature=45.0)
        delta = ReachDelta(delta_trefi=d_trefi, delta_temperature=d_temp)
        assert target.with_reach(delta).reaches(target)


class TestReachDelta:
    def test_negative_interval_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachDelta(delta_trefi=-0.1)

    def test_negative_temperature_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            ReachDelta(delta_temperature=-1.0)

    def test_zero_delta_is_brute_force(self):
        assert ReachDelta().is_brute_force

    def test_nonzero_delta_is_not_brute_force(self):
        assert not ReachDelta(delta_trefi=0.25).is_brute_force

    def test_headline_reach_is_250ms(self):
        assert HEADLINE_REACH.delta_trefi == pytest.approx(0.250)
        assert HEADLINE_REACH.delta_temperature == 0.0
