"""Unit tests for the vectorized weak-cell failure model."""

import numpy as np
import pytest

from repro import rng as rng_mod
from repro.conditions import Conditions
from repro.dram.cell import WeakCellPopulation
from repro.dram.dpd import DPDModel
from repro.dram.retention import WeakCellSample
from repro.dram.vendor import VENDOR_B
from repro.errors import ConfigurationError


def make_population(mu=(0.5, 1.0, 2.0), sigma=(0.05, 0.05, 0.05), susceptibility=(0.1, 0.1, 0.1)):
    n = len(mu)
    sample = WeakCellSample(
        indices=np.arange(n, dtype=np.int64) * 100,
        mu_wc_s=np.asarray(mu, dtype=float),
        sigma_s=np.asarray(sigma, dtype=float),
        susceptibility=np.asarray(susceptibility, dtype=float),
        vrt_flag=np.zeros(n, dtype=bool),
        orientation=np.ones(n, dtype=np.uint8),
    )
    dpd = DPDModel(sample.susceptibility, rng_mod.derive(1, "cell-test"), 0.97)
    return WeakCellPopulation(sample, VENDOR_B, dpd)


class TestFailureProbabilities:
    def test_far_below_mu_never_fails(self):
        population = make_population()
        p = population.worst_case_probabilities(0.1, 45.0)
        assert np.all(p < 1e-6)

    def test_far_above_mu_always_fails(self):
        population = make_population()
        p = population.worst_case_probabilities(2.6, 45.0)
        assert p[0] > 0.999  # mu = 0.5

    def test_at_mu_half_fails(self):
        population = make_population(mu=(1.0,), sigma=(0.1,), susceptibility=(0.0,))
        p = population.worst_case_probabilities(1.0, 45.0)
        assert p[0] == pytest.approx(0.5, abs=0.01)

    def test_probability_monotone_in_exposure(self):
        population = make_population()
        p1 = population.worst_case_probabilities(0.8, 45.0)
        p2 = population.worst_case_probabilities(1.2, 45.0)
        assert np.all(p2 >= p1)

    def test_probability_monotone_in_temperature(self):
        population = make_population()
        cool = population.worst_case_probabilities(1.0, 40.0)
        hot = population.worst_case_probabilities(1.0, 50.0)
        assert np.all(hot >= cool)

    def test_zero_exposure_zero_probability(self):
        population = make_population()
        assert np.all(population.failure_probabilities(0.0, 45.0, np.ones(3)) == 0.0)

    def test_negative_exposure_rejected(self):
        population = make_population()
        with pytest.raises(ConfigurationError):
            population.failure_probabilities(-1.0, 45.0, np.ones(3))

    def test_alignment_lowers_effective_retention(self):
        population = make_population(susceptibility=(0.25, 0.25, 0.25))
        full = population.failure_probabilities(1.0, 45.0, np.ones(3))
        none = population.failure_probabilities(1.0, 45.0, np.zeros(3))
        assert np.all(full >= none)


class TestSampling:
    def test_sample_failures_statistics(self):
        population = make_population(mu=(1.0,), sigma=(0.1,), susceptibility=(0.0,))
        rng = rng_mod.derive(2, "sample")
        hits = sum(
            len(population.sample_failures(1.0, 45.0, np.ones(1), rng)) for _ in range(400)
        )
        assert hits == pytest.approx(200, rel=0.2)

    def test_sampled_indices_belong_to_population(self):
        population = make_population()
        rng = rng_mod.derive(3, "sample")
        failed = population.sample_failures(2.5, 45.0, np.ones(3), rng)
        assert set(failed.tolist()) <= set(population.indices.tolist())


class TestOracle:
    def test_oracle_includes_weak_excludes_strong(self):
        population = make_population(mu=(0.5, 2.0, 10.0))
        failing = population.oracle_failing(Conditions(trefi=1.0), p_min=0.05)
        assert 0 in failing.tolist()       # mu=0.5 cell index 0
        assert 200 not in failing.tolist()  # mu=10 cell at index 200

    def test_oracle_pmin_bounds(self):
        population = make_population()
        with pytest.raises(ConfigurationError):
            population.oracle_failing(Conditions(trefi=1.0), p_min=0.0)

    def test_scaled_parameters_shift_with_temperature(self):
        population = make_population()
        mu45, sigma45 = population.scaled_parameters(45.0)
        mu55, sigma55 = population.scaled_parameters(55.0)
        assert np.all(mu55 < mu45)
        assert np.all(sigma55 < sigma45)

    def test_mismatched_dpd_rejected(self):
        sample = WeakCellSample(
            indices=np.arange(2, dtype=np.int64),
            mu_wc_s=np.ones(2),
            sigma_s=np.full(2, 0.1),
            susceptibility=np.zeros(2),
            vrt_flag=np.zeros(2, dtype=bool),
            orientation=np.ones(2, dtype=np.uint8),
        )
        dpd = DPDModel(np.zeros(3), rng_mod.derive(1, "x"), 0.9)
        with pytest.raises(ConfigurationError):
            WeakCellPopulation(sample, VENDOR_B, dpd)
