"""Unit tests for the SPD-driven relaxed-refresh deployment planner."""

import math

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.planner import DeploymentPlan, PlannerConstraints, RelaxedRefreshPlanner
from repro.dram.spd import characterize_for_spd
from repro.ecc.model import ECC2, SECDED
from repro.errors import ConfigurationError

from conftest import TINY_GEOMETRY

TARGET = Conditions(trefi=1.024, temperature=45.0)


@pytest.fixture(scope="module")
def planner():
    from repro.dram.chip import SimulatedDRAMChip

    chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=1)
    spd = characterize_for_spd(
        chip, anchor_intervals_s=(0.256, 0.512, 0.768, 1.024, 1.28, 1.536, 2.048)
    )
    return RelaxedRefreshPlanner(spd)


class TestEstimates:
    def test_expected_failures_scale_with_interval(self, planner):
        low = planner.expected_failures(Conditions(trefi=0.512))
        high = planner.expected_failures(Conditions(trefi=1.536))
        assert high > low > 0.0

    def test_expected_failures_scale_with_temperature(self, planner):
        cool = planner.expected_failures(Conditions(trefi=1.024, temperature=45.0))
        hot = planner.expected_failures(Conditions(trefi=1.024, temperature=55.0))
        assert hot / cool == pytest.approx(math.exp(planner.spd.temp_coefficient * 10), rel=0.01)

    def test_fpr_grows_with_reach(self, planner):
        mild = planner.estimated_false_positive_rate(TARGET, ReachDelta(delta_trefi=0.125))
        harsh = planner.estimated_false_positive_rate(TARGET, ReachDelta(delta_trefi=0.5))
        assert 0.0 < mild < harsh < 1.0

    def test_zero_reach_zero_fpr(self, planner):
        assert planner.estimated_false_positive_rate(TARGET, ReachDelta()) == 0.0

    def test_headline_fpr_under_50pct(self, planner):
        fpr = planner.estimated_false_positive_rate(TARGET, ReachDelta(delta_trefi=0.250))
        assert fpr < 0.50


class TestEvaluate:
    def test_feasible_plan_structure(self, planner):
        plan = planner.evaluate(TARGET, ReachDelta(delta_trefi=0.250), PlannerConstraints())
        assert plan.feasible
        assert plan.expected_profiled_cells >= plan.expected_failures
        assert plan.round_seconds > 0.0
        assert 0.0 <= plan.profiling_time_fraction < 1.0
        assert plan.reach_conditions.trefi == pytest.approx(1.274)

    def test_fpr_constraint_blocks(self, planner):
        constraints = PlannerConstraints(max_false_positive_rate=0.05)
        plan = planner.evaluate(TARGET, ReachDelta(delta_trefi=0.5), constraints)
        assert not plan.feasible
        assert "FPR" in plan.infeasibility_reason

    def test_capacity_constraint_blocks(self, planner):
        constraints = PlannerConstraints(mitigation_capacity_cells=1.0)
        plan = planner.evaluate(TARGET, ReachDelta(delta_trefi=0.250), constraints)
        assert not plan.feasible
        assert "capacity" in plan.infeasibility_reason

    def test_stronger_ecc_longer_interval(self, planner):
        weak = planner.evaluate(TARGET, ReachDelta(), PlannerConstraints())
        strong = RelaxedRefreshPlanner(planner.spd, ecc=ECC2).evaluate(
            TARGET, ReachDelta(), PlannerConstraints()
        )
        assert strong.reprofile_interval_seconds > weak.reprofile_interval_seconds


class TestPlan:
    def test_picks_most_aggressive_feasible(self, planner):
        plan = planner.plan(TARGET, PlannerConstraints(max_false_positive_rate=0.50))
        assert plan.feasible
        # A tighter FPR budget must never yield a more aggressive reach.
        tight = planner.plan(TARGET, PlannerConstraints(max_false_positive_rate=0.20))
        assert tight.reach.delta_trefi <= plan.reach.delta_trefi

    def test_impossible_constraints_flagged(self, planner):
        constraints = PlannerConstraints(
            max_false_positive_rate=0.0, mitigation_capacity_cells=0.0
        )
        plan = planner.plan(TARGET, constraints, candidate_deltas_s=(0.125, 0.25))
        assert not plan.feasible
        assert plan.infeasibility_reason

    def test_empty_candidates_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan(TARGET, candidate_deltas_s=())

    def test_constraint_validation(self):
        with pytest.raises(ConfigurationError):
            PlannerConstraints(max_false_positive_rate=1.0)
        with pytest.raises(ConfigurationError):
            PlannerConstraints(min_coverage=0.0)

    def test_bad_safety_factor_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            RelaxedRefreshPlanner(planner.spd, reprofile_safety_factor=0.0)

    def test_planned_fpr_matches_measurement(self, planner):
        """The SPD-based FPR estimate should predict the measured FPR."""
        from repro.core import BruteForceProfiler, ReachProfiler, evaluate
        from repro.dram.chip import SimulatedDRAMChip

        plan = planner.plan(TARGET, PlannerConstraints(max_false_positive_rate=0.50))
        truth = BruteForceProfiler(iterations=16).run(
            SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=1), TARGET
        )
        measured = evaluate(
            ReachProfiler(reach=plan.reach, iterations=5).run(
                SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=1), TARGET
            ),
            truth.failing,
        )
        # The SPD estimate is conservative: the brute-force truth also
        # captures marginal cells beyond the analytic target count, so the
        # measured FPR sits at or below the estimate.
        assert measured.false_positive_rate <= plan.expected_false_positive_rate + 0.10
        assert measured.false_positive_rate > 0.0
