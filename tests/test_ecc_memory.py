"""Tests for the ECC-protected memory model, including the empirical
validation of the binomial UBER math against the real codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.hamming import DecodeStatus
from repro.ecc.memory import EccProtectedMemory
from repro.ecc.model import EccStrength, uncorrectable_word_probability
from repro.errors import ConfigurationError


class TestDataPath:
    def test_write_read_roundtrip(self):
        memory = EccProtectedMemory(n_words=8)
        memory.write(3, 0xDEADBEEF)
        result = memory.read(3)
        assert result.status is DecodeStatus.OK
        assert result.data == 0xDEADBEEF

    def test_fill_random_then_all_clean(self):
        memory = EccProtectedMemory(n_words=32)
        memory.fill_random()
        outcome = memory.scrub()
        assert outcome.words_clean == 32
        assert outcome.words_corrected == 0

    def test_index_bounds(self):
        memory = EccProtectedMemory(n_words=4)
        with pytest.raises(ConfigurationError):
            memory.write(4, 0)
        with pytest.raises(ConfigurationError):
            memory.read(-1)

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            EccProtectedMemory(n_words=0)


class TestFaultInjection:
    def test_single_flip_corrected_by_scrub(self):
        memory = EccProtectedMemory(n_words=4)
        memory.fill_random()
        memory.inject_cell_failures([72 * 2 + 5])  # word 2, bit 5
        outcome = memory.scrub()
        assert outcome.words_corrected == 1
        assert memory.verify_against_golden() == 0
        # Repair cleared the error: a second scrub sees everything clean.
        assert memory.scrub().words_clean == 4

    def test_double_flip_uncorrectable(self):
        memory = EccProtectedMemory(n_words=4)
        memory.fill_random()
        memory.inject_cell_failures([72 * 1 + 3, 72 * 1 + 40])
        outcome = memory.scrub()
        assert outcome.words_uncorrectable == 1
        assert memory.verify_against_golden() >= 1

    def test_flip_beyond_array_rejected(self):
        memory = EccProtectedMemory(n_words=2)
        with pytest.raises(ConfigurationError):
            memory.inject_cell_failures([72 * 5])

    def test_random_injection_count(self):
        memory = EccProtectedMemory(n_words=256, seed=3)
        memory.fill_random()
        flips = memory.inject_random_failures(0.01)
        expected = 256 * 72 * 0.01
        assert flips == pytest.approx(expected, rel=0.4)

    def test_invalid_rber_rejected(self):
        memory = EccProtectedMemory(n_words=4)
        with pytest.raises(ConfigurationError):
            memory.inject_random_failures(1.5)


class TestModelValidation:
    """The Eq-6 binomial model must predict the real codec's behaviour."""

    def test_uncorrectable_fraction_matches_binomial(self):
        rber = 0.01
        memory = EccProtectedMemory(n_words=4000, seed=11)
        memory.fill_random()
        memory.inject_random_failures(rber)
        outcome = memory.scrub(repair=False)
        strength = EccStrength(name="secded72", word_bits=72, correctable=1)
        predicted = uncorrectable_word_probability(strength, rber)
        assert outcome.uncorrectable_fraction == pytest.approx(predicted, rel=0.25)

    def test_low_rber_mostly_correctable(self):
        # At RBER 2e-4 the binomial model predicts ~0.2 double-hit words in
        # 2000, so scrubbing should recover (essentially) everything.
        memory = EccProtectedMemory(n_words=2000, seed=13)
        memory.fill_random()
        memory.inject_random_failures(2e-4)
        outcome = memory.scrub()
        assert outcome.words_uncorrectable <= 2
        assert memory.verify_against_golden() <= 2

    @given(st.integers(min_value=0, max_value=71), st.integers(min_value=0, max_value=31))
    @settings(max_examples=25)
    def test_any_single_fault_is_harmless(self, bit, word):
        memory = EccProtectedMemory(n_words=32, seed=17)
        memory.fill_random()
        memory.inject_cell_failures([72 * word + bit])
        memory.scrub()
        assert memory.verify_against_golden() == 0
