"""Unit tests for the REAPER firmware wrapper."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.reaper import REAPER
from repro.errors import ConfigurationError
from repro.mitigation import ArchShield, RowMapOut


def make_reaper(chip, target=Conditions(trefi=1.024, temperature=45.0), **kwargs):
    mitigation = ArchShield(capacity_bits=chip.capacity_bits)
    return REAPER(chip, mitigation, target, **kwargs), mitigation


class TestConfiguration:
    def test_temperature_reach_rejected(self, chip):
        """Section 7.1: REAPER firmware only manipulates the refresh interval."""
        with pytest.raises(ConfigurationError):
            REAPER(
                chip,
                ArchShield(capacity_bits=chip.capacity_bits),
                Conditions(trefi=1.024),
                reach=ReachDelta(delta_temperature=5.0),
            )

    def test_reach_conditions_derived_from_target(self, chip):
        reaper, _ = make_reaper(chip)
        assert reaper.reach_conditions.trefi == pytest.approx(1.274)


class TestProfileAndUpdate:
    def test_round_populates_mitigation(self, chip):
        reaper, mitigation = make_reaper(chip)
        round_record = reaper.profile_and_update()
        assert round_record.cells_added_to_mitigation == len(round_record.profile)
        assert mitigation.known_cell_count == len(round_record.profile)
        assert round_record.runtime_seconds > 0.0

    def test_second_round_adds_only_new_cells(self, chip):
        reaper, mitigation = make_reaper(chip)
        first = reaper.profile_and_update()
        chip.wait(3600.0)  # let VRT evolve
        second = reaper.profile_and_update()
        assert second.cells_added_to_mitigation <= len(second.profile)
        assert mitigation.known_cell_count >= len(first.profile)

    def test_rounds_are_recorded(self, chip):
        reaper, _ = make_reaper(chip)
        reaper.profile_and_update()
        reaper.profile_and_update()
        assert [r.index for r in reaper.rounds] == [0, 1]
        assert reaper.total_pause_seconds == pytest.approx(
            sum(r.runtime_seconds for r in reaper.rounds)
        )

    def test_pause_runtime_matches_clock(self, chip):
        reaper, _ = make_reaper(chip)
        t0 = chip.clock.now
        record = reaper.profile_and_update()
        assert chip.clock.now - t0 == pytest.approx(record.runtime_seconds)

    def test_save_restore_extends_pause(self, chip_factory):
        """Footnote 4: a naive save/restore adds to the round pause."""
        plain_chip, costly_chip = chip_factory(), chip_factory()
        plain, _ = make_reaper(plain_chip)
        costly = REAPER(
            costly_chip,
            ArchShield(capacity_bits=costly_chip.capacity_bits),
            Conditions(trefi=1.024, temperature=45.0),
            save_restore_seconds=30.0,
        )
        plain_pause = plain.profile_and_update().runtime_seconds
        costly_pause = costly.profile_and_update().runtime_seconds
        assert costly_pause == pytest.approx(plain_pause + 60.0)

    def test_negative_save_restore_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            REAPER(
                chip,
                ArchShield(capacity_bits=chip.capacity_bits),
                Conditions(trefi=1.024),
                save_restore_seconds=-1.0,
            )

    def test_works_with_row_mapout(self, chip):
        mitigation = RowMapOut(
            total_rows=chip.geometry.total_rows,
            bits_per_row=chip.geometry.bits_per_row,
            max_mapped_fraction=0.5,
        )
        reaper = REAPER(chip, mitigation, Conditions(trefi=1.024))
        record = reaper.profile_and_update()
        assert mitigation.mapped_row_count > 0
        assert mitigation.mapped_row_count <= len(record.profile)
