"""Shared fixtures: small, fast chips for unit testing.

A 1/16 Gbit chip carries a weak tail of a few hundred cells -- large enough
for statistically meaningful profiling assertions, small enough that the
whole suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.dram.vendor import VENDOR_B

TINY_GEOMETRY = ChipGeometry.from_capacity_gigabits(1.0 / 16.0)
TEST_SEED = 1234


@pytest.fixture
def tiny_geometry() -> ChipGeometry:
    return TINY_GEOMETRY


@pytest.fixture
def chip() -> SimulatedDRAMChip:
    """A small vendor-B chip with its own clock."""
    return SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)


@pytest.fixture
def chip_factory():
    """Factory for statistically identical small chips."""

    def build(chip_id: int = 0, **kwargs) -> SimulatedDRAMChip:
        kwargs.setdefault("geometry", TINY_GEOMETRY)
        kwargs.setdefault("seed", TEST_SEED)
        kwargs.setdefault("vendor", VENDOR_B)
        return SimulatedDRAMChip(chip_id=chip_id, **kwargs)

    return build


@pytest.fixture
def target_conditions() -> Conditions:
    return Conditions(trefi=1.024, temperature=45.0)
