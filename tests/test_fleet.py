"""Tests for the fleet-batched campaign kernel.

The fleet path's whole value proposition is "byte-identical, just
faster", so nearly every test here is an equality pin against the
per-chip reference:

* :class:`repro.core.fleetprof.FleetProfiler` over a
  :class:`repro.dram.fleet.ChipFleet` discovers exactly the cells a
  standalone :class:`~repro.core.bruteforce.BruteForceProfiler` run per
  chip would, and leaves every chip's read-RNG stream in the exact same
  end state;
* :class:`repro.infra.testbed.FleetBed` settles to the same ambient, the
  same clock time, and the same chip temperatures as independent
  single-chip beds;
* :func:`repro.runner.measure_fleet` returns, member for member, the
  same JSON :func:`repro.runner.measure_chip` would;
* a campaign run with ``chips_per_unit`` > 1 -- serial or pooled --
  produces the same :class:`CampaignSummary` as the per-chip path, and
  fleet runs resume per-chip run directories (the store only ever holds
  per-chip rows);
* the process-pool backend keeps its submission window bounded and
  derives its default worker count from the CPU affinity mask.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.core.fleetprof import FleetProfiler
from repro.dram.fleet import ChipFleet, FleetPopulation
from repro.dram.geometry import ChipGeometry
from repro.dram.vendor import VENDOR_A, VENDOR_B, vendor_by_name
from repro.errors import ConfigurationError, ProfilingError
from repro.infra.testbed import FleetBed, TestBed
from repro.runner import (
    CHIP_UNIT_KIND,
    FLEET_UNIT_KIND,
    UnitResult,
    WorkUnit,
    build_chip_units,
    build_fleet_units,
    expand_fleet_result,
    measure_chip,
    measure_fleet,
)
from repro.runner import executors as executors_mod
from repro.runner.executors import ProcessPoolBackend, default_worker_count
from repro.runner.units import STATUS_FAILED, STATUS_OK, UnitFailure

from conftest import TEST_SEED

# Small enough that a handful of fleet-vs-serial comparisons stays fast,
# large enough for a weak tail worth comparing.
MICRO = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)

MEMBERS = [(0, VENDOR_B), (1, VENDOR_B), (2, VENDOR_A)]


def build_fleet_bed(**kwargs):
    kwargs.setdefault("members", MEMBERS)
    kwargs.setdefault("geometry", MICRO)
    kwargs.setdefault("seed", TEST_SEED)
    return FleetBed.build(**kwargs)


def build_single_beds(**kwargs):
    kwargs.setdefault("geometry", MICRO)
    kwargs.setdefault("seed", TEST_SEED)
    return [
        TestBed.build_single(chip_id=chip_id, vendor=vendor, **kwargs)
        for chip_id, vendor in MEMBERS
    ]


class TestFleetPopulation:
    def test_segments_partition_the_stacked_tail(self):
        bed = build_fleet_bed()
        population = FleetPopulation([chip.population for chip in bed.chips])
        assert population.n_chips == len(MEMBERS)
        total = 0
        for i, chip in enumerate(bed.chips):
            start, end = population.segment(i)
            assert end - start == len(chip.population)
            assert np.array_equal(
                population.member_indices(i), chip.population.indices
            )
            total += end - start
        assert len(population) == total
        assert population.offsets[-1] == total

    def test_rejects_empty_and_mismatched_inputs(self):
        with pytest.raises(ConfigurationError):
            FleetPopulation([])
        bed = build_fleet_bed()
        population = FleetPopulation([chip.population for chip in bed.chips])
        rngs = [chip.read_rng for chip in bed.chips]
        with pytest.raises(ConfigurationError):
            population.sample_failures(1.0, (1.0,), [None], [None], rngs[:1])
        with pytest.raises(ConfigurationError):
            population.sample_failures(
                -0.5, (1.0,) * 3, [None] * 3, [None] * 3, rngs
            )


class TestChipFleet:
    def test_rejects_heterogeneous_members(self):
        small = TestBed.build_single(chip_id=0, vendor=VENDOR_B, geometry=MICRO, seed=1)
        other_geometry = TestBed.build_single(
            chip_id=1,
            vendor=VENDOR_B,
            geometry=ChipGeometry.from_capacity_gigabits(1.0 / 32.0),
            seed=1,
        )
        with pytest.raises(ConfigurationError):
            ChipFleet([small.chips[0], other_geometry.chips[0]])
        other_trefi = TestBed.build_single(
            chip_id=1, vendor=VENDOR_B, geometry=MICRO, seed=1, max_trefi_s=5.0
        )
        with pytest.raises(ConfigurationError):
            ChipFleet([small.chips[0], other_trefi.chips[0]])
        with pytest.raises(ConfigurationError):
            ChipFleet([])

    def test_read_failures_guards_exposure_divergence(self):
        bed = build_fleet_bed()
        fleet = ChipFleet(bed.chips)
        bed.set_ambient(45.0)
        from repro.patterns import STANDARD_PATTERNS

        fleet.write_pattern(STANDARD_PATTERNS[0])
        fleet.disable_refresh()
        fleet.wait(0.512)
        # Shrink one member's exposure window behind the fleet's back
        # without touching its clock: a sneaky refresh burst restarts the
        # window, so clocks agree but exposures do not.
        rogue = bed.beds[1].chips[0]
        rogue.enable_refresh()
        rogue.disable_refresh()
        fleet.wait(0.256)
        fleet.enable_refresh()
        with pytest.raises(ProfilingError):
            fleet.read_failures()

    def test_lockstep_commands_guard_clock_divergence(self):
        bed = build_fleet_bed()
        fleet = ChipFleet(bed.chips)
        bed.set_ambient(45.0)
        from repro.patterns import STANDARD_PATTERNS

        fleet.write_pattern(STANDARD_PATTERNS[0])
        fleet.disable_refresh()
        fleet.wait(0.512)
        # Advance one member's clock behind the fleet's back: the next
        # lockstep command detects the divergence immediately.
        bed.beds[1].chips[0].wait(0.128)
        with pytest.raises(ProfilingError):
            fleet.enable_refresh()


class TestFleetBed:
    def test_set_ambient_replays_the_lead_settle(self):
        fleet_bed = build_fleet_bed()
        single_beds = build_single_beds()

        for temperature in (45.0, 55.0, 45.0):
            fleet_elapsed = fleet_bed.set_ambient(temperature)
            single_elapsed = [
                bed.set_ambient(temperature) for bed in single_beds
            ]
            assert all(e == fleet_elapsed for e in single_elapsed)
            # The lead chamber is the one actually settled; member beds
            # replay its trajectory onto their clocks and chips.
            assert (
                fleet_bed.beds[0].chamber.ambient_c
                == single_beds[0].chamber.ambient_c
            )
            for fbed, sbed in zip(fleet_bed.beds, single_beds):
                assert fbed.clock.now == sbed.clock.now
                assert fbed.chips[0].temperature_c == sbed.chips[0].temperature_c

    def test_rejects_multi_chip_member_beds(self):
        shared = TestBed.build(chips_per_vendor=1, geometry=MICRO, seed=TEST_SEED)
        with pytest.raises(ConfigurationError):
            FleetBed([shared])
        with pytest.raises(ConfigurationError):
            FleetBed([])


class TestFleetProfilerEquivalence:
    """The core contract: fleet-fused == per-chip, bit for bit."""

    def run_both(self, iterations=2, trefi=1.024, temperature=45.0):
        fleet_bed = build_fleet_bed()
        fleet_bed.set_ambient(temperature)
        fleet = ChipFleet(fleet_bed.chips)
        fleet_results = FleetProfiler(iterations=iterations).run(
            fleet, Conditions(trefi=trefi, temperature=temperature)
        )

        single_profiles = []
        single_chips = []
        for bed in build_single_beds():
            bed.set_ambient(temperature)
            chip = bed.chips[0]
            profile = BruteForceProfiler(iterations=iterations).run(
                chip, Conditions(trefi=trefi, temperature=temperature)
            )
            single_profiles.append(profile)
            single_chips.append(chip)
        return fleet_bed, fleet_results, single_chips, single_profiles

    def test_failing_sets_identical_to_per_chip_runs(self):
        _, fleet_results, _, single_profiles = self.run_both()
        for fleet_result, profile in zip(fleet_results, single_profiles):
            assert fleet_result.failing == profile.failing
            assert len(fleet_result) == len(profile)

    def test_rng_streams_end_in_identical_state(self):
        fleet_bed, _, single_chips, _ = self.run_both()
        for fleet_chip, single_chip in zip(fleet_bed.chips, single_chips):
            assert (
                fleet_chip.read_rng.bit_generator.state
                == single_chip.read_rng.bit_generator.state
            )
            assert fleet_chip.clock.now == single_chip.clock.now

    def test_repeated_runs_continue_identically(self):
        """A second profiling pass (as the campaign's temperature sweep
        does) stays byte-identical -- RNG and clock state carry over."""
        fleet_bed = build_fleet_bed()
        fleet_bed.set_ambient(45.0)
        fleet = ChipFleet(fleet_bed.chips)
        profiler = FleetProfiler(iterations=1)
        profiler.run(fleet, Conditions(trefi=0.512, temperature=45.0))
        fleet_bed.set_ambient(55.0)
        second = profiler.run(fleet, Conditions(trefi=1.024, temperature=55.0))

        singles = []
        for bed in build_single_beds():
            bed.set_ambient(45.0)
            chip = bed.chips[0]
            single_profiler = BruteForceProfiler(iterations=1)
            single_profiler.run(chip, Conditions(trefi=0.512, temperature=45.0))
            bed.set_ambient(55.0)
            singles.append(
                single_profiler.run(chip, Conditions(trefi=1.024, temperature=55.0))
            )
        for fleet_result, profile in zip(second, singles):
            assert fleet_result.failing == profile.failing

    def test_trefi_above_fleet_maximum_rejected(self):
        bed = build_fleet_bed(max_trefi_s=1.1)
        fleet = ChipFleet(bed.chips)
        with pytest.raises(ProfilingError):
            FleetProfiler(iterations=1).run(
                fleet, Conditions(trefi=2.048, temperature=45.0)
            )

    def test_profiler_validation(self):
        with pytest.raises(ConfigurationError):
            FleetProfiler(iterations=0)
        with pytest.raises(ConfigurationError):
            FleetProfiler(patterns=())


class TestMeasureFleetWorker:
    UNIT_KW = dict(
        chips_per_vendor=1,
        geometry=MICRO,
        iterations=1,
        seed=TEST_SEED,
        intervals_s=(0.512, 1.024),
        temperatures_c=(45.0, 55.0),
    )

    def test_values_identical_to_measure_chip(self):
        units = build_chip_units(**self.UNIT_KW)
        serial = [measure_chip(unit.payload) for unit in units]
        (chunk,) = build_fleet_units(units, chips_per_unit=len(units))
        fleet = measure_fleet(chunk.payload)
        assert [c["unit_id"] for c in fleet["chips"]] == [u.unit_id for u in units]
        assert [c["value"] for c in fleet["chips"]] == serial

    def test_chunking_does_not_change_values(self):
        units = build_chip_units(**self.UNIT_KW)
        serial = [measure_chip(unit.payload) for unit in units]
        values = []
        for chunk in build_fleet_units(units, chips_per_unit=2):
            values.extend(c["value"] for c in measure_fleet(chunk.payload)["chips"])
        assert values == serial

    def test_rejects_heterogeneous_chunks(self):
        units = build_chip_units(**self.UNIT_KW)
        other = build_chip_units(**{**self.UNIT_KW, "seed": TEST_SEED + 1})
        (chunk,) = build_fleet_units((units[0], other[1]), chips_per_unit=2)
        with pytest.raises(ConfigurationError):
            measure_fleet(chunk.payload)

    def test_rejects_empty_chunks(self):
        with pytest.raises(ConfigurationError):
            measure_fleet({"members": []})


class TestFleetUnits:
    def make_units(self, n=5):
        return tuple(
            WorkUnit(unit_id=f"chip-{i:05d}", kind=CHIP_UNIT_KIND, payload={"i": i})
            for i in range(n)
        )

    def test_build_fleet_units_chunks_consecutively(self):
        units = self.make_units(5)
        chunks = build_fleet_units(units, chips_per_unit=2)
        assert [c.unit_id for c in chunks] == [
            "fleet-chip-00000-chip-00001",
            "fleet-chip-00002-chip-00003",
            "fleet-chip-00004-chip-00004",
        ]
        assert all(c.kind == FLEET_UNIT_KIND for c in chunks)
        member_ids = [
            m["unit_id"] for c in chunks for m in c.payload["members"]
        ]
        assert member_ids == [u.unit_id for u in units]

    def test_build_fleet_units_validation(self):
        units = self.make_units(2)
        with pytest.raises(ConfigurationError):
            build_fleet_units(units, chips_per_unit=0)
        alien = WorkUnit(unit_id="x", kind="toy", payload={})
        with pytest.raises(ConfigurationError):
            build_fleet_units((alien,), chips_per_unit=1)

    def test_expand_ok_result_restores_per_chip_rows(self):
        (chunk,) = build_fleet_units(self.make_units(3), chips_per_unit=3)
        result = UnitResult(
            unit_id=chunk.unit_id,
            status=STATUS_OK,
            value={
                "chips": [
                    {"unit_id": m["unit_id"], "value": {"n": i}}
                    for i, m in enumerate(chunk.payload["members"])
                ]
            },
            attempts=1,
            elapsed_s=3.0,
        )
        expanded = expand_fleet_result(chunk, result)
        assert [r.unit_id for r in expanded] == [
            "chip-00000",
            "chip-00001",
            "chip-00002",
        ]
        assert all(r.ok for r in expanded)
        assert [r.value for r in expanded] == [{"n": 0}, {"n": 1}, {"n": 2}]
        assert all(r.elapsed_s == pytest.approx(1.0) for r in expanded)

    def test_expand_failed_result_fails_every_member(self):
        (chunk,) = build_fleet_units(self.make_units(2), chips_per_unit=2)
        failure = UnitFailure(type="RuntimeError", message="boom", traceback="tb")
        result = UnitResult(
            unit_id=chunk.unit_id,
            status=STATUS_FAILED,
            error=failure,
            attempts=2,
            elapsed_s=1.0,
        )
        expanded = expand_fleet_result(chunk, result)
        assert [r.unit_id for r in expanded] == ["chip-00000", "chip-00001"]
        assert all(not r.ok for r in expanded)
        assert all(r.error == failure for r in expanded)
        assert all(r.attempts == 2 for r in expanded)

    def test_expand_rejects_member_mismatch(self):
        (chunk,) = build_fleet_units(self.make_units(2), chips_per_unit=2)
        result = UnitResult(
            unit_id=chunk.unit_id,
            status=STATUS_OK,
            value={"chips": [{"unit_id": "chip-00000", "value": {}}]},
            attempts=1,
            elapsed_s=1.0,
        )
        with pytest.raises(ConfigurationError):
            expand_fleet_result(chunk, result)


@pytest.fixture(scope="module")
def fleet_campaign():
    return CharacterizationCampaign(
        chips_per_vendor=2, geometry=MICRO, iterations=1, seed=TEST_SEED
    )


FLEET_CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))


class TestFleetCampaign:
    def test_fleet_serial_and_pooled_match_per_chip(self, fleet_campaign):
        serial = fleet_campaign.run(**FLEET_CAMPAIGN_KW)
        fleet = fleet_campaign.run(chips_per_unit=2, **FLEET_CAMPAIGN_KW)
        pooled = fleet_campaign.run(
            backend="process", workers=2, chips_per_unit=4, **FLEET_CAMPAIGN_KW
        )
        assert fleet == serial
        assert pooled == serial
        assert fleet.to_text() == serial.to_text()

    def test_chips_per_unit_one_is_the_per_chip_path(self, fleet_campaign):
        serial = fleet_campaign.run(**FLEET_CAMPAIGN_KW)
        assert fleet_campaign.run(chips_per_unit=1, **FLEET_CAMPAIGN_KW) == serial

    def test_chips_per_unit_validation(self, fleet_campaign):
        with pytest.raises(ConfigurationError):
            fleet_campaign.run(chips_per_unit=0, **FLEET_CAMPAIGN_KW)

    def test_fleet_run_resumes_per_chip_run_directory(self, fleet_campaign, tmp_path):
        run_dir = str(tmp_path / "run")
        full = fleet_campaign.run(run_dir=run_dir, **FLEET_CAMPAIGN_KW)

        results_path = tmp_path / "run" / "results.jsonl"
        kept = results_path.read_text().splitlines()[:2]
        results_path.write_text("\n".join(kept) + "\n")

        executed = []
        resumed = fleet_campaign.run(
            run_dir=run_dir,
            resume=True,
            chips_per_unit=3,
            progress=lambda result, tracker: executed.append(result.unit_id),
            **FLEET_CAMPAIGN_KW,
        )
        assert resumed == full
        # Per-chip rows, per-chip progress: chunk ids never surface.
        assert len(executed) == 4
        assert all(unit_id.startswith("chip-") for unit_id in executed)

    def test_per_chip_run_resumes_fleet_run_directory(self, fleet_campaign, tmp_path):
        run_dir = str(tmp_path / "run")
        full = fleet_campaign.run(
            run_dir=run_dir, chips_per_unit=2, **FLEET_CAMPAIGN_KW
        )
        results_path = tmp_path / "run" / "results.jsonl"
        rows = results_path.read_text().splitlines()
        # The store holds one per-chip row per chip regardless of chunking.
        assert len(rows) == 6
        kept = rows[:3]
        results_path.write_text("\n".join(kept) + "\n")
        resumed = fleet_campaign.run(run_dir=run_dir, resume=True, **FLEET_CAMPAIGN_KW)
        assert resumed == full


class _RecordingFuture:
    def __init__(self, value):
        self._value = value

    def result(self):
        return self._value

    def __hash__(self):
        return id(self)


class _RecordingExecutor:
    """Stands in for ProcessPoolExecutor: runs inline, counts submissions."""

    instances = []

    def __init__(self, max_workers):
        self.max_workers = max_workers
        self.submitted = 0
        type(self).instances.append(self)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args):
        self.submitted += 1
        return _RecordingFuture(fn(*args))


def _fake_wait(pending, return_when=None):
    # Resolve exactly one future per drain cycle, mimicking FIRST_COMPLETED.
    done = {next(iter(pending))}
    return done, pending - done


class TestBoundedSubmissionWindow:
    def test_inflight_never_exceeds_window(self, monkeypatch):
        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", _RecordingExecutor)
        monkeypatch.setattr(executors_mod, "wait", _fake_wait)
        _RecordingExecutor.instances.clear()

        units = tuple(
            WorkUnit(unit_id=f"u-{i:03d}", kind="toy", payload={"i": i})
            for i in range(40)
        )
        backend = ProcessPoolBackend(workers=2)
        window = backend.INFLIGHT_FACTOR * 2

        seen = []
        submitted_at_first_yield = None
        for result in backend.run(_identity_worker, units):
            if submitted_at_first_yield is None:
                submitted_at_first_yield = _RecordingExecutor.instances[0].submitted
            seen.append(result.unit_id)

        # All units completed, but the initial submission burst was the
        # window, not the whole campaign.
        assert sorted(seen) == [u.unit_id for u in units]
        assert submitted_at_first_yield <= window + 1
        assert _RecordingExecutor.instances[0].submitted == len(units)

    def test_pool_not_oversized_for_tiny_unit_counts(self, monkeypatch):
        monkeypatch.setattr(executors_mod, "ProcessPoolExecutor", _RecordingExecutor)
        monkeypatch.setattr(executors_mod, "wait", _fake_wait)
        _RecordingExecutor.instances.clear()

        units = (WorkUnit(unit_id="only", kind="toy", payload={"i": 0}),)
        list(ProcessPoolBackend(workers=8).run(_identity_worker, units))
        assert _RecordingExecutor.instances[0].max_workers == 1


def _identity_worker(payload):
    return payload


class TestDefaultWorkerCount:
    def test_uses_affinity_mask_when_available(self, monkeypatch):
        monkeypatch.setattr(
            executors_mod.os, "sched_getaffinity", lambda pid: {0, 3}, raising=False
        )
        assert default_worker_count() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(executors_mod.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(executors_mod.os, "cpu_count", lambda: 7)
        assert default_worker_count() == 7

    def test_never_returns_zero(self, monkeypatch):
        monkeypatch.setattr(
            executors_mod.os, "sched_getaffinity", lambda pid: set(), raising=False
        )
        assert default_worker_count() == 1
        monkeypatch.delattr(executors_mod.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(executors_mod.os, "cpu_count", lambda: None)
        assert default_worker_count() == 1

    def test_pool_backend_defaults_from_worker_count(self, monkeypatch):
        monkeypatch.setattr(
            executors_mod, "default_worker_count", lambda: 5
        )
        assert ProcessPoolBackend().workers == 5
