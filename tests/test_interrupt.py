"""Cooperative cancellation, graceful shutdown, and manifest status.

Covers the runner-side halves of the service contract:

* ``should_stop`` stops both backends without losing finished work;
* an interrupted run marks its manifest ``interrupted`` and a resumed run
  completes it to a summary byte-identical to an uninterrupted one;
* :func:`repro.runner.graceful_stop` turns SIGINT/SIGTERM into a drain;
* run-dir collisions fail with the stored-vs-requested spec diff.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from conftest import TINY_GEOMETRY

from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError
from repro.runner import (
    MANIFEST_NAME,
    RESULTS_NAME,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    GracefulStop,
    ResultStore,
    RunnerEngine,
    SerialBackend,
    WorkUnit,
    execute_unit,
    graceful_stop,
    manifest_spec_diff,
)


def _units(n: int):
    return [
        WorkUnit(unit_id=f"u{i:03d}", kind="test.echo", payload={"value": i})
        for i in range(n)
    ]


def _echo_worker(payload):
    return {"value": payload["value"]}


def _manifest(run_dir) -> dict:
    return json.loads((run_dir / MANIFEST_NAME).read_text(encoding="utf-8"))


class TestSerialBackendStop:
    def test_stop_after_two_units(self):
        done = []

        def worker(payload):
            done.append(payload["value"])
            return {}

        backend = SerialBackend()
        results = list(
            backend.run(worker, _units(10), should_stop=lambda: len(done) >= 2)
        )
        # The probe is checked before each unit: two finish, the rest never run.
        assert len(results) == 2
        assert done == [0, 1]

    def test_no_stop_runs_everything(self):
        backend = SerialBackend()
        assert len(list(backend.run(_echo_worker, _units(5)))) == 5


class TestEngineInterrupt:
    def _campaign(self):
        return CharacterizationCampaign(
            chips_per_vendor=2, geometry=TINY_GEOMETRY, iterations=2, seed=99
        )

    def test_interrupt_marks_manifest_and_resume_completes(self, tmp_path):
        run_dir = tmp_path / "run"
        seen = []

        def progress(result, tracker):
            seen.append(result.unit_id)

        partial = self._campaign().run(
            intervals_s=(0.512,),
            temperatures_c=(45.0,),
            run_dir=str(run_dir),
            progress=progress,
            should_stop=lambda: len(seen) >= 2,
        )
        manifest = _manifest(run_dir)
        assert manifest["status"] == STATUS_INTERRUPTED
        rows = (run_dir / RESULTS_NAME).read_text(encoding="utf-8").splitlines()
        assert len(rows) >= 2  # finished units were persisted, not discarded

        resumed = self._campaign().run(
            intervals_s=(0.512,),
            temperatures_c=(45.0,),
            run_dir=str(run_dir),
            resume=True,
        )
        assert _manifest(run_dir)["status"] == STATUS_COMPLETE

        clean = self._campaign().run(intervals_s=(0.512,), temperatures_c=(45.0,))
        assert json.dumps(resumed.to_json_dict(), sort_keys=True) == json.dumps(
            clean.to_json_dict(), sort_keys=True
        )
        # partial summary only covers the drained units
        assert partial.n_chips < clean.n_chips

    def test_clean_run_marks_complete(self, tmp_path):
        run_dir = tmp_path / "run"
        self._campaign().run(
            intervals_s=(0.512,), temperatures_c=(45.0,), run_dir=str(run_dir)
        )
        assert _manifest(run_dir)["status"] == STATUS_COMPLETE


class TestStoreStatus:
    def test_status_lifecycle(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        store.open({"fingerprint": "abc"})
        store.mark_status(STATUS_RUNNING)
        assert _manifest(store.run_dir)["status"] == STATUS_RUNNING
        store.mark_status(STATUS_COMPLETE)
        assert _manifest(store.run_dir)["status"] == STATUS_COMPLETE
        store.close()

    def test_collision_reports_spec_diff(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        store.open({"fingerprint": "abc", "seed": 1, "chips": 4})
        store.close()
        fresh = ResultStore(tmp_path / "run")
        with pytest.raises(ConfigurationError) as excinfo:
            fresh.open({"fingerprint": "def", "seed": 2, "chips": 4}, resume=True)
        message = str(excinfo.value)
        assert "seed: stored 1 != requested 2" in message

    def test_manifest_spec_diff_helper(self):
        diff = manifest_spec_diff(
            {"fingerprint": "a", "seed": 1, "extra": True},
            {"fingerprint": "b", "seed": 2},
        )
        assert "seed: stored 1 != requested 2" in diff
        assert "extra" in diff  # keys present on only one side are named


class TestGracefulStop:
    def test_sigint_requests_stop_without_raising(self):
        with graceful_stop() as stop:
            assert not stop.is_set()
            os.kill(os.getpid(), signal.SIGINT)
            assert stop.is_set()
            assert stop.signals_seen == 1
        # handler restored: a later SIGINT raises KeyboardInterrupt again
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)

    def test_second_signal_raises(self):
        with pytest.raises(KeyboardInterrupt):
            with graceful_stop() as stop:
                os.kill(os.getpid(), signal.SIGINT)
                assert stop.is_set()
                os.kill(os.getpid(), signal.SIGINT)

    def test_sigterm_also_drains(self):
        with graceful_stop() as stop:
            os.kill(os.getpid(), signal.SIGTERM)
            assert stop.is_set()

    def test_manual_request(self):
        stop = GracefulStop()
        assert not stop.is_set()
        stop.request()
        assert stop.is_set()


class TestExecuteUnitStillWorks:
    def test_execute_unit_roundtrip(self):
        result = execute_unit(_echo_worker, _units(1)[0])
        assert result.ok and result.value == {"value": 0}
