"""Unit tests for test data patterns."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.patterns import (
    BASE_PATTERNS,
    CHECKERBOARD,
    COLUMN_STRIPE,
    RANDOM,
    ROW_STRIPE,
    SOLID_ZERO,
    STANDARD_PATTERNS,
    WALKING_ONE,
    DataPattern,
    pattern_by_key,
)


class TestStandardSet:
    def test_six_base_patterns(self):
        assert len(BASE_PATTERNS) == 6

    def test_standard_set_includes_inverses(self):
        """Section 3.2: six data patterns and their inverses."""
        assert len(STANDARD_PATTERNS) == 12
        keys = {p.key for p in STANDARD_PATTERNS}
        for base in BASE_PATTERNS:
            assert base.key in keys
            assert base.inverse.key in keys

    def test_keys_unique(self):
        keys = [p.key for p in STANDARD_PATTERNS]
        assert len(keys) == len(set(keys))

    def test_pattern_by_key_roundtrip(self):
        for pattern in STANDARD_PATTERNS:
            assert pattern_by_key(pattern.key) == pattern

    def test_pattern_by_key_unknown(self):
        with pytest.raises(ConfigurationError):
            pattern_by_key("nonsense")

    def test_double_inverse_is_identity(self):
        assert CHECKERBOARD.inverse.inverse == CHECKERBOARD

    def test_only_random_is_stochastic(self):
        stochastic = [p for p in STANDARD_PATTERNS if p.stochastic]
        assert {p.name for p in stochastic} == {"random"}


class TestDataGeneration:
    BITS = 64

    def test_solid_is_all_zero(self):
        assert not SOLID_ZERO.fill_row(0, self.BITS).any()

    def test_solid_inverse_is_all_one(self):
        assert SOLID_ZERO.inverse.fill_row(0, self.BITS).all()

    def test_checkerboard_alternates_in_row(self):
        row = CHECKERBOARD.fill_row(0, self.BITS)
        assert np.array_equal(row[:4], [0, 1, 0, 1])

    def test_checkerboard_alternates_between_rows(self):
        r0 = CHECKERBOARD.fill_row(0, self.BITS)
        r1 = CHECKERBOARD.fill_row(1, self.BITS)
        assert np.array_equal(r0, 1 - r1)

    def test_row_stripe_constant_within_row(self):
        r0 = ROW_STRIPE.fill_row(0, self.BITS)
        r1 = ROW_STRIPE.fill_row(1, self.BITS)
        assert len(np.unique(r0)) == 1
        assert len(np.unique(r1)) == 1
        assert r0[0] != r1[0]

    def test_column_stripe_same_every_row(self):
        r0 = COLUMN_STRIPE.fill_row(0, self.BITS)
        r5 = COLUMN_STRIPE.fill_row(5, self.BITS)
        assert np.array_equal(r0, r5)
        assert np.array_equal(r0[:4], [0, 1, 0, 1])

    def test_walking_one_single_bit_set(self):
        for row in range(8):
            data = WALKING_ONE.fill_row(row, self.BITS)
            assert data.sum() == 1
            assert data[row % self.BITS] == 1

    def test_walking_one_inverse_single_zero(self):
        data = WALKING_ONE.inverse.fill_row(3, self.BITS)
        assert data.sum() == self.BITS - 1

    def test_random_requires_rng(self):
        with pytest.raises(ConfigurationError):
            RANDOM.fill_row(0, self.BITS)

    def test_random_with_rng_is_binary(self):
        rng = rng_mod.derive(1, "pattern-test")
        data = RANDOM.fill_row(0, 4096, rng)
        assert set(np.unique(data)) <= {0, 1}
        assert 0.4 < data.mean() < 0.6

    def test_inverse_flips_every_bit(self):
        for pattern in (SOLID_ZERO, CHECKERBOARD, ROW_STRIPE, COLUMN_STRIPE, WALKING_ONE):
            row = pattern.fill_row(2, self.BITS)
            inv = pattern.inverse.fill_row(2, self.BITS)
            assert np.array_equal(row, 1 - inv)

    def test_fill_matrix_shape(self):
        matrix = CHECKERBOARD.fill(4, 16)
        assert matrix.shape == (4, 16)

    def test_unknown_pattern_name_rejected(self):
        bad = DataPattern("bogus")
        with pytest.raises(ConfigurationError):
            bad.fill_row(0, 8)

    def test_bad_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            DataPattern("solid", alignment_beta=(0.0, 1.0))

    @given(st.integers(min_value=0, max_value=1000))
    def test_deterministic_patterns_are_pure(self, row):
        for pattern in (SOLID_ZERO, CHECKERBOARD, ROW_STRIPE, COLUMN_STRIPE, WALKING_ONE):
            a = pattern.fill_row(row, 32)
            b = pattern.fill_row(row, 32)
            assert np.array_equal(a, b)
