"""Unit tests for the ArchShield mitigation mechanism."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.mitigation.archshield import ArchShield, word_key

GBIT = 1 << 30


def make_shield(**kwargs):
    kwargs.setdefault("capacity_bits", GBIT)
    return ArchShield(**kwargs)


class TestWordKey:
    def test_int_cells_share_word(self):
        assert word_key(0, 64) == word_key(63, 64)
        assert word_key(64, 64) != word_key(63, 64)

    def test_tuple_cells(self):
        assert word_key((1, 129), 64) == (1, 2)


class TestIngest:
    def test_ingest_counts_new_cells(self):
        shield = make_shield()
        assert shield.ingest({1, 2, 100}) == 3
        assert shield.ingest({1, 2, 200}) == 1
        assert shield.known_cell_count == 4

    def test_cells_in_same_word_share_entry(self):
        shield = make_shield()
        shield.ingest({0, 1, 2})  # same 64-bit word
        assert shield.entry_count == 1

    def test_cells_in_different_words_multiple_entries(self):
        shield = make_shield()
        shield.ingest({0, 64, 128})
        assert shield.entry_count == 3

    def test_covers_after_ingest(self):
        shield = make_shield()
        shield.ingest({42})
        assert shield.covers(42)
        assert not shield.covers(43)

    def test_word_is_faulty(self):
        shield = make_shield()
        shield.ingest({70})
        assert shield.word_is_faulty(word_key(70, 64))
        assert not shield.word_is_faulty(word_key(0, 64))


class TestCapacity:
    def test_max_entries_from_reserve(self):
        shield = make_shield(reserve_fraction=0.04, entry_overhead_bits=128)
        assert shield.max_entries == int(GBIT * 0.04) // 128

    def test_capacity_error_when_full(self):
        shield = ArchShield(capacity_bits=1 << 16, reserve_fraction=0.04, entry_overhead_bits=128)
        budget = shield.max_entries
        with pytest.raises(CapacityError):
            shield.ingest({i * 64 for i in range(budget + 1)})

    def test_utilization(self):
        shield = make_shield()
        shield.ingest({0, 64})
        assert shield.utilization == pytest.approx(2 / shield.max_entries)

    def test_capacity_overhead_is_reservation(self):
        assert make_shield(reserve_fraction=0.04).capacity_overhead_fraction == 0.04

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ArchShield(capacity_bits=0)
        with pytest.raises(ConfigurationError):
            ArchShield(capacity_bits=GBIT, reserve_fraction=0.0)


class TestSlowdown:
    def test_no_faulty_accesses_no_slowdown(self):
        assert make_shield().expected_slowdown(0.0) == 1.0

    def test_slowdown_grows_with_faulty_rate(self):
        shield = make_shield()
        assert shield.expected_slowdown(0.01) < shield.expected_slowdown(0.1)

    def test_paper_scale_one_percent(self):
        """~1% slowdown at a 1% replica access rate (the paper's ArchShield
        cost at 1024 ms)."""
        assert make_shield().expected_slowdown(0.01) == pytest.approx(1.01)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            make_shield().expected_slowdown(1.5)
