"""Unit tests for RAPID retention-aware placement."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.reach import ReachProfiler
from repro.errors import CapacityError, ConfigurationError
from repro.mitigation.rapid import RAPID


def make_rapid(total_rows=100, **kwargs):
    return RAPID(total_rows=total_rows, bits_per_row=64, **kwargs)


class TestLearning:
    def test_failures_tighten_estimates(self):
        rapid = make_rapid()
        tightened = rapid.learn_from_failing_cells({64 * 3 + 5}, tested_interval_s=0.512)
        assert tightened == 1
        assert rapid.row_retention(3) == pytest.approx(0.512)

    def test_estimates_only_tighten_downwards(self):
        rapid = make_rapid()
        rapid.learn_row_retention(7, 0.512)
        rapid.learn_row_retention(7, 1.024)  # weaker evidence: ignored
        assert rapid.row_retention(7) == pytest.approx(0.512)
        rapid.learn_row_retention(7, 0.256)  # stronger evidence: kept
        assert rapid.row_retention(7) == pytest.approx(0.256)

    def test_survivors_raise_unknown_rows_only(self):
        rapid = make_rapid()
        rapid.learn_row_retention(1, 0.512)
        rapid.learn_survivors([1, 2], survived_interval_s=2.048)
        assert rapid.row_retention(1) == pytest.approx(0.512)  # failure wins
        assert rapid.row_retention(2) == pytest.approx(2.048)

    def test_unknown_rows_conservative(self):
        assert make_rapid().row_retention(42) == pytest.approx(0.064)

    def test_invalid_retention_rejected(self):
        with pytest.raises(ConfigurationError):
            make_rapid().learn_row_retention(1, 0.0)


class TestAllocation:
    def setup_rapid(self):
        rapid = make_rapid(total_rows=10)
        for row, retention in enumerate((4.0, 3.0, 2.0, 1.0, 0.5)):
            rapid.learn_row_retention(row, retention)
        return rapid

    def test_strongest_first(self):
        rapid = self.setup_rapid()
        assert rapid.allocate(2) == [0, 1]

    def test_allocation_is_exclusive(self):
        rapid = self.setup_rapid()
        first = rapid.allocate(2)
        second = rapid.allocate(2)
        assert not set(first) & set(second)

    def test_release_returns_rows_to_pool(self):
        rapid = self.setup_rapid()
        rows = rapid.allocate(2)
        rapid.release(rows)
        assert rapid.allocate(1) == [0]

    def test_overflow_to_unprofiled_rows(self):
        rapid = self.setup_rapid()
        rows = rapid.allocate(7)  # 5 profiled + 2 unprofiled
        assert rapid.allocated_rows == 7
        assert sum(1 for r in rows if isinstance(r, tuple)) == 2

    def test_capacity_error_when_full(self):
        rapid = make_rapid(total_rows=3)
        rapid.learn_row_retention(0, 1.0)
        with pytest.raises(CapacityError):
            rapid.allocate(5)

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            self.setup_rapid().allocate(0)


class TestRefreshPolicy:
    def test_interval_set_by_weakest_allocated(self):
        rapid = make_rapid(guardband=0.5)
        rapid.learn_row_retention(0, 4.0)
        rapid.learn_row_retention(1, 1.0)
        rapid.allocate(1)  # strongest only
        assert rapid.required_refresh_interval_s() == pytest.approx(2.0)
        rapid.allocate(1)  # now the 1.0s row too
        assert rapid.required_refresh_interval_s() == pytest.approx(0.5)

    def test_interval_degrades_with_utilization(self):
        """RAPID's signature curve: more data -> weaker rows -> faster refresh."""
        rapid = make_rapid(total_rows=50, guardband=1.0)
        for row in range(50):
            rapid.learn_row_retention(row, 4.0 / (row + 1))
        intervals = []
        for _ in range(5):
            rapid.allocate(10)
            intervals.append(rapid.required_refresh_interval_s())
        assert intervals == sorted(intervals, reverse=True)

    def test_refresh_savings_positive_when_lightly_loaded(self):
        rapid = make_rapid(total_rows=100, guardband=1.0)
        for row in range(100):
            rapid.learn_row_retention(row, 2.048)
        rapid.allocate(10)
        assert rapid.refresh_savings_fraction() > 0.95

    def test_empty_machine_full_savings(self):
        assert make_rapid().refresh_savings_fraction() == 1.0

    def test_guardband_validation(self):
        with pytest.raises(ConfigurationError):
            make_rapid(guardband=0.0)


class TestWithProfiler:
    def test_rapid_fed_by_reach_profiles(self, chip):
        """End to end: ladder of reach profiles -> RAPID placement."""
        rapid = RAPID(
            total_rows=chip.geometry.total_rows,
            bits_per_row=chip.geometry.bits_per_row,
        )
        for interval in (0.512, 1.024, 2.048):
            profile = ReachProfiler(
                reach=ReachDelta(delta_trefi=0.25), iterations=1
            ).run(chip, Conditions(trefi=interval, temperature=45.0))
            rapid.learn_from_failing_cells(profile.failing, tested_interval_s=interval)
        weak_rows = len(rapid._retention)
        assert weak_rows > 0
        # Allocating far fewer rows than the weak population stays fast.
        allocation = rapid.allocate(max(1, weak_rows // 2))
        assert rapid.required_refresh_interval_s() >= 0.064