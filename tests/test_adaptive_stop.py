"""Tests for adaptive early stopping in the profilers."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.bruteforce import BruteForceProfiler
from repro.core.metrics import coverage
from repro.core.reach import ReachProfiler
from repro.errors import ConfigurationError

TARGET = Conditions(trefi=1.024, temperature=45.0)


class TestAdaptiveStop:
    def test_early_stop_shortens_runtime(self, chip_factory):
        full = BruteForceProfiler(iterations=16).run(chip_factory(), TARGET)
        adaptive = BruteForceProfiler(
            iterations=16, stop_after_quiet_iterations=2
        ).run(chip_factory(), TARGET)
        assert adaptive.runtime_seconds <= full.runtime_seconds
        assert adaptive.iterations <= full.iterations

    def test_early_stop_preserves_coverage(self, chip_factory):
        full = BruteForceProfiler(iterations=16).run(chip_factory(), TARGET)
        adaptive = BruteForceProfiler(
            iterations=16, stop_after_quiet_iterations=3
        ).run(chip_factory(), TARGET)
        # Tiny-chip populations (tens of cells) make this a coarse check.
        assert coverage(adaptive.failing, full.failing) > 0.90

    def test_iterations_reflect_actual_run(self, chip_factory):
        adaptive = BruteForceProfiler(
            iterations=16, stop_after_quiet_iterations=1
        ).run(chip_factory(), TARGET)
        run_iterations = {r.iteration for r in adaptive.records}
        assert adaptive.iterations == len(run_iterations)

    def test_disabled_by_default(self, chip_factory):
        profile = BruteForceProfiler(iterations=4).run(chip_factory(), TARGET)
        assert profile.iterations == 4

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            BruteForceProfiler(stop_after_quiet_iterations=-1)

    def test_reach_profiler_supports_early_stop(self, chip_factory):
        profiler = ReachProfiler(
            reach=ReachDelta(delta_trefi=0.25),
            iterations=8,
            stop_after_quiet_iterations=1,
        )
        profile = profiler.run(chip_factory(), TARGET)
        # Reach converges fast, so the quiet rule should fire early.
        assert profile.iterations < 8
