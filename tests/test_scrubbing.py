"""Unit tests for the AVATAR-style ECC-scrubbing baseline."""

import pytest

from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.core.metrics import coverage
from repro.ecc.scrubbing import EccScrubber, word_of
from repro.errors import ConfigurationError


class TestWordMapping:
    def test_int_cells(self):
        assert word_of(0) == 0
        assert word_of(63) == 0
        assert word_of(64) == 1

    def test_tuple_cells(self):
        assert word_of((2, 130)) == (2, 2)

    def test_custom_word_width(self):
        assert word_of(250, data_bits=128) == 1


class TestScrubber:
    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            EccScrubber(rounds=0)

    def test_report_structure(self, chip, target_conditions):
        report = EccScrubber(rounds=4).run(chip, target_conditions)
        assert len(report.rounds) == 4
        assert report.conditions == target_conditions
        assert report.runtime_seconds > 0.0

    def test_failing_cells_accumulate(self, chip, target_conditions):
        report = EccScrubber(rounds=6).run(chip, target_conditions)
        assert len(report.failing_cells) >= report.rounds[0].new_cells

    def test_writes_memory_only_once(self, chip, target_conditions):
        from repro.dram.commands import Command

        EccScrubber(rounds=3).run(chip, target_conditions)
        writes = chip.trace.of_type(Command.WRITE_PATTERN)
        assert len(writes) == 1

    def test_word_counters_consistent(self, chip, target_conditions):
        report = EccScrubber(rounds=4).run(chip, target_conditions)
        for scrub_round in report.rounds:
            assert scrub_round.corrected_words >= 0
            assert scrub_round.uncorrectable_words >= 0

    def test_passive_scrubbing_misses_dpd_failures(self, chip_factory, target_conditions):
        """The paper's core criticism (Section 3.2): a passive scrubber,
        stuck with whatever data is resident, covers less of the true
        failing set than active multi-pattern profiling."""
        active_chip = chip_factory()
        passive_chip = chip_factory()
        truth = BruteForceProfiler(iterations=16).run(active_chip, target_conditions)
        report = EccScrubber(rounds=16).run(passive_chip, target_conditions)
        scrub_coverage = coverage(report.failing_cells, truth.failing)
        assert scrub_coverage < 0.95

    def test_runtime_cheaper_than_profiling(self, chip_factory, target_conditions):
        """Scrubbing skips the per-pattern write sweeps, so it is cheap --
        its weakness is coverage, not speed."""
        scrub = EccScrubber(rounds=16).run(chip_factory(), target_conditions)
        brute = BruteForceProfiler(iterations=16).run(chip_factory(), target_conditions)
        assert scrub.runtime_seconds < brute.runtime_seconds
