"""Cross-validation: event-driven mix evaluation vs the closed-form model."""

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.system import SystemSimulator
from repro.sysperf.workloads import benchmark_by_name


def mid_mix():
    return tuple(
        benchmark_by_name(n) for n in ("gcc_like", "sphinx_like", "astar_like", "bzip2_like")
    )


@pytest.fixture(scope="module")
def system():
    return SystemSimulator(timings=DRAMTimings(density_gigabits=64))


class TestEventDrivenMix:
    def test_returns_full_result(self, system):
        result = system.simulate_mix_event_driven(mid_mix(), 0.064, requests_per_core=600)
        assert len(result.ipcs) == 4
        assert all(ipc > 0 for ipc in result.ipcs)
        assert result.avg_latency_ns > 0.0

    def test_empty_mix_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.simulate_mix_event_driven((), 0.064)

    def test_refresh_relaxation_helps_in_both_models(self, system):
        mix = mid_mix()
        event_default = system.simulate_mix_event_driven(mix, 0.064, requests_per_core=800)
        event_relaxed = system.simulate_mix_event_driven(mix, 0.512, requests_per_core=800)
        model_default = system.simulate_mix(mix, 0.064)
        model_relaxed = system.simulate_mix(mix, 0.512)
        event_gain = sum(event_relaxed.ipcs) / sum(event_default.ipcs) - 1.0
        model_gain = sum(model_relaxed.ipcs) / sum(model_default.ipcs) - 1.0
        assert event_gain > 0.0
        assert model_gain > 0.0
        # Same order of magnitude.
        assert 0.25 < (event_gain / model_gain) < 4.0

    def test_heavier_memory_mix_lower_ipcs(self, system):
        light = system.simulate_mix_event_driven(
            (benchmark_by_name("povray_like"),) * 4, 0.064, requests_per_core=400
        )
        heavy = system.simulate_mix_event_driven(
            (benchmark_by_name("mcf_like"),) * 4, 0.064, requests_per_core=400
        )
        assert sum(heavy.ipcs) < sum(light.ipcs)

    def test_deterministic_per_seed(self, system):
        a = system.simulate_mix_event_driven(mid_mix(), 0.064, requests_per_core=300, seed=5)
        b = system.simulate_mix_event_driven(mid_mix(), 0.064, requests_per_core=300, seed=5)
        assert a.ipcs == b.ipcs
