"""Unit tests for the per-bank refresh (REFpb) extension."""

import pytest

from repro.sysperf.dramtiming import DRAMTimings, PER_BANK_TRFC_RATIO
from repro.sysperf.memctrl import MemoryControllerSim
from repro.sysperf.system import SystemSimulator
from repro.sysperf.trace import TraceGenerator
from repro.sysperf.workloads import benchmark_by_name


class TestTimings:
    def test_per_bank_trfc_is_shorter(self):
        ab = DRAMTimings(density_gigabits=64)
        pb = DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        assert pb.trfc_ns == pytest.approx(ab.trfc_ns * PER_BANK_TRFC_RATIO)
        assert pb.trfc_ab_ns == ab.trfc_ab_ns

    def test_per_bank_busy_fraction_smaller(self):
        ab = DRAMTimings(density_gigabits=64)
        pb = DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        assert pb.refresh_busy_fraction(0.064) == pytest.approx(
            ab.refresh_busy_fraction(0.064) * PER_BANK_TRFC_RATIO
        )

    def test_per_bank_blocking_quadratically_smaller(self):
        ab = DRAMTimings(density_gigabits=64)
        pb = DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        ratio = pb.refresh_blocking_latency_ns(0.064) / ab.refresh_blocking_latency_ns(0.064)
        assert ratio == pytest.approx(PER_BANK_TRFC_RATIO**2)


class TestEventDriven:
    def make_trace(self):
        return TraceGenerator(benchmark_by_name("mcf_like"), seed=9).generate(
            1500, rate_scale=2.0
        )

    def test_per_bank_lowers_latency(self):
        trace = self.make_trace()
        ab = MemoryControllerSim(DRAMTimings(density_gigabits=64), trefi_s=0.064).run(trace)
        pb = MemoryControllerSim(
            DRAMTimings(density_gigabits=64, per_bank_refresh=True), trefi_s=0.064
        ).run(trace)
        assert pb.avg_latency_ns < ab.avg_latency_ns

    def test_per_bank_still_slower_than_no_refresh(self):
        trace = self.make_trace()
        pb = MemoryControllerSim(
            DRAMTimings(density_gigabits=64, per_bank_refresh=True), trefi_s=0.064
        ).run(trace)
        off = MemoryControllerSim(
            DRAMTimings(density_gigabits=64, per_bank_refresh=True), trefi_s=None
        ).run(trace)
        assert off.avg_latency_ns < pb.avg_latency_ns

    def test_staggering_spreads_stalls(self):
        """Per-bank refresh delays are bank-dependent (staggered phases)."""
        timings = DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        sim = MemoryControllerSim(timings, trefi_s=0.064)
        # Bank 0 refreshes at phase 0: a request at t=0 is delayed.
        assert sim._refresh_delay(0.0, bank=0) > 0.0
        # A bank in the opposite phase is free at t=0.
        assert sim._refresh_delay(0.0, bank=4) == 0.0


class TestSystemModel:
    def test_per_bank_recovers_part_of_refresh_penalty(self):
        mix = (benchmark_by_name("mcf_like"), benchmark_by_name("lbm_like"))
        ab = SystemSimulator(timings=DRAMTimings(density_gigabits=64))
        pb = SystemSimulator(
            timings=DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        )
        ab_tp = sum(ab.simulate_mix(mix, 0.064).ipcs)
        pb_tp = sum(pb.simulate_mix(mix, 0.064).ipcs)
        off_tp = sum(ab.simulate_mix(mix, None).ipcs)
        assert ab_tp < pb_tp < off_tp

    def test_composition_with_relaxation(self):
        mix = (benchmark_by_name("mcf_like"), benchmark_by_name("milc_like"))
        pb = SystemSimulator(
            timings=DRAMTimings(density_gigabits=64, per_bank_refresh=True)
        )
        default = sum(pb.simulate_mix(mix, 0.064).ipcs)
        relaxed = sum(pb.simulate_mix(mix, 0.512).ipcs)
        assert relaxed > default
