"""Unit tests for the PID controller, thermal chamber, and testbed."""

import pytest

from repro.clock import SimClock
from repro.conditions import Conditions
from repro.core.bruteforce import BruteForceProfiler
from repro.dram.chip import SimulatedDRAMChip
from repro.errors import ConfigurationError
from repro.infra.chamber import CHAMBER_ACCURACY_C, ThermalChamber
from repro.infra.pid import PIDController
from repro.infra.testbed import TestBed as InfraTestBed

from conftest import TINY_GEOMETRY, TEST_SEED


class TestPid:
    def test_proportional_response(self):
        pid = PIDController(kp=1.0, ki=0.0, kd=0.0, setpoint=10.0, output_limits=(-100, 100))
        assert pid.step(8.0, dt=1.0) == pytest.approx(2.0)

    def test_output_clamped(self):
        pid = PIDController(kp=10.0, ki=0.0, kd=0.0, setpoint=10.0, output_limits=(0.0, 1.0))
        assert pid.step(0.0, dt=1.0) == 1.0
        assert pid.step(20.0, dt=1.0) == 0.0

    def test_integral_accumulates(self):
        pid = PIDController(kp=0.0, ki=1.0, kd=0.0, setpoint=1.0, output_limits=(-100, 100))
        first = pid.step(0.0, dt=1.0)
        second = pid.step(0.0, dt=1.0)
        assert second > first

    def test_integral_antiwindup(self):
        pid = PIDController(kp=0.0, ki=1.0, kd=0.0, setpoint=100.0, output_limits=(0.0, 1.0))
        for _ in range(50):
            pid.step(0.0, dt=1.0)
        # After returning to setpoint the output should not stay pinned by a
        # wound-up integral.
        assert pid.step(100.0, dt=1.0) <= 1.0

    def test_derivative_damps(self):
        pid = PIDController(kp=0.0, ki=0.0, kd=1.0, setpoint=0.0, output_limits=(-100, 100))
        pid.step(0.0, dt=1.0)
        assert pid.step(-1.0, dt=1.0) == pytest.approx(1.0)

    def test_reset_clears_state(self):
        pid = PIDController(kp=0.0, ki=1.0, kd=0.0, setpoint=1.0, output_limits=(-100, 100))
        pid.step(0.0, dt=1.0)
        pid.reset(setpoint=5.0)
        assert pid.setpoint == 5.0
        assert pid.step(5.0, dt=1.0) == pytest.approx(0.0)

    def test_bad_limits_rejected(self):
        with pytest.raises(ConfigurationError):
            PIDController(kp=1.0, ki=0.0, kd=0.0, setpoint=0.0, output_limits=(1.0, 0.0))

    def test_bad_dt_rejected(self):
        pid = PIDController(kp=1.0, ki=0.0, kd=0.0, setpoint=0.0)
        with pytest.raises(ConfigurationError):
            pid.step(0.0, dt=0.0)


class TestChamber:
    def test_settles_within_spec(self):
        """Section 4: the chamber holds ambient to within 0.25 degC."""
        chamber = ThermalChamber()
        chamber.set_target(50.0)
        chamber.settle()
        errors = []
        for _ in range(120):
            chamber.step()
            errors.append(abs(chamber.ambient_c - 50.0))
        assert sum(e <= CHAMBER_ACCURACY_C for e in errors) / len(errors) > 0.9

    def test_dram_runs_15c_above_ambient(self):
        chamber = ThermalChamber()
        assert chamber.dram_temperature_c == pytest.approx(chamber.ambient_c + 15.0)

    def test_target_outside_range_rejected(self):
        chamber = ThermalChamber()
        with pytest.raises(ConfigurationError):
            chamber.set_target(80.0)
        with pytest.raises(ConfigurationError):
            chamber.set_target(20.0)

    def test_settling_advances_clock(self):
        chamber = ThermalChamber()
        chamber.set_target(47.0)
        elapsed = chamber.settle()
        assert elapsed > 0.0
        assert chamber.clock.now >= elapsed

    def test_retarget_and_resettle(self):
        chamber = ThermalChamber()
        chamber.set_target(45.0)
        chamber.settle()
        chamber.set_target(55.0)
        chamber.settle()
        assert chamber.ambient_c == pytest.approx(55.0, abs=0.5)


class TestTestBedBehaviour:
    def test_build_populates_all_vendors(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY)
        assert len(bed.chips) == 3
        assert set(bed.chips_by_vendor()) == {"A", "B", "C"}

    def test_set_ambient_propagates_to_chips(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY)
        bed.set_ambient(50.0)
        for chip in bed.chips:
            assert chip.temperature_c == pytest.approx(50.0, abs=0.6)

    def test_chips_see_slightly_different_temperatures(self):
        """Placement offsets: the physical noise behind imperfect contours."""
        bed = InfraTestBed.build(chips_per_vendor=2, geometry=TINY_GEOMETRY)
        bed.set_ambient(45.0)
        temps = [chip.temperature_c for chip in bed.chips]
        assert len(set(round(t, 3) for t in temps)) > 1

    def test_foreign_clock_chip_rejected(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY)
        foreign = SimulatedDRAMChip(geometry=TINY_GEOMETRY, clock=SimClock())
        with pytest.raises(ConfigurationError):
            bed.add_chip(foreign)

    def test_profile_all_returns_per_chip_profiles(self):
        bed = InfraTestBed.build(chips_per_vendor=1, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        profiles = bed.profile_all(
            BruteForceProfiler(iterations=1), Conditions(trefi=1.024, temperature=45.0)
        )
        assert len(profiles) == 3
        for profile in profiles.values():
            assert profile.iterations == 1
