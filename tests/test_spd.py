"""Unit tests for SPD characterization blobs."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.spd import SPDCharacterization, characterize_for_spd
from repro.errors import ConfigurationError

from conftest import TINY_GEOMETRY


def make_summary():
    return SPDCharacterization(
        vendor="B",
        capacity_gigabits=16.0,
        temp_coefficient=0.20,
        ber_anchors=((0.512, 1e-8), (1.024, 1.5e-7), (2.048, 1e-6)),
        vrt_scale_per_hour=0.6,
        vrt_exponent=7.94,
        sigma_median_s=0.06,
    )


class TestSerialization:
    def test_roundtrip(self):
        summary = make_summary()
        assert SPDCharacterization.from_bytes(summary.to_bytes()) == summary

    def test_bad_magic_rejected(self):
        with pytest.raises(ConfigurationError):
            SPDCharacterization.from_bytes(b"XXXX" + b"0" * 32)

    def test_truncated_blob_rejected(self):
        blob = make_summary().to_bytes()
        with pytest.raises(ConfigurationError):
            SPDCharacterization.from_bytes(blob[:-3])

    def test_corrupted_payload_rejected(self):
        blob = bytearray(make_summary().to_bytes())
        blob[20] ^= 0xFF
        with pytest.raises(ConfigurationError):
            SPDCharacterization.from_bytes(bytes(blob))

    @given(st.floats(min_value=0.01, max_value=1.0), st.floats(min_value=1.0, max_value=12.0))
    def test_roundtrip_arbitrary_params(self, scale, exponent):
        summary = SPDCharacterization(
            vendor="A",
            capacity_gigabits=8.0,
            temp_coefficient=0.22,
            ber_anchors=((1.0, 1e-7),),
            vrt_scale_per_hour=scale,
            vrt_exponent=exponent,
            sigma_median_s=0.07,
        )
        assert SPDCharacterization.from_bytes(summary.to_bytes()) == summary


class TestInterpolation:
    def test_ber_at_anchor(self):
        summary = make_summary()
        assert summary.ber_at(1.024) == pytest.approx(1.5e-7)

    def test_ber_between_anchors_loglog(self):
        summary = make_summary()
        mid = summary.ber_at(0.72)
        assert 1e-8 < mid < 1.5e-7

    def test_ber_clamps_outside_range(self):
        summary = make_summary()
        assert summary.ber_at(0.1) == pytest.approx(1e-8)
        assert summary.ber_at(10.0) == pytest.approx(1e-6)

    def test_accumulation_power_law(self):
        summary = make_summary()
        assert summary.accumulation_per_hour(2.0) / summary.accumulation_per_hour(
            1.0
        ) == pytest.approx(2.0**7.94)


class TestChipExport:
    def test_characterize_for_spd(self, chip):
        summary = characterize_for_spd(chip)
        assert summary.vendor == "B"
        assert summary.capacity_gigabits == pytest.approx(
            TINY_GEOMETRY.capacity_gigabits
        )
        assert len(summary.ber_anchors) >= 3
        # Interpolation should match the chip's analytic BER at an anchor.
        from repro.conditions import Conditions

        assert summary.ber_at(1.024) == pytest.approx(
            chip.expected_ber(Conditions(trefi=1.024, temperature=45.0)), rel=1e-6
        )

    def test_blob_roundtrip_from_chip(self, chip):
        summary = characterize_for_spd(chip)
        assert SPDCharacterization.from_bytes(summary.to_bytes()) == summary

    def test_no_usable_anchor_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            characterize_for_spd(chip, anchor_intervals_s=(99.0,))
