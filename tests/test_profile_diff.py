"""Tests for profile diffing (the Figure 2/3 churn vocabulary) and the
steady-state onset detector."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.profile import IterationRecord, ProfileDiff, RetentionProfile
from repro.core.reach import ReachProfiler
from repro.core.reaper import REAPER
from repro.errors import ConfigurationError
from repro.mitigation import ArchShield

TARGET = Conditions(trefi=2.048, temperature=45.0)


def profile_of(cells, target=TARGET):
    return RetentionProfile(
        failing=frozenset(cells),
        profiling_conditions=target,
        target_conditions=target,
        patterns=("solid",),
        iterations=1,
        runtime_seconds=1.0,
        started_at=0.0,
    )


class TestProfileDiff:
    def test_partition(self):
        diff = profile_of({1, 2, 3}).diff(profile_of({2, 3, 4}))
        assert diff.appeared == frozenset({1})
        assert diff.disappeared == frozenset({4})
        assert diff.common == frozenset({2, 3})
        assert diff.churn == 2
        assert diff.stability == pytest.approx(0.5)

    def test_identical_profiles_fully_stable(self):
        diff = profile_of({1, 2}).diff(profile_of({1, 2}))
        assert diff.churn == 0
        assert diff.stability == 1.0

    def test_empty_profiles_stable(self):
        assert profile_of(set()).diff(profile_of(set())).stability == 1.0

    def test_different_targets_rejected(self):
        other = profile_of({1}, target=Conditions(trefi=1.024, temperature=45.0))
        with pytest.raises(ConfigurationError):
            profile_of({1}).diff(other)

    def test_vrt_churn_observed_between_real_rounds(self, chip_factory):
        """Two rounds a day apart at 2048 ms show VRT churn (Figure 3)."""
        chip = chip_factory(max_trefi_s=2.6)
        profiler = ReachProfiler(reach=ReachDelta(delta_trefi=0.25), iterations=2)
        first = profiler.run(chip, TARGET)
        chip.wait(86400.0)
        second = profiler.run(chip, TARGET)
        diff = second.diff(first)
        assert len(diff.common) > 0
        assert diff.churn > 0
        assert diff.stability < 1.0


class TestReaperEarlyStop:
    def test_quiet_stop_shortens_rounds(self, chip_factory):
        target = Conditions(trefi=1.024, temperature=45.0)
        plain_chip, adaptive_chip = chip_factory(), chip_factory()
        plain = REAPER(
            plain_chip, ArchShield(capacity_bits=plain_chip.capacity_bits),
            target, iterations=8,
        )
        adaptive = REAPER(
            adaptive_chip, ArchShield(capacity_bits=adaptive_chip.capacity_bits),
            target, iterations=8, stop_after_quiet_iterations=1,
        )
        plain_round = plain.profile_and_update()
        adaptive_round = adaptive.profile_and_update()
        assert adaptive_round.runtime_seconds < plain_round.runtime_seconds
        assert adaptive_round.profile.iterations < 8


class TestSteadyStateOnset:
    def make_result(self, burst, rate_per_iter, n=64, days=2.0):
        """Synthetic Fig3 points: a burst then linear accumulation."""
        from repro.analysis.characterization import Fig3IterationPoint, Fig3Result

        points = []
        cumulative = 0
        for i in range(n):
            new = burst if i == 0 else rate_per_iter
            cumulative += new
            points.append(
                Fig3IterationPoint(
                    iteration=i,
                    time_days=days * (i + 1) / n,
                    unique_new=new,
                    repeat=0,
                    cumulative=cumulative,
                )
            )
        steady_rate = rate_per_iter / (days * 24.0 / n)
        return Fig3Result(
            points=tuple(points),
            steady_state_rate_per_hour=steady_rate,
            trefi_s=2.048,
            capacity_bits=1 << 30,
        )

    def test_burst_delays_onset(self):
        with_burst = self.make_result(burst=1000, rate_per_iter=2)
        without = self.make_result(burst=2, rate_per_iter=2)
        assert with_burst.steady_state_onset_days() > without.steady_state_onset_days()

    def test_pure_steady_state_onset_is_immediate(self):
        result = self.make_result(burst=2, rate_per_iter=2)
        assert result.steady_state_onset_days() == pytest.approx(0.0)

    def test_onset_bounded_by_span(self):
        result = self.make_result(burst=1000, rate_per_iter=2, days=3.0)
        assert 0.0 <= result.steady_state_onset_days() <= 3.0
