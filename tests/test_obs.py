"""Tests for the observability layer (`repro.obs`).

Covers the layer's contracts:

* metric primitives -- counters/gauges/histograms, kind conflicts,
  deterministic snapshots, reset;
* tracing -- nested spans feed name-keyed histograms and attributed
  events;
* gating -- disabled instrumentation records nothing, enabling is
  reversible, injection into the engine works without the global flag;
* **zero perturbation** -- a campaign summary is byte-identical with
  observability enabled vs disabled, and the run directory gains an
  ``events.jsonl`` without any change to ``results.jsonl`` semantics.
"""

import json

import pytest

from repro import obs
from repro.analysis.campaign import CharacterizationCampaign
from repro.conditions import Conditions, ReachDelta
from repro.core.bruteforce import BruteForceProfiler
from repro.core.reaper import REAPER
from repro.dram.chip import SimulatedDRAMChip
from repro.errors import ConfigurationError
from repro.mitigation.rowmapout import RowMapOut
from repro.obs import (
    JsonlEventSink,
    ListEventSink,
    MetricsRegistry,
    Observability,
    Tracer,
    render_report,
)
from repro.runner import EVENTS_NAME, RunnerEngine, WorkUnit

from conftest import TINY_GEOMETRY, TEST_SEED

MANIFEST = {"fingerprint": "f" * 32}


@pytest.fixture
def enabled_obs():
    """Enable the process-wide layer for one test, restored afterwards."""
    obs.reset()
    obs.enable()
    yield obs.get()
    obs.disable()
    obs.reset()


def ok_worker(payload):
    return {"i": payload["i"]}


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2.0)
        reg.gauge("g").set(5.0)
        reg.gauge("g").dec()
        for v in (1.0, 3.0):
            reg.histogram("h").observe(v)
        assert reg.counter("c").value == 3.0
        assert reg.gauge("g").value == 4.0
        hist = reg.histogram("h")
        assert (hist.count, hist.total, hist.min, hist.max) == (2, 4.0, 1.0, 3.0)
        assert hist.mean == pytest.approx(2.0)
        assert hist.stddev == pytest.approx(1.0)

    def test_labels_key_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("units", status="ok").inc(3)
        reg.counter("units", status="failed").inc()
        assert reg.counter("units", status="ok").value == 3
        assert reg.counter("units", status="failed").value == 1
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError, match="already registered"):
            reg.gauge("x")

    def test_counters_cannot_decrease(self):
        with pytest.raises(ConfigurationError, match="only increase"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_snapshot_deterministic_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        # Same series created in opposite orders must snapshot identically.
        a.counter("z").inc()
        a.counter("a", k="1").inc()
        b.counter("a", k="1").inc()
        b.counter("z").inc()
        assert a.snapshot() == b.snapshot()
        assert json.dumps(a.snapshot()) == json.dumps(b.snapshot())

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot() == []


class TestTracing:
    def test_span_records_histogram_and_event(self):
        reg, sink = MetricsRegistry(), ListEventSink()
        tracer = Tracer(reg, sink)
        with tracer.span("outer", job=1):
            with tracer.span("inner"):
                pass
        assert reg.histogram("span.outer").count == 1
        assert reg.histogram("span.inner").count == 1
        inner, outer = sink.events  # inner closes first
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["job"] == 1
        assert outer["elapsed_s"] >= inner["elapsed_s"] >= 0.0

    def test_span_attrs_stay_out_of_metric_labels(self):
        reg = MetricsRegistry()
        tracer = Tracer(reg)
        for chip_id in range(10):
            with tracer.span("profiler.run", chip_id=chip_id):
                pass
        # One aggregated series, not one per chip.
        assert len(reg) == 1
        assert reg.histogram("span.profiler.run").count == 10


class TestEventSinks:
    def test_jsonl_sink_appends_flushed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("alpha", x=1)
            sink.emit("beta")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in rows] == ["alpha", "beta"]
        assert [r["seq"] for r in rows] == [0, 1]
        assert rows[0]["x"] == 1 and "ts" in rows[0]

    def test_jsonl_seq_continues_across_reopen(self, tmp_path):
        # Regression: reopening (the checkpoint/resume path) used to
        # restart seq at 0, handing consumers duplicate sequence numbers.
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("a")
            sink.emit("b")
        with JsonlEventSink(path) as sink:
            sink.emit("c")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in rows] == [0, 1, 2]

    def test_jsonl_seq_survives_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("a")
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"event": "torn", "seq": 1, "x\n')  # crash artifact
        with JsonlEventSink(path) as sink:
            sink.emit("b")
        last = json.loads(path.read_text().splitlines()[-1])
        # The unparseable line still advances the sequence (line-count
        # fallback), so seq stays strictly monotone across the corruption.
        assert last["event"] == "b" and last["seq"] == 2

    def test_jsonl_supplied_ts_overrides_stamp_seq_stays_local(self, tmp_path):
        # Worker event replay passes the worker's wall-clock ts through;
        # the sink must honour it while keeping seq ownership local.
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("replayed", ts=5.0)
        (row,) = [json.loads(line) for line in path.read_text().splitlines()]
        assert row["ts"] == 5.0 and row["seq"] == 0


class TestSinkLifecycle:
    def test_set_sink_closes_replaced_sink(self, tmp_path):
        # Regression: swapping sinks used to leak the old open handle.
        layer = Observability()
        first = JsonlEventSink(tmp_path / "a.jsonl")
        second = JsonlEventSink(tmp_path / "b.jsonl")
        layer.set_sink(first)
        layer.set_sink(second)
        assert first._handle is None  # closed, not leaked
        assert second._handle is not None
        layer.emit("hello")
        second.close()
        assert "hello" in (tmp_path / "b.jsonl").read_text()

    def test_set_sink_same_instance_is_not_closed(self, tmp_path):
        layer = Observability()
        sink = JsonlEventSink(tmp_path / "a.jsonl")
        layer.set_sink(sink)
        layer.set_sink(sink)  # re-install: must stay open
        assert sink._handle is not None
        sink.close()

    def test_double_enable_closes_first_events_path(self, tmp_path):
        obs.reset()
        try:
            obs.enable(events_path=tmp_path / "first.jsonl")
            first_sink = obs.get().sink
            obs.enable(events_path=tmp_path / "second.jsonl")
            assert first_sink._handle is None
            obs.emit("hello")
        finally:
            obs.disable()
            obs.reset()
        assert "hello" in (tmp_path / "second.jsonl").read_text()

    def test_sink_to_restores_previous_sink_alive(self, tmp_path):
        layer = Observability()
        outer = JsonlEventSink(tmp_path / "outer.jsonl")
        layer.set_sink(outer)
        with layer.sink_to(tmp_path / "inner.jsonl") as inner:
            layer.emit("inside")
        # The outer sink must come back *usable* (sink_to must not let
        # set_sink's auto-close kill it), the temporary one closed.
        layer.emit("outside")
        assert inner._handle is None
        outer.close()
        assert "inside" in (tmp_path / "inner.jsonl").read_text()
        assert "outside" in (tmp_path / "outer.jsonl").read_text()

    def test_module_sink_to_disabled_yields_null_sink(self, tmp_path):
        # Regression: the disabled path used to yield None, crashing any
        # `with obs.sink_to(p) as sink: sink.emit(...)` caller.
        assert not obs.enabled()
        path = tmp_path / "events.jsonl"
        with obs.sink_to(path) as sink:
            assert sink is not None
            sink.emit("ignored")  # NullEventSink: a no-op, not a crash
            assert sink.path is None
        assert not path.exists()

    def test_module_sink_to_enabled_yields_jsonl_sink(self, enabled_obs, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.sink_to(path) as sink:
            obs.emit("recorded")
            assert sink.path == path
        assert "recorded" in path.read_text()


class TestGating:
    def test_disabled_records_nothing(self):
        obs.disable()
        obs.reset()
        obs.counter("nope")
        obs.observe("nope.h", 1.0)
        with obs.span("nope.span"):
            pass
        assert obs.snapshot() == []

    def test_enable_disable_roundtrip(self, tmp_path):
        obs.reset()
        try:
            obs.enable(events_path=tmp_path / "ev.jsonl")
            obs.counter("c")
            obs.emit("hello")
            assert obs.enabled()
        finally:
            obs.disable()
        assert not obs.enabled()
        assert obs.snapshot()[0]["value"] == 1.0
        assert "hello" in (tmp_path / "ev.jsonl").read_text()
        obs.reset()

    def test_report_on_empty_registry(self):
        assert "no metrics recorded" in render_report([])

    def test_engine_accepts_injected_observability(self):
        # Explicit injection records even though the global layer is off.
        assert not obs.enabled()
        layer = Observability(sink=ListEventSink())
        engine = RunnerEngine(observability=layer)
        units = tuple(WorkUnit(f"u-{i}", "toy", {"i": i}) for i in range(3))
        engine.run(ok_worker, units, MANIFEST)
        counters = {
            (r["name"], tuple(sorted(r["labels"].items()))): r["value"]
            for r in layer.snapshot()
            if r["kind"] == "counter"
        }
        assert counters[("runner.units", (("status", "ok"),))] == 3
        events = [e["event"] for e in layer.sink.events]
        assert events[0] == "runner.start" and events[-1] == "runner.finish"
        assert events.count("runner.unit") == 3


class TestInstrumentationPoints:
    def test_chip_commands_counted(self, enabled_obs):
        chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        BruteForceProfiler(iterations=1).run(
            chip, Conditions(trefi=0.512, temperature=45.0)
        )
        reg = enabled_obs.metrics
        n_patterns = len(BruteForceProfiler().patterns)
        assert reg.counter("chip.commands", command="write_pattern").value == n_patterns
        assert reg.counter("chip.commands", command="read_compare").value == n_patterns
        # Simulated wait time per pass equals the profiled interval.
        wait_hist = reg.histogram("chip.sim_seconds", command="wait")
        assert wait_hist.max == pytest.approx(0.512)
        assert reg.counter("profiler.iterations", mechanism="brute-force").value == 1

    def test_reaper_pause_accounting(self, enabled_obs):
        chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        reaper = REAPER(
            device=chip,
            mitigation=RowMapOut(
                total_rows=TINY_GEOMETRY.total_rows,
                bits_per_row=TINY_GEOMETRY.bits_per_row,
            ),
            target=Conditions(trefi=1.024, temperature=45.0),
            reach=ReachDelta(delta_trefi=0.25),
            iterations=1,
        )
        record = reaper.profile_and_update()
        reg = enabled_obs.metrics
        assert reg.counter("reaper.rounds").value == 1
        pause = reg.histogram("reaper.pause_sim_seconds")
        assert pause.count == 1
        assert pause.total == pytest.approx(record.runtime_seconds)
        assert reg.histogram("span.reaper.round").count == 1


@pytest.fixture(scope="module")
def campaign():
    return CharacterizationCampaign(
        chips_per_vendor=1, geometry=TINY_GEOMETRY, iterations=1, seed=42
    )


CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))


class TestZeroPerturbation:
    def test_summary_byte_identical_with_obs_on_vs_off(self, campaign, tmp_path):
        obs.disable()
        obs.reset()
        baseline = campaign.run(**CAMPAIGN_KW)
        try:
            obs.enable()
            instrumented = campaign.run(
                run_dir=str(tmp_path / "run"), **CAMPAIGN_KW
            )
        finally:
            obs.disable()
            obs.reset()
        assert instrumented == baseline
        assert instrumented.to_text() == baseline.to_text()
        assert instrumented.to_text().encode() == baseline.to_text().encode()

    def test_events_jsonl_lands_in_run_dir(self, campaign, tmp_path):
        run_dir = tmp_path / "run"
        try:
            obs.enable()
            campaign.run(run_dir=str(run_dir), **CAMPAIGN_KW)
        finally:
            obs.disable()
            obs.reset()
        events_path = run_dir / EVENTS_NAME
        assert events_path.exists()
        rows = [json.loads(line) for line in events_path.read_text().splitlines()]
        kinds = [r["event"] for r in rows]
        assert kinds[0] == "runner.start" and "runner.finish" in kinds
        assert kinds.count("runner.unit") == 3
        assert any(k == "profiler.iteration" for k in kinds)
        # The results store is untouched by the event log.
        assert (run_dir / "results.jsonl").exists()

    def test_report_renders_campaign_counters(self, campaign, enabled_obs):
        campaign.run(**CAMPAIGN_KW)
        text = obs.report(title="campaign metrics")
        assert "campaign metrics" in text
        assert "chip.commands" in text
        assert "runner.units" in text
        assert "span.profiler.run" in text
