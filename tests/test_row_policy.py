"""Tests for open vs closed row-buffer policies (Table 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.memctrl import MemoryControllerSim
from repro.sysperf.trace import TraceGenerator
from repro.sysperf.workloads import benchmark_by_name


def trace_of(name, n=1200, seed=3):
    return TraceGenerator(benchmark_by_name(name), seed=seed).generate(n)


class TestRowPolicy:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryControllerSim(DRAMTimings(), row_policy="lazy")

    def test_closed_policy_never_row_hits(self):
        trace = trace_of("libquantum_like")  # 90% locality stream
        stats = MemoryControllerSim(DRAMTimings(), row_policy="closed").run(trace)
        assert stats.row_hit_rate == 0.0

    def test_open_policy_exploits_locality(self):
        """High-locality traffic strongly prefers the open-row policy."""
        trace = trace_of("libquantum_like")
        open_stats = MemoryControllerSim(DRAMTimings(), row_policy="open").run(trace)
        closed_stats = MemoryControllerSim(DRAMTimings(), row_policy="closed").run(trace)
        assert open_stats.row_hit_rate > 0.6
        assert open_stats.avg_latency_ns < closed_stats.avg_latency_ns

    def test_closed_policy_competitive_for_low_locality(self):
        """Conflict-heavy traffic narrows (or reverses) the gap: closed rows
        skip the precharge on the critical path."""
        trace = trace_of("mcf_like")  # 25% locality
        open_stats = MemoryControllerSim(DRAMTimings(), row_policy="open").run(trace)
        closed_stats = MemoryControllerSim(DRAMTimings(), row_policy="closed").run(trace)
        # With 25% locality the closed policy loses the few hits but saves
        # the precharge on the other 75% -- it must land within 15% of open.
        assert closed_stats.avg_latency_ns < open_stats.avg_latency_ns * 1.15

    def test_all_requests_served_under_both_policies(self):
        trace = trace_of("gcc_like", n=700)
        for policy in ("open", "closed"):
            stats = MemoryControllerSim(DRAMTimings(), row_policy=policy).run(trace)
            assert stats.served == len(trace)

    def test_refresh_still_applies_under_closed_policy(self):
        trace = trace_of("lbm_like")
        timings = DRAMTimings(density_gigabits=64)
        with_refresh = MemoryControllerSim(
            timings, trefi_s=0.064, row_policy="closed"
        ).run(trace)
        without = MemoryControllerSim(timings, trefi_s=None, row_policy="closed").run(trace)
        assert with_refresh.avg_latency_ns > without.avg_latency_ns
