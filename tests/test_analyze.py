"""Analyzer correctness sweep: statistics helpers and export robustness.

Regression coverage for the observability analyzer:

* ``percentile`` edge cases (extreme quantiles, two samples, duplicates).
* ``_fmt_delta`` sign handling with a negative baseline.
* ``unit_latency_stats`` excluding rows without ``elapsed_s`` instead of
  folding them in as 0.0.
* ``to_html`` rendering partial metric series (missing ``value`` /
  ``total``) as gaps instead of crashing on ``f"{None:g}"``.
* N-run ``compare_runs`` / ``comparison_html``.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.analyze import (
    RunData,
    _fmt_delta,
    _fmt_series_number,
    _run_labels,
    compare_runs,
    comparison_html,
    load_run,
    percentile,
    summarize_run,
    to_html,
    unit_latency_stats,
)


def _write_run(tmp_path, name, rows, metrics=None):
    run_dir = tmp_path / name
    run_dir.mkdir()
    with open(run_dir / "results.jsonl", "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    if metrics is not None:
        (run_dir / "metrics.json").write_text(
            json.dumps(metrics, sort_keys=True), encoding="utf-8"
        )
    return load_run(run_dir)


def _ok_row(unit_id, elapsed=1.0):
    row = {"unit_id": unit_id, "status": "ok", "attempts": 1, "value": None}
    if elapsed is not None:
        row["elapsed_s"] = elapsed
    return row


class TestPercentile:
    def test_empty_returns_none(self):
        assert percentile([], 0.5) is None

    def test_extreme_quantiles_hit_min_and_max(self):
        values = [9.0, 1.0, 5.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 9.0

    def test_single_sample_any_quantile(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_two_samples_interpolate(self):
        assert percentile([0.0, 10.0], 0.5) == pytest.approx(5.0)
        assert percentile([0.0, 10.0], 0.25) == pytest.approx(2.5)
        assert percentile([0.0, 10.0], 0.0) == 0.0
        assert percentile([0.0, 10.0], 1.0) == 10.0

    def test_duplicates(self):
        assert percentile([4.0, 4.0, 4.0, 4.0], 0.37) == 4.0
        # Interpolating between a duplicate pair stays on the plateau.
        assert percentile([1.0, 2.0, 2.0, 3.0], 0.5) == pytest.approx(2.0)

    def test_unsorted_input(self):
        assert percentile([30.0, 10.0, 20.0], 0.5) == 20.0


class TestFmtDelta:
    def test_missing_values(self):
        assert _fmt_delta(None, 1.0) == "-"
        assert _fmt_delta(1.0, None) == "-"

    def test_zero_baseline(self):
        assert _fmt_delta(0.0, 0.0) == "-"
        assert _fmt_delta(0.0, 3.0) == "+inf"

    def test_positive_baseline(self):
        assert _fmt_delta(10.0, 15.0) == "+50.0%"
        assert _fmt_delta(10.0, 5.0) == "-50.0%"

    def test_negative_baseline_sign_means_growth(self):
        # -10 -> -5 is an increase; normalizing by |a| keeps the sign
        # honest (a plain (b-a)/a would read -50%).
        assert _fmt_delta(-10.0, -5.0) == "+50.0%"
        assert _fmt_delta(-10.0, -15.0) == "-50.0%"
        assert _fmt_delta(-10.0, 0.0) == "+100.0%"


class TestUnitLatencyStats:
    def test_untimed_rows_excluded_not_zeroed(self, tmp_path):
        run = _write_run(
            tmp_path,
            "run",
            [
                _ok_row("u-0", 4.0),
                _ok_row("u-1", 6.0),
                _ok_row("u-2", elapsed=None),
                _ok_row("u-3", elapsed=None),
            ],
        )
        stats = unit_latency_stats(run)
        assert stats["count"] == 2
        assert stats["untimed"] == 2
        # Folding the two untimed rows in as 0.0 would read mean=2.5.
        assert stats["mean"] == pytest.approx(5.0)
        assert stats["p50"] == pytest.approx(5.0)
        assert stats["max"] == 6.0

    def test_all_untimed(self, tmp_path):
        run = _write_run(tmp_path, "run", [_ok_row("u-0", None)])
        assert unit_latency_stats(run) == {"count": 0, "untimed": 1}

    def test_summary_reports_skipped_count(self, tmp_path):
        run = _write_run(
            tmp_path, "run", [_ok_row("u-0", 1.0), _ok_row("u-1", None)]
        )
        assert "1 untimed rows skipped" in summarize_run(run)


class TestHtmlExport:
    def test_partial_series_render_as_gaps(self, tmp_path):
        metrics = {
            "schema": 1,
            "series": [
                {"kind": "gauge", "name": "queue_depth"},  # no "value"
                {"kind": "counter", "name": "chip.commands", "value": 12.5},
                {  # histogram without "total"
                    "kind": "histogram",
                    "name": "unit.elapsed_s",
                    "count": 3,
                    "p50": 1.0,
                    "p95": 2.0,
                    "p99": 2.0,
                },
            ],
        }
        run = _write_run(tmp_path, "run", [_ok_row("u-0")], metrics=metrics)
        html = to_html(run)  # regression: used to raise TypeError on :g
        assert "<td>-</td>" in html
        assert "total=- " in html
        assert "12.5" in html

    def test_fmt_series_number(self):
        assert _fmt_series_number(2.0) == "2"
        assert _fmt_series_number(0.125) == "0.125"
        assert _fmt_series_number(None) == "-"
        assert _fmt_series_number("nope") == "-"
        assert _fmt_series_number(True) == "-"


class TestMultiRunCompare:
    def _three_runs(self, tmp_path):
        runs = []
        for i in range(3):
            metrics = {
                "schema": 1,
                "series": [
                    {
                        "kind": "counter",
                        "name": "chip.commands",
                        "value": 10.0 * (i + 1),
                    }
                ],
            }
            runs.append(
                _write_run(
                    tmp_path,
                    f"run-{i}",
                    [_ok_row("u-0", 1.0 + i)],
                    metrics=metrics,
                )
            )
        return runs

    def test_run_labels(self):
        assert _run_labels(3) == ["A", "B", "C"]
        assert _run_labels(27)[-1] == "R26"

    def test_compare_three_runs_deltas_vs_baseline(self, tmp_path):
        report = compare_runs(*self._three_runs(tmp_path))
        assert "C: " in report
        assert "chip.commands: 10 -> 20 -> 30 (+100.0%, +200.0%)" in report

    def test_comparison_html(self, tmp_path):
        runs = self._three_runs(tmp_path)
        html = comparison_html(runs)
        assert "A&rarr;C" in html
        assert "chip.commands" in html
        with pytest.raises(ConfigurationError):
            comparison_html(runs[:1])
