"""Tests for the parallel campaign execution engine (`repro.runner`).

Covers the subsystem's three contracts:

* determinism -- a process-pool run produces a byte-identical
  ``CampaignSummary`` to the serial backend;
* checkpoint/resume -- a run interrupted after K units relaunches from its
  run directory, executes only the remaining units, and reproduces the
  uninterrupted summary;
* failure capture -- a raising work unit is retried, recorded as a
  structured failure row, and does not abort the run.
"""

import json

import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError
from repro.runner import (
    ProcessPoolBackend,
    ProgressTracker,
    ResultStore,
    RunnerEngine,
    SerialBackend,
    UnitFailure,
    UnitResult,
    WorkUnit,
    aggregate_chip_results,
    backend_from_spec,
    build_chip_units,
    execute_unit,
)
from repro.runner.units import STATUS_FAILED, STATUS_OK

from conftest import TINY_GEOMETRY

MANIFEST = {"fingerprint": "f" * 32}


def make_units(n):
    return tuple(
        WorkUnit(unit_id=f"u-{i:03d}", kind="toy", payload={"i": i}) for i in range(n)
    )


# Module-level workers: picklable for the process backend, shared-state for
# serial retry tests.
def square_worker(payload):
    return {"i": payload["i"], "sq": payload["i"] ** 2}


def failing_worker(payload):
    if payload["i"] == 1:
        raise RuntimeError(f"unit {payload['i']} is poisoned")
    return {"i": payload["i"]}


_FLAKY_CALLS = []


def flaky_worker(payload):
    _FLAKY_CALLS.append(payload["i"])
    if _FLAKY_CALLS.count(payload["i"]) == 1:
        raise RuntimeError("transient infrastructure failure")
    return {"i": payload["i"]}


_EXECUTED = []


def recording_worker(payload):
    _EXECUTED.append(payload["i"])
    return {"i": payload["i"]}


def interrupting_worker(payload):
    # BaseException bypasses in-worker retry capture (which catches
    # Exception only), so it escapes the backend mid-run like a Ctrl-C.
    if payload["i"] == 2:
        raise KeyboardInterrupt
    return {"i": payload["i"]}


class TruncatingBackend:
    """A backend that silently loses every unit after the first ``keep``.

    Models a pool that died without raising: the engine must report what
    it *observed*, not what it planned.
    """

    name = "truncating"

    def __init__(self, keep):
        self.keep = keep

    def run(self, worker, units, max_retries=1, capture_telemetry=False):
        for unit in units[: self.keep]:
            yield execute_unit(worker, unit, max_retries, capture_telemetry)


class TestUnitSchema:
    def test_result_json_roundtrip(self):
        ok = UnitResult(unit_id="u", status="ok", value={"x": 1.5}, attempts=2, elapsed_s=0.25)
        assert UnitResult.from_json_dict(json.loads(json.dumps(ok.to_json_dict()))) == ok
        failed = UnitResult(
            unit_id="v",
            status="failed",
            error=UnitFailure(type="RuntimeError", message="boom", traceback="tb"),
            attempts=3,
        )
        assert UnitResult.from_json_dict(failed.to_json_dict()) == failed

    def test_schema_validation(self):
        with pytest.raises(ConfigurationError):
            WorkUnit(unit_id="", kind="toy")
        with pytest.raises(ConfigurationError):
            UnitResult(unit_id="u", status="weird")
        with pytest.raises(ConfigurationError):
            UnitResult(unit_id="u", status="failed")  # failed without error

    def test_duplicate_unit_ids_rejected(self):
        units = make_units(2) + (WorkUnit(unit_id="u-000", kind="toy"),)
        with pytest.raises(ConfigurationError, match="duplicate"):
            RunnerEngine().run(square_worker, units, MANIFEST)


class TestExecutors:
    def test_serial_executes_in_order(self):
        results = list(SerialBackend().run(square_worker, make_units(5)))
        assert [r.value["sq"] for r in results] == [0, 1, 4, 9, 16]
        assert all(r.ok and r.attempts == 1 for r in results)

    def test_process_pool_matches_serial(self):
        units = make_units(6)
        serial = {r.unit_id: r.value for r in SerialBackend().run(square_worker, units)}
        pooled = {
            r.unit_id: r.value
            for r in ProcessPoolBackend(workers=4).run(square_worker, units)
        }
        assert pooled == serial

    def test_failure_captured_after_retries(self):
        result = execute_unit(failing_worker, WorkUnit("u-001", "toy", {"i": 1}), max_retries=2)
        assert not result.ok
        assert result.attempts == 3
        assert result.error.type == "RuntimeError"
        assert "poisoned" in result.error.message
        assert "RuntimeError" in result.error.traceback

    def test_flaky_unit_recovers_on_retry(self):
        _FLAKY_CALLS.clear()
        result = execute_unit(flaky_worker, WorkUnit("u-007", "toy", {"i": 7}), max_retries=1)
        assert result.ok
        assert result.attempts == 2

    def test_backend_spec_resolution(self):
        assert isinstance(backend_from_spec("serial"), SerialBackend)
        assert isinstance(backend_from_spec("process", workers=2), ProcessPoolBackend)
        assert isinstance(backend_from_spec(None), SerialBackend)
        assert isinstance(backend_from_spec(None, workers=4), ProcessPoolBackend)
        with pytest.raises(ConfigurationError):
            backend_from_spec("threads")
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ConfigurationError):
            backend_from_spec(None, workers=-3)


class TestResultStore:
    def test_append_and_reload(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        with store:
            store.open(MANIFEST)
            store.append(UnitResult("a", "ok", value=1))
            store.append(
                UnitResult("b", "failed", error=UnitFailure("E", "m", "tb"), attempts=2)
            )
        reloaded = ResultStore(tmp_path / "run").load_results()
        assert reloaded["a"].value == 1
        assert not reloaded["b"].ok
        # Failed rows are not completed: they rerun on resume.
        assert ResultStore(tmp_path / "run").completed_ids() == {"a"}

    def test_torn_tail_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        with store:
            store.open(MANIFEST)
            store.append(UnitResult("a", "ok", value=1))
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write('{"unit_id": "b", "status": "ok", "val')  # crash artifact
        assert ResultStore(tmp_path / "run").completed_ids() == {"a"}

    def test_interior_corruption_raises(self, tmp_path):
        store = ResultStore(tmp_path / "run")
        with store:
            store.open(MANIFEST)
            store.append(UnitResult("a", "ok", value=1))
        with open(store.results_path, "a", encoding="utf-8") as handle:
            handle.write("not json\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            ResultStore(tmp_path / "run").load_results()

    def test_manifest_mismatch_rejected(self, tmp_path):
        with ResultStore(tmp_path / "run") as store:
            store.open(MANIFEST)
        other = ResultStore(tmp_path / "run")
        with pytest.raises(ConfigurationError, match="different campaign"):
            other.open({"fingerprint": "0" * 32}, resume=True)

    def test_reuse_without_resume_rejected(self, tmp_path):
        with ResultStore(tmp_path / "run") as store:
            store.open(MANIFEST)
            store.append(UnitResult("a", "ok", value=1))
        with pytest.raises(ConfigurationError, match="resume"):
            ResultStore(tmp_path / "run").open(MANIFEST)


class TestStoreCrashInjection:
    """Simulated crashes at every vulnerable point of the store lifecycle."""

    def test_manifest_stamp_is_atomic(self, tmp_path):
        with ResultStore(tmp_path / "run") as store:
            store.open(MANIFEST)
        # The temp file used for the atomic stamp must not survive.
        assert [p.name for p in (tmp_path / "run").iterdir() if p.suffix == ".tmp"] == []
        assert json.loads(store.manifest_path.read_text())["fingerprint"] == "f" * 32

    def test_corrupt_manifest_refused_with_clear_error(self, tmp_path):
        # A crash mid-stamp under the old non-atomic write left a torn
        # JSON prefix; resume must refuse it as ConfigurationError (with
        # recovery guidance), never a raw JSONDecodeError.
        run_dir = tmp_path / "run"
        with ResultStore(run_dir) as store:
            store.open(MANIFEST)
            store.append(UnitResult("a", "ok", value=1))
        torn = store.manifest_path.read_text()[: len(store.manifest_path.read_text()) // 2]
        store.manifest_path.write_text(torn)
        with pytest.raises(ConfigurationError, match="corrupt"):
            ResultStore(run_dir).open(MANIFEST, resume=True)
        # ...and through the engine, the same refusal (not a crash).
        with pytest.raises(ConfigurationError, match="deleting the directory"):
            RunnerEngine(run_dir=str(run_dir), resume=True).run(
                square_worker, make_units(2), MANIFEST
            )

    def test_manifest_holding_non_object_refused(self, tmp_path):
        run_dir = tmp_path / "run"
        with ResultStore(run_dir) as store:
            store.open(MANIFEST)
        store.manifest_path.write_text('"not a manifest"')
        with pytest.raises(ConfigurationError, match="manifest object"):
            ResultStore(run_dir).open(MANIFEST, resume=True)

    def test_kill_between_append_and_flush_then_resume(self, tmp_path):
        # A kill after the OS saw only part of the final row leaves a torn
        # tail; resume must rerun exactly the torn unit and reproduce the
        # uninterrupted result set.
        run_dir = str(tmp_path / "run")
        full = RunnerEngine(run_dir=run_dir).run(square_worker, make_units(4), MANIFEST)
        results_path = tmp_path / "run" / "results.jsonl"
        lines = results_path.read_text().splitlines()
        torn = "\n".join(lines[:3]) + "\n" + lines[3][: len(lines[3]) // 2]
        results_path.write_text(torn)  # no trailing newline: mid-write kill

        _EXECUTED.clear()
        resumed = RunnerEngine(run_dir=run_dir, resume=True).run(
            recording_worker, make_units(4), MANIFEST
        )
        assert _EXECUTED == [3]
        assert resumed.stats.skipped == 3 and resumed.stats.executed == 1
        assert set(resumed.results) == set(full.results)

    def test_mid_run_abort_persists_partial_results_then_resumes(self, tmp_path):
        # KeyboardInterrupt is not captured by in-worker retry, so it
        # escapes the backend mid-run: everything observed before the
        # abort must already be on disk, and a relaunch finishes the rest.
        run_dir = str(tmp_path / "run")

        with pytest.raises(KeyboardInterrupt):
            RunnerEngine(run_dir=run_dir).run(
                interrupting_worker, make_units(5), MANIFEST
            )
        persisted = ResultStore(tmp_path / "run").load_results()
        assert sorted(persisted) == ["u-000", "u-001"]
        assert all(r.ok for r in persisted.values())

        _EXECUTED.clear()
        resumed = RunnerEngine(run_dir=run_dir, resume=True).run(
            recording_worker, make_units(5), MANIFEST
        )
        assert sorted(_EXECUTED) == [2, 3, 4]
        assert resumed.stats.skipped == 2 and resumed.stats.executed == 3
        assert len(resumed.results) == 5


class TestProgress:
    def test_ewma_throughput_and_eta(self):
        now = [0.0]
        tracker = ProgressTracker(total=10, alpha=0.5, clock=lambda: now[0])
        tracker.start()
        ok = UnitResult("u", "ok", value=None)
        for _ in range(4):
            now[0] += 2.0
            tracker.update(ok)
        assert tracker.completed == 4
        assert tracker.remaining == 6
        # Constant 2 s gaps: EWMA converges to exactly 2 s per unit.
        assert tracker.throughput_units_per_s == pytest.approx(0.5)
        assert tracker.eta_seconds == pytest.approx(12.0)
        rendered = tracker.render()
        assert "[4/10]" in rendered and "0.50 units/s" in rendered

    def test_failed_and_skipped_counts(self):
        tracker = ProgressTracker(total=5, clock=lambda: 0.0)
        tracker.note_skipped(3)
        tracker.update(UnitResult("u", "failed", error=UnitFailure("E", "m", "t")))
        assert tracker.failed == 1 and tracker.skipped == 3
        assert tracker.remaining == 1  # 5 planned - 3 resumed - 1 executed
        rendered = tracker.render()
        assert "3 resumed" in rendered and "1 failed" in rendered
        assert "[3/5]" in rendered  # resumed units count toward the numerator

    def test_resume_skips_shrink_remaining_and_eta(self):
        # Regression: `remaining` (and therefore the ETA) used to ignore
        # note_skipped, so a resumed run reported the already-persisted
        # units as still outstanding and inflated the ETA.
        now = [0.0]
        tracker = ProgressTracker(total=10, alpha=0.5, clock=lambda: now[0])
        tracker.start()
        tracker.note_skipped(6)
        assert tracker.remaining == 4
        ok = UnitResult("u", "ok", value=None)
        for _ in range(2):
            now[0] += 2.0
            tracker.update(ok)
        assert tracker.remaining == 2
        assert tracker.eta_seconds == pytest.approx(4.0)
        assert "[8/10]" in tracker.render()
        for _ in range(2):
            now[0] += 2.0
            tracker.update(ok)
        assert tracker.remaining == 0
        assert tracker.eta_seconds == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProgressTracker(total=-1)
        with pytest.raises(ConfigurationError):
            ProgressTracker(total=1, alpha=0.0)


class TestEngine:
    def test_failure_does_not_abort_run(self):
        report = RunnerEngine(max_retries=1).run(failing_worker, make_units(4), MANIFEST)
        assert report.stats.failed == 1
        assert report.stats.executed == 4
        assert report.stats.succeeded == 3
        assert set(report.failed_results()) == {"u-001"}
        assert set(report.ok_results()) == {"u-000", "u-002", "u-003"}
        failed = report.results["u-001"]
        assert failed.attempts == 2
        assert failed.error.type == "RuntimeError"

    def test_stats_derive_from_observed_completions(self):
        # A backend that loses units must not inflate `executed`.
        report = RunnerEngine(backend=TruncatingBackend(keep=2)).run(
            square_worker, make_units(5), MANIFEST
        )
        assert report.stats.total == 5
        assert report.stats.executed == 2
        assert report.stats.succeeded == 2
        assert report.stats.failed == 0
        assert len(report.results) == 2

    def test_resume_executes_only_missing_units(self, tmp_path):
        run_dir = str(tmp_path / "run")
        engine = RunnerEngine(run_dir=run_dir)
        first = engine.run(recording_worker, make_units(5), MANIFEST)
        assert first.stats.executed == 5 and first.stats.skipped == 0

        # Simulate a crash that lost the last three units.
        results_path = tmp_path / "run" / "results.jsonl"
        kept = results_path.read_text().splitlines()[:2]
        results_path.write_text("\n".join(kept) + "\n")

        _EXECUTED.clear()
        resumed = RunnerEngine(run_dir=run_dir, resume=True).run(
            recording_worker, make_units(5), MANIFEST
        )
        assert resumed.stats.executed == 3 and resumed.stats.skipped == 2
        assert sorted(_EXECUTED) == [2, 3, 4]
        assert {uid: r.value for uid, r in resumed.results.items()} == {
            uid: r.value for uid, r in first.results.items()
        }

    def test_resumed_failures_are_retried(self, tmp_path):
        run_dir = str(tmp_path / "run")
        report = RunnerEngine(run_dir=run_dir, max_retries=0).run(
            failing_worker, make_units(3), MANIFEST
        )
        assert set(report.failed_results()) == {"u-001"}
        # Relaunch with a healed worker: only the failed unit reruns.
        _EXECUTED.clear()
        healed = RunnerEngine(run_dir=run_dir, resume=True).run(
            recording_worker, make_units(3), MANIFEST
        )
        assert _EXECUTED == [1]
        assert healed.stats.skipped == 2
        assert all(r.ok for r in healed.results.values())

    def test_progress_callback_stream(self):
        seen = []
        engine = RunnerEngine(progress=lambda result, tracker: seen.append(tracker.render()))
        engine.run(square_worker, make_units(3), MANIFEST)
        assert len(seen) == 3
        assert seen[-1].startswith("[3/3]")


@pytest.fixture(scope="module")
def campaign():
    return CharacterizationCampaign(
        chips_per_vendor=1, geometry=TINY_GEOMETRY, iterations=1, seed=77
    )


CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))


class TestCampaignThroughRunner:
    def test_parallel_matches_serial_byte_identical(self, campaign):
        serial = campaign.run(backend="serial", **CAMPAIGN_KW)
        parallel = campaign.run(backend="process", workers=4, **CAMPAIGN_KW)
        assert parallel == serial
        assert parallel.to_text() == serial.to_text()

    def test_resume_completes_only_remaining_chips(self, campaign, tmp_path):
        run_dir = str(tmp_path / "run")
        full = campaign.run(run_dir=run_dir, **CAMPAIGN_KW)

        # Keep only the first chip's row: the "crash" lost two of three.
        results_path = tmp_path / "run" / "results.jsonl"
        kept = results_path.read_text().splitlines()[:1]
        results_path.write_text("\n".join(kept) + "\n")

        executed = []
        resumed = campaign.run(
            run_dir=run_dir,
            resume=True,
            progress=lambda result, tracker: executed.append(result.unit_id),
            **CAMPAIGN_KW,
        )
        assert len(executed) == 2
        assert resumed == full

    def test_single_temperature_reports_none_coefficient(self, campaign):
        summary = campaign.run(intervals_s=(0.512, 1.024), temperatures_c=(45.0,))
        assert all(
            stats.measured_temp_coefficient is None for stats in summary.vendors.values()
        )
        assert "n/a" in summary.to_text()

    def test_duplicate_temperatures_report_none_coefficient(self, campaign):
        summary = campaign.run(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 45.0))
        assert all(
            stats.measured_temp_coefficient is None for stats in summary.vendors.values()
        )

    def test_unit_ids_stable_across_plans(self):
        a = build_chip_units(2, TINY_GEOMETRY, 1, 7, (0.512,), (45.0,))
        b = build_chip_units(2, TINY_GEOMETRY, 1, 7, (0.512,), (45.0,))
        assert [u.unit_id for u in a] == [u.unit_id for u in b]
        assert len({u.unit_id for u in a}) == len(a)


def chip_result(chip_id, vendor, intervals, temperatures, ok=True):
    """A UnitResult shaped like a measure_chip return (or a failure row)."""
    if not ok:
        return UnitResult(
            unit_id=f"chip-{chip_id:05d}",
            status=STATUS_FAILED,
            error=UnitFailure(type="RuntimeError", message="boom", traceback="tb"),
            attempts=2,
            elapsed_s=0.1,
        )
    return UnitResult(
        unit_id=f"chip-{chip_id:05d}",
        status=STATUS_OK,
        value={
            "chip_id": chip_id,
            "vendor": vendor,
            "interval_failures": [[t, float(n)] for t, n in intervals],
            "temperature_failures": [[t, float(n)] for t, n in temperatures],
        },
        attempts=1,
        elapsed_s=0.1,
    )


class TestAggregateChipResults:
    def test_failed_units_are_excluded_from_the_tables(self):
        results = [
            chip_result(0, "A", [(0.512, 3)], [(45.0, 3)]),
            chip_result(1, "A", [], [], ok=False),
            chip_result(2, "B", [(0.512, 7)], [(45.0, 7)]),
        ]
        counts, temp_counts = aggregate_chip_results(results)
        assert counts == {"A": {0.512: [3]}, "B": {0.512: [7]}}
        assert temp_counts == {"A": {45.0: [3]}, "B": {45.0: [7]}}

    def test_counts_sorted_by_chip_id_not_completion_order(self):
        results = [
            chip_result(2, "A", [(0.512, 30)], [(45.0, 30)]),
            chip_result(0, "A", [(0.512, 10)], [(45.0, 10)]),
            chip_result(1, "A", [(0.512, 20)], [(45.0, 20)]),
        ]
        counts, _ = aggregate_chip_results(results)
        assert counts["A"][0.512] == [10, 20, 30]

    def test_duplicate_temperatures_append_one_count_each(self):
        """A (45, 45) sweep measures twice at 45C; both measurements land
        in the table (legacy append semantics, pairs not a mapping)."""
        results = [
            chip_result(0, "A", [(0.512, 5)], [(45.0, 5), (45.0, 6)]),
            chip_result(1, "A", [(0.512, 9)], [(45.0, 9), (45.0, 9)]),
        ]
        _, temp_counts = aggregate_chip_results(results)
        assert temp_counts == {"A": {45.0: [5, 6, 9, 9]}}

    def test_all_failed_yields_empty_tables(self):
        results = [chip_result(i, "A", [], [], ok=False) for i in range(3)]
        assert aggregate_chip_results(results) == ({}, {})
