"""Unit tests for RAIDR multi-rate refresh."""

import pytest

from repro.errors import ConfigurationError
from repro.mitigation.raidr import RAIDR


def make_raidr(total_rows=4096, relaxed=1.024, bins=(0.064,), **kwargs):
    kwargs.setdefault("expected_weak_rows", 256)
    return RAIDR(
        total_rows=total_rows,
        bits_per_row=1024,
        relaxed_interval_s=relaxed,
        bin_intervals_s=bins,
        **kwargs,
    )


class TestConfiguration:
    def test_relaxed_must_exceed_bins(self):
        with pytest.raises(ConfigurationError):
            make_raidr(relaxed=0.064, bins=(0.064,))

    def test_bins_must_ascend(self):
        with pytest.raises(ConfigurationError):
            make_raidr(bins=(0.128, 0.064))

    def test_empty_bins_rejected(self):
        with pytest.raises(ConfigurationError):
            make_raidr(bins=())

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            RAIDR(total_rows=0, bits_per_row=1024, relaxed_interval_s=1.0)


class TestBinning:
    def test_unknown_row_gets_relaxed_interval(self):
        raidr = make_raidr()
        assert raidr.refresh_interval_for_row(7) == pytest.approx(1.024)

    def test_ingested_cells_put_rows_in_conservative_bin(self):
        raidr = make_raidr()
        raidr.ingest({1024 * 5 + 3})  # a cell in row 5
        assert raidr.refresh_interval_for_row(5) == pytest.approx(0.064)
        assert raidr.bin_row_count(0) == 1

    def test_duplicate_cells_one_row(self):
        raidr = make_raidr()
        raidr.ingest({1024 * 5, 1024 * 5 + 1})
        assert raidr.bin_row_count(0) == 1

    def test_assign_row_to_specific_bin(self):
        raidr = make_raidr(bins=(0.064, 0.128))
        raidr.assign_row(10, bin_index=1)
        assert raidr.refresh_interval_for_row(10) == pytest.approx(0.128)

    def test_invalid_bin_index_rejected(self):
        raidr = make_raidr()
        with pytest.raises(ConfigurationError):
            raidr.assign_row(1, bin_index=5)

    def test_bloom_false_positives_only_tighten(self):
        """Any misclassification must move a row to a *shorter* interval."""
        raidr = make_raidr(total_rows=10000)
        for row in range(0, 200):
            raidr.assign_row(row, 0)
        for row in range(200, 10000):
            assert raidr.refresh_interval_for_row(row) in (0.064, 1.024)


class TestRefreshAccounting:
    def test_all_strong_rows_save_most_refreshes(self):
        raidr = make_raidr()
        savings = raidr.refresh_savings_fraction()
        assert savings > 0.9  # 64ms -> 1024ms is a 16x reduction

    def test_weak_rows_cost_refreshes(self):
        empty = make_raidr()
        loaded = make_raidr()
        for row in range(512):
            loaded.assign_row(row, 0)
        assert loaded.refreshes_per_second() > empty.refreshes_per_second()

    def test_savings_upper_bound(self):
        raidr = make_raidr()
        assert raidr.refresh_savings_fraction() <= 1.0 - 0.064 / 1.024 + 0.01

    def test_false_positive_accounting_increases_cost(self):
        raidr = make_raidr(total_rows=100000, expected_weak_rows=16)
        for row in range(2000):  # heavily overload the small filter
            raidr.assign_row(row, 0)
        with_fp = raidr.refreshes_per_second(include_bloom_fp=True)
        without_fp = raidr.refreshes_per_second(include_bloom_fp=False)
        assert with_fp > without_fp

    def test_all_rows_weak_degenerates_to_baseline(self):
        raidr = make_raidr(total_rows=128)
        for row in range(128):
            raidr.assign_row(row, 0)
        baseline = 128 / 0.064
        assert raidr.refreshes_per_second(include_bloom_fp=False) == pytest.approx(baseline)
