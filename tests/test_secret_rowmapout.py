"""Unit tests for SECRET remapping and address-space row map-out."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.mitigation.rowmapout import RowMapOut
from repro.mitigation.secret import SECRET


class TestSecret:
    def test_remap_allocates_spares(self):
        secret = SECRET(spare_cells=10)
        secret.ingest({100, 200})
        assert secret.spares_used == 2
        assert secret.spares_remaining == 8
        assert secret.remap_target(100) != secret.remap_target(200)

    def test_duplicate_ingest_consumes_no_spares(self):
        secret = SECRET(spare_cells=10)
        secret.ingest({100})
        secret.ingest({100})
        assert secret.spares_used == 1

    def test_capacity_exhaustion(self):
        secret = SECRET(spare_cells=2)
        with pytest.raises(CapacityError):
            secret.ingest({1, 2, 3})

    def test_false_positives_consume_spares(self):
        """The mechanism cannot tell false positives from real failures --
        the cost the paper's tradeoff analysis charges to aggressive reach."""
        secret = SECRET(spare_cells=4)
        secret.ingest({1, 2})        # real failures
        secret.ingest({900, 901})    # false positives: spares still consumed
        assert secret.spares_remaining == 0

    def test_unmapped_cell_lookup_rejected(self):
        secret = SECRET(spare_cells=4)
        with pytest.raises(ConfigurationError):
            secret.remap_target(5)

    def test_utilization(self):
        secret = SECRET(spare_cells=4)
        secret.ingest({1})
        assert secret.utilization == pytest.approx(0.25)

    def test_zero_spares_rejected(self):
        with pytest.raises(ConfigurationError):
            SECRET(spare_cells=0)

    def test_tuple_cells_supported(self):
        secret = SECRET(spare_cells=4)
        secret.ingest({(0, 5), (1, 5)})
        assert secret.spares_used == 2


class TestRowMapOut:
    def make(self, total_rows=1000, max_fraction=0.05):
        return RowMapOut(
            total_rows=total_rows, bits_per_row=100, max_mapped_fraction=max_fraction
        )

    def test_cells_map_out_their_rows(self):
        mapper = self.make()
        mapper.ingest({250})  # row 2
        assert mapper.row_is_mapped_out(2)
        assert not mapper.address_is_usable(299)
        assert mapper.address_is_usable(300)

    def test_capacity_loss_fraction(self):
        mapper = self.make()
        mapper.ingest({0, 100, 200})
        assert mapper.capacity_loss_fraction == pytest.approx(3 / 1000)

    def test_cells_in_same_row_one_mapout(self):
        mapper = self.make()
        mapper.ingest({100, 101, 150})
        assert mapper.mapped_row_count == 1

    def test_budget_exhaustion(self):
        mapper = self.make(total_rows=100, max_fraction=0.02)  # 2 rows
        with pytest.raises(CapacityError):
            mapper.ingest({0, 100, 200})

    def test_tuple_cells_namespaced_by_chip(self):
        mapper = self.make()
        mapper.ingest({(0, 100), (1, 100)})
        assert mapper.mapped_row_count == 2

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make(max_fraction=0.0)

    def test_covers_reflects_known_cells(self):
        mapper = self.make()
        mapper.ingest({123})
        assert mapper.covers(123)
        assert not mapper.covers(124)
