"""Tests for incremental (bounded-pause) reach profiling."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.incremental import IncrementalReachProfiler
from repro.core.metrics import coverage
from repro.core.reach import ReachProfiler
from repro.errors import ConfigurationError, ProfilingError

TARGET = Conditions(trefi=1.024, temperature=45.0)


class TestStepping:
    def test_pass_count(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=2)
        assert profiler.total_passes == 2 * 12
        assert not profiler.finished

    def test_step_advances_cursor(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=1)
        report = profiler.step()
        assert profiler.passes_done == 1
        assert report.iteration == 0
        assert report.pause_seconds > 0.0

    def test_step_after_finish_rejected(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=1)
        while not profiler.finished:
            profiler.step()
        with pytest.raises(ProfilingError):
            profiler.step()

    def test_result_before_finish_rejected(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=1)
        profiler.step()
        with pytest.raises(ProfilingError):
            profiler.result()

    def test_invalid_configuration_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            IncrementalReachProfiler(chip, TARGET, iterations=0)
        with pytest.raises(ProfilingError):
            IncrementalReachProfiler(
                chip, TARGET, reach=ReachDelta(delta_trefi=50.0)
            )


class TestBoundedPauses:
    def test_max_pause_is_one_pass(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=2)
        profile = profiler.run_with_gaps(gap_seconds=60.0)
        one_pass = TARGET.trefi + 0.250 + 2 * chip.pattern_io_seconds
        assert profiler.max_pause_seconds == pytest.approx(one_pass, rel=0.01)
        # The monolithic round would pause for the whole Eq-9 runtime.
        assert profiler.max_pause_seconds < profile.runtime_seconds / 10

    def test_total_pause_matches_eq9_work(self, chip_factory):
        """Slicing spreads the work but does not add to it."""
        monolithic = ReachProfiler(iterations=3).run(chip_factory(), TARGET)
        incremental_chip = chip_factory()
        profiler = IncrementalReachProfiler(incremental_chip, TARGET, iterations=3)
        profile = profiler.run_with_gaps(gap_seconds=30.0)
        assert profile.runtime_seconds == pytest.approx(
            monolithic.runtime_seconds, rel=0.01
        )

    def test_coverage_matches_monolithic(self, chip_factory):
        truth_chip = chip_factory()
        truth = ReachProfiler(iterations=5).run(truth_chip, TARGET)
        profiler = IncrementalReachProfiler(chip_factory(), TARGET, iterations=5)
        profile = profiler.run_with_gaps(gap_seconds=120.0)
        assert coverage(profile.failing, truth.failing) > 0.97

    def test_negative_gap_rejected(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=1)
        with pytest.raises(ConfigurationError):
            profiler.run_with_gaps(gap_seconds=-1.0)

    def test_profile_mechanism_label(self, chip):
        profiler = IncrementalReachProfiler(chip, TARGET, iterations=1)
        profile = profiler.run_with_gaps(gap_seconds=0.0)
        assert profile.mechanism == "reach-incremental"
        assert profile.is_reach_profile
