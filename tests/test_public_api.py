"""The public API surface: every advertised name must resolve."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.dram",
    "repro.patterns",
    "repro.ecc",
    "repro.mitigation",
    "repro.infra",
    "repro.sysperf",
    "repro.analysis",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name} advertised but missing"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_unique(package_name):
    package = importlib.import_module(package_name)
    assert len(package.__all__) == len(set(package.__all__))


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_classes_documented(package_name):
    """Every public class and function carries a docstring."""
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if not callable(obj):
            continue
        # Type aliases (Mix, ModuleCellRef, ...) resolve to typing/builtin
        # objects; only objects defined inside this package need docstrings.
        if not str(getattr(obj, "__module__", "")).startswith("repro"):
            continue
        if not getattr(obj, "__doc__", None):
            undocumented.append(name)
    assert not undocumented, f"{package_name}: missing docstrings on {undocumented}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_star_import_is_clean():
    namespace = {}
    exec("from repro import *", namespace)  # noqa: S102 - deliberate API check
    assert "ReachProfiler" in namespace
    assert "SimulatedDRAMChip" in namespace
