"""Unit tests for the three key profiling metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.conditions import Conditions
from repro.core.metrics import (
    coverage,
    coverage_curve,
    evaluate,
    false_positive_rate,
    iterations_to_coverage,
)
from repro.core.profile import IterationRecord, RetentionProfile
from repro.errors import ConfigurationError


def profile_with_records(records, cells=None):
    all_cells = set()
    for r in records:
        all_cells |= r.new_cells
    return RetentionProfile(
        failing=frozenset(cells if cells is not None else all_cells),
        profiling_conditions=Conditions(trefi=1.0),
        target_conditions=Conditions(trefi=1.0),
        patterns=("solid",),
        iterations=max((r.iteration for r in records), default=0) + 1,
        runtime_seconds=1.0,
        started_at=0.0,
        records=tuple(records),
    )


def record(iteration, cells):
    return IterationRecord(
        iteration=iteration,
        pattern_key="solid",
        new_cells=frozenset(cells),
        observed_count=len(cells),
        clock_time=float(iteration),
    )


class TestCoverage:
    def test_full_coverage(self):
        assert coverage({1, 2, 3}, {1, 2, 3}) == 1.0

    def test_partial_coverage(self):
        assert coverage({1, 2}, {1, 2, 3, 4}) == 0.5

    def test_extra_found_does_not_boost_coverage(self):
        assert coverage({1, 2, 99}, {1, 2, 3, 4}) == 0.5

    def test_empty_truth_is_full_coverage(self):
        assert coverage({1}, set()) == 1.0

    def test_empty_found_zero_coverage(self):
        assert coverage(set(), {1}) == 0.0


class TestFalsePositiveRate:
    def test_no_false_positives(self):
        assert false_positive_rate({1, 2}, {1, 2, 3}) == 0.0

    def test_all_false_positives(self):
        assert false_positive_rate({4, 5}, {1, 2}) == 1.0

    def test_half_false_positives(self):
        assert false_positive_rate({1, 4}, {1}) == 0.5

    def test_empty_found_is_zero(self):
        assert false_positive_rate(set(), {1}) == 0.0


class TestEvaluate:
    def test_counts(self):
        result = evaluate({1, 2, 9}, {1, 2, 3}, runtime_seconds=5.0)
        assert result.n_found == 3
        assert result.n_truth == 3
        assert result.n_false_positives == 1
        assert result.runtime_seconds == 5.0

    def test_profile_runtime_used(self):
        profile = profile_with_records([record(0, {1})])
        assert evaluate(profile, {1}).runtime_seconds == 1.0

    def test_str_is_informative(self):
        text = str(evaluate({1}, {1, 2}))
        assert "coverage" in text and "fpr" in text

    @given(
        st.frozensets(st.integers(0, 50), max_size=30),
        st.frozensets(st.integers(0, 50), max_size=30),
    )
    def test_metric_bounds(self, found, truth):
        result = evaluate(found, truth, runtime_seconds=0.0)
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0

    @given(
        st.frozensets(st.integers(0, 50), max_size=30),
        st.frozensets(st.integers(0, 50), max_size=30),
    )
    def test_identity_consistency(self, found, truth):
        """Found == truth implies perfect metrics."""
        result = evaluate(found, found)
        assert result.coverage == 1.0
        assert result.false_positive_rate == 0.0


class TestCoverageCurve:
    def test_curve_monotone(self):
        profile = profile_with_records(
            [record(0, {1}), record(1, {2}), record(2, set())]
        )
        curve = coverage_curve(profile, {1, 2, 3})
        assert curve == pytest.approx([1 / 3, 2 / 3, 2 / 3])
        assert curve == sorted(curve)

    def test_empty_truth_curve(self):
        profile = profile_with_records([record(0, {1})])
        assert coverage_curve(profile, set()) == [1.0]


class TestIterationsToCoverage:
    def test_reached_in_first_iteration(self):
        profile = profile_with_records([record(0, {1, 2, 3})])
        assert iterations_to_coverage(profile, {1, 2, 3}, 0.9) == 1

    def test_reached_later(self):
        profile = profile_with_records(
            [record(0, {1}), record(1, {2}), record(2, {3})]
        )
        assert iterations_to_coverage(profile, {1, 2, 3}, 0.9) == 3

    def test_never_reached(self):
        profile = profile_with_records([record(0, {1})])
        assert iterations_to_coverage(profile, {1, 2, 3, 4}, 0.9) is None

    def test_empty_truth_is_immediate(self):
        profile = profile_with_records([record(0, set())])
        assert iterations_to_coverage(profile, set(), 0.9) == 1

    def test_bad_threshold_rejected(self):
        profile = profile_with_records([record(0, {1})])
        with pytest.raises(ConfigurationError):
            iterations_to_coverage(profile, {1}, 0.0)

    def test_counts_whole_iterations(self):
        """Coverage reached mid-iteration still charges the full iteration."""
        records = [
            IterationRecord(0, "a", frozenset({1}), 1, 0.0),
            IterationRecord(0, "b", frozenset({2}), 1, 0.5),
        ]
        profile = profile_with_records(records)
        assert iterations_to_coverage(profile, {1, 2}, 1.0) == 1
