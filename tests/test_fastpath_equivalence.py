"""Equivalence contract for the profiling fast path.

The vectorized fast path (memoized per-(pattern, temperature) retention
arrays + marginal-band ndtr cut in ``repro.dram.cell``, numpy observed-cell
accumulation in ``repro.core.device``) must be *byte-identical* to the
reference implementation: same failing sets, same per-read records, same
runtimes, same campaign summaries, same RNG stream consumption.  These
tests pin that contract across deterministic and stochastic patterns,
temperature changes, quiet-iteration early stops, and device reset/reuse.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.special import ndtr

from repro.analysis.campaign import CharacterizationCampaign
from repro.conditions import Conditions
from repro.core import BruteForceProfiler
from repro.core.device import ObservedCellAccumulator
from repro.dram.cell import Z_PIN_ONE, Z_PIN_ZERO, fast_path_default, set_fast_path_default
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.errors import CommandSequenceError
from repro.patterns import CHECKERBOARD, RANDOM, STANDARD_PATTERNS

from conftest import TINY_GEOMETRY, TEST_SEED

MICRO = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)


def chip_pair(geometry=TINY_GEOMETRY, seed=TEST_SEED, **kwargs):
    """(reference, fast) chips that are identical in every other respect."""
    ref = SimulatedDRAMChip(geometry=geometry, seed=seed, fast_path=False, **kwargs)
    fast = SimulatedDRAMChip(geometry=geometry, seed=seed, fast_path=True, **kwargs)
    return ref, fast


def assert_profiles_identical(a, b):
    assert a.failing == b.failing
    assert a.records == b.records
    assert a.runtime_seconds == b.runtime_seconds
    assert a.iterations == b.iterations
    assert a.to_json() == b.to_json()


class TestPinConstants:
    def test_ndtr_saturates_at_pin_constants(self):
        """The whole band-cut scheme rests on exact double saturation."""
        assert ndtr(Z_PIN_ONE) == 1.0
        assert ndtr(Z_PIN_ZERO) == 0.0
        # And the constants leave margin to the actual saturation points.
        assert ndtr(Z_PIN_ONE - 0.5) == 1.0
        assert ndtr(Z_PIN_ZERO + 0.5) == 0.0


class TestProfileEquivalence:
    def test_standard_patterns_byte_identical(self):
        """Deterministic + stochastic patterns, multi-iteration run."""
        ref, fast = chip_pair()
        profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS, iterations=3)
        conditions = Conditions(trefi=1.024, temperature=45.0)
        assert_profiles_identical(profiler.run(ref, conditions), profiler.run(fast, conditions))

    def test_identical_across_temperature_change(self):
        """Caches re-key by temperature; results stay byte-identical."""
        ref, fast = chip_pair()
        profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS[:4], iterations=2)
        for temperature in (45.0, 55.0, 45.0):
            ref.set_temperature(temperature)
            fast.set_temperature(temperature)
            conditions = Conditions(trefi=1.024, temperature=temperature)
            assert_profiles_identical(
                profiler.run(ref, conditions), profiler.run(fast, conditions)
            )

    def test_identical_with_quiet_streak_stop_and_idle_gap(self):
        ref, fast = chip_pair()
        profiler = BruteForceProfiler(
            patterns=(CHECKERBOARD, RANDOM),
            iterations=12,
            idle_between_iterations_s=10.0,
            stop_after_quiet_iterations=2,
        )
        conditions = Conditions(trefi=0.768, temperature=45.0)
        a, b = profiler.run(ref, conditions), profiler.run(fast, conditions)
        assert_profiles_identical(a, b)

    def test_rng_streams_stay_aligned_after_run(self):
        """Both paths consume identical uniforms, so the *next* read after a
        full profiling run still matches draw for draw."""
        ref, fast = chip_pair()
        profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS, iterations=2)
        conditions = Conditions(trefi=1.024, temperature=45.0)
        profiler.run(ref, conditions)
        profiler.run(fast, conditions)
        for chip in (ref, fast):
            chip.write_pattern(RANDOM)
            chip.disable_refresh()
            chip.wait(1.5)
            chip.enable_refresh()
        assert np.array_equal(ref.read_errors(), fast.read_errors())

    @given(
        st.fixed_dictionaries(
            {
                "trefi": st.sampled_from([0.256, 0.768, 1.536]),
                "iterations": st.integers(min_value=1, max_value=3),
                "n_patterns": st.integers(min_value=1, max_value=12),
                "temperature": st.sampled_from([45.0, 50.0, 55.0]),
                "seed": st.integers(min_value=0, max_value=2**16),
                "quiet_stop": st.sampled_from([0, 1]),
            }
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_property_profiles_byte_identical(self, config):
        ref, fast = chip_pair(geometry=MICRO, seed=config["seed"])
        ref.set_temperature(config["temperature"])
        fast.set_temperature(config["temperature"])
        profiler = BruteForceProfiler(
            patterns=STANDARD_PATTERNS[: config["n_patterns"]],
            iterations=config["iterations"],
            stop_after_quiet_iterations=config["quiet_stop"],
        )
        conditions = Conditions(trefi=config["trefi"], temperature=config["temperature"])
        assert_profiles_identical(profiler.run(ref, conditions), profiler.run(fast, conditions))


class TestCampaignEquivalence:
    def test_campaign_summaries_byte_identical(self):
        def summarize(fast_path):
            return CharacterizationCampaign(
                chips_per_vendor=1, geometry=MICRO, iterations=1, fast_path=fast_path
            ).run(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))

        assert summarize(False) == summarize(True)


class TestFleetEquivalence:
    """Fleet-batched evaluation extends the same contract: stacking B
    chips into one fused numpy call must not change a single byte."""

    def test_fleet_campaign_summaries_byte_identical(self):
        def summarize(chips_per_unit):
            return CharacterizationCampaign(
                chips_per_vendor=1, geometry=MICRO, iterations=1
            ).run(
                intervals_s=(0.512, 1.024),
                temperatures_c=(45.0, 55.0),
                chips_per_unit=chips_per_unit,
            )

        serial = summarize(None)
        assert summarize(3) == serial
        assert summarize(2) == serial

    def test_fleet_composes_with_both_fast_path_modes(self):
        """fast_path and fleet batching are orthogonal byte-identical
        layers; all four combinations agree."""

        def summarize(fast_path, chips_per_unit):
            return CharacterizationCampaign(
                chips_per_vendor=1, geometry=MICRO, iterations=1, fast_path=fast_path
            ).run(
                intervals_s=(0.512, 1.024),
                temperatures_c=(45.0,),
                chips_per_unit=chips_per_unit,
            )

        reference = summarize(False, None)
        assert summarize(True, None) == reference
        assert summarize(False, 3) == reference
        assert summarize(True, 3) == reference


class TestChipReset:
    def test_reset_replays_fresh_chip(self):
        conditions = Conditions(trefi=1.024, temperature=45.0)
        profiler = BruteForceProfiler(patterns=STANDARD_PATTERNS[:6], iterations=2)
        chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        first = profiler.run(chip, conditions)
        chip.set_temperature(55.0)  # dirty some state
        profiler.run(chip, Conditions(trefi=0.512, temperature=55.0))
        chip.reset()
        assert chip.temperature_c == pytest.approx(45.0)
        assert chip.clock.now == 0.0
        replay = profiler.run(chip, conditions)
        assert_profiles_identical(first, replay)
        fresh = profiler.run(
            SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED), conditions
        )
        assert_profiles_identical(first, fresh)

    def test_reset_refused_on_shared_clock(self):
        from repro.clock import SimClock

        chip = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, clock=SimClock())
        with pytest.raises(CommandSequenceError):
            chip.reset()


class TestFastPathDefault:
    def test_default_toggle_round_trip(self):
        original = fast_path_default()
        try:
            previous = set_fast_path_default(False)
            assert previous == original
            assert not fast_path_default()
            assert not SimulatedDRAMChip(geometry=MICRO).population.fast_path_enabled
            set_fast_path_default(True)
            assert SimulatedDRAMChip(geometry=MICRO).population.fast_path_enabled
        finally:
            set_fast_path_default(original)

    def test_explicit_arg_overrides_default(self):
        original = fast_path_default()
        try:
            set_fast_path_default(True)
            chip = SimulatedDRAMChip(geometry=MICRO, fast_path=False)
            assert not chip.population.fast_path_enabled
        finally:
            set_fast_path_default(original)


class TestObservedCellAccumulator:
    def test_matches_reference_set_bookkeeping(self):
        space = np.array([3, 7, 10, 42, 99], dtype=np.int64)
        reads = [
            np.array([7, 42], dtype=np.int64),
            np.array([3, 7, 120], dtype=np.int64),  # 120 is outside the space
            np.array([], dtype=np.int64),
            np.array([42, 99, 120], dtype=np.int64),
        ]
        acc = ObservedCellAccumulator(space)
        seen: set = set()
        for read in reads:
            new, count = acc.observe(read)
            observed = set(read.tolist())
            assert count == len(observed)
            assert ObservedCellAccumulator.materialize(new) == frozenset(observed - seen)
            seen |= observed
        assert acc.discovered() == frozenset(seen)
        assert len(acc) == len(seen)

    def test_without_space_everything_is_extras(self):
        acc = ObservedCellAccumulator()
        new, count = acc.observe(np.array([5, 1, 5], dtype=np.int64))
        assert count == 2
        assert ObservedCellAccumulator.materialize(new) == frozenset({1, 5})
        new, _ = acc.observe(np.array([1, 9], dtype=np.int64))
        assert ObservedCellAccumulator.materialize(new) == frozenset({9})
        assert acc.discovered() == frozenset({1, 5, 9})

    def test_degrades_to_sets_for_tuple_observations(self):
        """Module-style (chip, flat) tuples keep working, history intact."""
        space = np.array([1, 2, 3], dtype=np.int64)
        acc = ObservedCellAccumulator(space)
        acc.observe(np.array([2, 50], dtype=np.int64))
        new, count = acc.observe([(0, 2), (1, 7)])
        assert count == 2
        assert new == frozenset({(0, 2), (1, 7)})
        # Previously discovered ints survive the degrade.
        assert acc.discovered() == frozenset({2, 50, (0, 2), (1, 7)})
        # And later int-array reads keep flowing through the set path.
        new, _ = acc.observe(np.array([2, 3], dtype=np.int64))
        assert new == frozenset({3})
        assert len(acc) == 5

    def test_discovered_values_are_python_ints(self):
        acc = ObservedCellAccumulator(np.array([4, 8], dtype=np.int64))
        acc.observe(np.array([4, 100], dtype=np.int64))
        for cell in acc.discovered():
            assert type(cell) is int
