"""Consistency tests between pattern data generation and stress bits."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import rng as rng_mod
from repro.dram.dpd import DPDModel
from repro.errors import ConfigurationError
from repro.patterns import (
    CHECKERBOARD,
    COLUMN_STRIPE,
    RANDOM,
    ROW_STRIPE,
    SOLID_ZERO,
    WALKING_ONE,
)

DETERMINISTIC = (
    SOLID_ZERO,
    SOLID_ZERO.inverse,
    CHECKERBOARD,
    CHECKERBOARD.inverse,
    ROW_STRIPE,
    COLUMN_STRIPE,
    WALKING_ONE,
    WALKING_ONE.inverse,
)


class TestBitsAtConsistency:
    """bits_at must agree with fill_row at every position."""

    @given(
        st.sampled_from(DETERMINISTIC),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=120)
    def test_matches_fill_row(self, pattern, row, col):
        bits_per_row = 64
        from_fill = pattern.fill_row(row, bits_per_row)[col]
        from_bits = pattern.bits_at(
            np.array([row]), np.array([col]), bits_per_row
        )[0]
        assert from_fill == from_bits

    def test_vectorized_shape(self):
        rows = np.arange(100)
        cols = np.arange(100) % 16
        bits = CHECKERBOARD.bits_at(rows, cols, 16)
        assert bits.shape == (100,)
        assert set(np.unique(bits)) <= {0, 1}

    def test_random_requires_rng(self):
        with pytest.raises(ConfigurationError):
            RANDOM.bits_at(np.array([0]), np.array([0]), 16)

    def test_inverse_flips_bits(self):
        rows = np.arange(64)
        cols = np.arange(64) % 32
        assert np.array_equal(
            CHECKERBOARD.bits_at(rows, cols, 32),
            1 - CHECKERBOARD.inverse.bits_at(rows, cols, 32),
        )


class TestOrientationStress:
    def make_model(self, orientation):
        n = len(orientation)
        rng = rng_mod.derive(4, "stress-test")
        return DPDModel(
            susceptibility=np.full(n, 0.1),
            rng=rng,
            random_alignment_cap=0.97,
            rows=np.zeros(n, dtype=np.int64),
            cols=np.arange(n, dtype=np.int64),
            orientation=np.asarray(orientation, dtype=np.uint8),
            bits_per_row=max(n, 8),
        )

    def test_solid_stresses_anti_cells_only(self):
        """Solid 0s charge only the cells whose charged value is 0."""
        model = self.make_model([0, 1, 0, 1])
        mask = model.stress_mask(SOLID_ZERO)
        assert list(mask) == [1.0, 0.0, 1.0, 0.0]

    def test_inverse_pattern_complements_stress(self):
        model = self.make_model([0, 1, 0, 1, 1, 0])
        direct = model.stress_mask(SOLID_ZERO)
        inverse = model.stress_mask(SOLID_ZERO.inverse)
        assert np.array_equal(direct + inverse, np.ones(6))

    def test_pair_covers_every_cell(self):
        """Every cell is stressed by a pattern or its inverse (Section 3.2)."""
        rng = rng_mod.derive(9, "orientation")
        orientation = rng.integers(0, 2, size=200)
        model = self.make_model(orientation)
        for pattern in (SOLID_ZERO, CHECKERBOARD, ROW_STRIPE, COLUMN_STRIPE):
            union = model.stress_mask(pattern) + model.stress_mask(pattern.inverse)
            assert np.array_equal(union, np.ones(200))

    def test_random_stress_redraws_per_write(self):
        model = self.make_model([0, 1] * 50)
        first = model.stress_mask(RANDOM, fresh=True).copy()
        second = model.stress_mask(RANDOM, fresh=True)
        assert not np.array_equal(first, second)

    def test_no_orientation_means_always_stressed(self):
        model = DPDModel(
            susceptibility=np.full(4, 0.1),
            rng=rng_mod.derive(1, "x"),
            random_alignment_cap=0.9,
        )
        assert np.array_equal(model.stress_mask(SOLID_ZERO), np.ones(4))
        assert not model.models_orientation

    def test_partial_position_info_rejected(self):
        with pytest.raises(ConfigurationError):
            DPDModel(
                susceptibility=np.full(4, 0.1),
                rng=rng_mod.derive(1, "x"),
                random_alignment_cap=0.9,
                rows=np.zeros(4, dtype=np.int64),
            )
