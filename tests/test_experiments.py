"""Tests for the Section 6/7 experiment drivers (Figs 9-13, Table 1,
headline result)."""

import pytest

from repro.analysis.experiments import (
    archshield_combination,
    fig9_fig10_tradeoff_surface,
    fig11_profiling_time,
    fig12_profiling_power,
    fig13_end_to_end,
    headline_reach_metrics,
    table1_tolerable_rber,
)
from repro.conditions import Conditions, ReachDelta
from repro.sysperf.overhead import ProfilerKind

from conftest import TINY_GEOMETRY


class TestTable1:
    def test_three_ecc_rows(self):
        rows = table1_tolerable_rber()
        assert [r.ecc_name for r in rows] == ["No ECC", "SECDED", "ECC-2"]

    def test_paper_values(self):
        rows = {r.ecc_name: r for r in table1_tolerable_rber()}
        assert rows["SECDED"].tolerable_rber == pytest.approx(3.8e-9, rel=0.05)
        assert rows["SECDED"].tolerable_bit_errors["2GB"] == pytest.approx(65.3, rel=0.05)
        assert rows["ECC-2"].tolerable_bit_errors["8GB"] == pytest.approx(4.7e4, rel=0.05)
        assert rows["No ECC"].tolerable_bit_errors["512MB"] == pytest.approx(4.3e-6, rel=0.05)


class TestHeadline:
    @pytest.fixture(scope="class")
    def result(self):
        return headline_reach_metrics(geometry=TINY_GEOMETRY, chips_per_vendor=1)

    def test_one_result_per_chip(self, result):
        assert len(result.per_chip) == 3

    def test_coverage_above_99_percent(self, result):
        """Section 6.1.2: >99% coverage at +250 ms."""
        assert result.mean_coverage > 0.99

    def test_fpr_below_50_percent_ish(self, result):
        """Section 6.1.2: <50% false positive rate (small-population noise
        allowed a modest margin)."""
        assert result.mean_false_positive_rate < 0.60

    def test_speedup_around_2_5x(self, result):
        """Section 6.1.2: ~2.5x runtime speedup."""
        assert result.mean_speedup == pytest.approx(2.5, rel=0.15)


class TestFig9Fig10:
    @pytest.fixture(scope="class")
    def surface(self):
        return fig9_fig10_tradeoff_surface(
            base=Conditions(trefi=0.768, temperature=45.0),
            delta_trefis_s=(0.0, 0.25),
            delta_temperatures_c=(0.0, 5.0),
            geometry=TINY_GEOMETRY,
            iterations=8,
        )

    def test_surface_covers_grid(self, surface):
        assert len(surface.cells) == 4

    def test_reach_improves_coverage_speed(self, surface):
        reach = surface.cell(ReachDelta(delta_trefi=0.25))
        assert reach.coverage_mean > 0.95
        assert reach.runtime_norm_mean < 1.0


class TestFig11Fig12:
    def test_fig11_rows(self):
        rows = fig11_profiling_time(intervals_hours=(1.0, 4.0), densities_gigabits=(8, 64))
        assert len(rows) == 4
        for row in rows:
            assert row.reaper_fraction < row.brute_fraction

    def test_fig12_rows(self):
        rows = fig12_profiling_power(intervals_hours=(1.0, 4.0), densities_gigabits=(8, 64))
        assert len(rows) == 4
        for row in rows:
            assert row.reaper_power_mw < row.brute_power_mw


class TestFig13:
    @pytest.fixture(scope="class")
    def summaries(self):
        return fig13_end_to_end(trefis_s=(0.512, 1.280, None), n_mixes=5)

    def test_grid_complete(self, summaries):
        assert len(summaries) == 3 * 3

    def test_reaper_beats_brute_at_long_interval(self, summaries):
        at_1280 = {s.profiler: s for s in summaries if s.trefi_s == 1.280}
        assert (
            at_1280[ProfilerKind.IDEAL].mean_improvement
            > at_1280[ProfilerKind.REAPER].mean_improvement
            > at_1280[ProfilerKind.BRUTE_FORCE].mean_improvement
        )

    def test_power_reduction_positive(self, summaries):
        for summary in summaries:
            assert summary.mean_power_reduction > 0.1


class TestArchShield:
    def test_reaper_between_brute_and_ideal(self):
        result = archshield_combination(trefi_s=1.280, n_mixes=5)
        assert (
            result["ideal"][0] > result["reaper"][0] > result["brute-force"][0]
        )
