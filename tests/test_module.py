"""Unit tests for multi-chip DRAM modules."""

import pytest

from repro.clock import SimClock
from repro.conditions import Conditions
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.module import DRAMModule
from repro.errors import ConfigurationError
from repro.patterns import CHECKERBOARD

from conftest import TINY_GEOMETRY, TEST_SEED


def make_module(n_chips=2):
    return DRAMModule.build(n_chips=n_chips, geometry=TINY_GEOMETRY, seed=TEST_SEED)


class TestConstruction:
    def test_build_counts(self):
        module = make_module(3)
        assert len(module.chips) == 3
        assert module.capacity_bits == 3 * TINY_GEOMETRY.capacity_bits

    def test_empty_module_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMModule([])

    def test_zero_chips_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMModule.build(n_chips=0, geometry=TINY_GEOMETRY)

    def test_mismatched_clocks_rejected(self):
        a = SimulatedDRAMChip(geometry=TINY_GEOMETRY, clock=SimClock())
        b = SimulatedDRAMChip(geometry=TINY_GEOMETRY, clock=SimClock())
        with pytest.raises(ConfigurationError):
            DRAMModule([a, b])

    def test_io_time_accumulates_linearly(self):
        one = make_module(1)
        four = make_module(4)
        assert four.pattern_io_seconds == pytest.approx(4 * one.pattern_io_seconds)


class TestOperation:
    def test_cell_refs_are_namespaced(self):
        module = make_module(2)
        module.write_pattern(CHECKERBOARD)
        module.disable_refresh()
        module.wait(2.0)
        module.enable_refresh()
        errors = module.read_errors()
        assert errors, "expected some failures at a 2s exposure"
        chips_seen = {chip for chip, _ in errors}
        assert chips_seen <= {0, 1}
        for chip_index, flat in errors:
            assert 0 <= flat < TINY_GEOMETRY.capacity_bits

    def test_wait_advances_clock_once(self):
        module = make_module(2)
        t0 = module.clock.now
        module.wait(5.0)
        assert module.clock.now - t0 == pytest.approx(5.0)

    def test_write_accumulates_chip_io(self):
        module = make_module(2)
        t0 = module.clock.now
        module.write_pattern(CHECKERBOARD)
        expected = sum(c.pattern_io_seconds for c in module.chips)
        assert module.clock.now - t0 == pytest.approx(expected)

    def test_oracle_union_across_chips(self):
        module = make_module(2)
        module.wait(1.0)
        oracle = module.oracle_failing_set(Conditions(trefi=2.0))
        chips_seen = {chip for chip, _ in oracle}
        assert chips_seen == {0, 1}

    def test_set_temperature_broadcasts(self):
        module = make_module(2)
        module.set_temperature(50.0)
        assert all(c.temperature_c == 50.0 for c in module.chips)

    def test_expected_ber_weighted(self):
        module = make_module(2)
        conditions = Conditions(trefi=1.024)
        # Chips carry per-chip process variation, so the module BER is the
        # capacity-weighted mean of the individual (jittered) chip BERs.
        expected = sum(c.expected_ber(conditions) for c in module.chips) / 2
        assert module.expected_ber(conditions) == pytest.approx(expected)
        assert module.chips[0].expected_ber(conditions) != module.chips[1].expected_ber(
            conditions
        )

    def test_profiler_compatible(self):
        """A module satisfies the same device interface as a chip."""
        from repro.core import BruteForceProfiler

        module = make_module(2)
        profile = BruteForceProfiler(iterations=1).run(module, Conditions(trefi=1.024))
        for cell in profile.failing:
            assert isinstance(cell, tuple) and len(cell) == 2
