"""Tests for the population-scale characterization campaign driver."""

import pytest

from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError

from conftest import TINY_GEOMETRY


@pytest.fixture(scope="module")
def summary():
    campaign = CharacterizationCampaign(
        chips_per_vendor=2, geometry=TINY_GEOMETRY, iterations=2, seed=99
    )
    return campaign.run(intervals_s=(0.512, 1.024, 2.048), temperatures_c=(45.0, 55.0))


class TestCampaign:
    def test_population_size(self, summary):
        assert summary.n_chips == 6
        assert set(summary.vendors) == {"A", "B", "C"}
        assert all(v.n_chips == 2 for v in summary.vendors.values())

    def test_ber_monotone_per_vendor(self, summary):
        for stats in summary.vendors.values():
            means = [stats.ber_by_interval[t][0] for t in summary.intervals_s]
            assert means == sorted(means)

    def test_temperature_coefficient_measured(self, summary):
        """The empirical Eq-1 coefficient lands near the vendor's model k."""
        for stats in summary.vendors.values():
            assert stats.measured_temp_coefficient is not None
            assert stats.measured_temp_coefficient == pytest.approx(
                stats.model_temp_coefficient, abs=0.12
            )

    def test_report_renders(self, summary):
        text = summary.to_text()
        assert "Campaign over 6 chips" in text
        assert "vendor A" in text and "vendor C" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CharacterizationCampaign(chips_per_vendor=0)
        campaign = CharacterizationCampaign(chips_per_vendor=1, geometry=TINY_GEOMETRY)
        with pytest.raises(ConfigurationError):
            campaign.run(intervals_s=())
        with pytest.raises(ConfigurationError):
            campaign.run(intervals_s=(1.024, 0.512))
        with pytest.raises(ConfigurationError):
            campaign.run(temperatures_c=())
