"""Unit tests for online profiling scheduling."""

import pytest

from repro.conditions import Conditions
from repro.core.longevity import LongevityEstimate
from repro.core.reaper import REAPER
from repro.core.scheduler import OnlineProfilingScheduler, ScheduleReport
from repro.errors import ConfigurationError
from repro.mitigation import ArchShield


def make_scheduler(chip, longevity_seconds=7200.0, safety=0.5):
    reaper = REAPER(
        chip,
        ArchShield(capacity_bits=chip.capacity_bits),
        Conditions(trefi=1.024, temperature=45.0),
        iterations=1,
    )
    return OnlineProfilingScheduler(reaper, longevity_seconds, safety_factor=safety)


class TestConfiguration:
    def test_interval_is_longevity_times_safety(self, chip):
        scheduler = make_scheduler(chip, longevity_seconds=7200.0, safety=0.5)
        assert scheduler.reprofile_interval_seconds == pytest.approx(3600.0)

    def test_accepts_longevity_estimate(self, chip):
        estimate = LongevityEstimate(
            tolerable_failures=65.0,
            expected_failures=2464.0,
            missed_failures=25.0,
            accumulation_per_hour=0.73,
            longevity_seconds=10000.0,
        )
        reaper = REAPER(
            chip, ArchShield(capacity_bits=chip.capacity_bits), Conditions(trefi=1.024)
        )
        scheduler = OnlineProfilingScheduler(reaper, estimate, safety_factor=1.0)
        assert scheduler.reprofile_interval_seconds == pytest.approx(10000.0)

    def test_infeasible_longevity_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            make_scheduler(chip, longevity_seconds=0.0)

    def test_bad_safety_factor_rejected(self, chip):
        with pytest.raises(ConfigurationError):
            make_scheduler(chip, safety=0.0)


class TestRunFor:
    def test_rounds_recur_on_cadence(self, chip):
        scheduler = make_scheduler(chip, longevity_seconds=7200.0, safety=0.5)
        report = scheduler.run_for(4 * 3600.0)
        # Round at t=0 then roughly every hour.
        assert len(report.rounds) >= 3

    def test_profiling_fraction_accounting(self, chip):
        scheduler = make_scheduler(chip, longevity_seconds=7200.0)
        report = scheduler.run_for(2 * 3600.0)
        expected = report.profiling_seconds / report.duration_seconds
        assert report.profiling_fraction == pytest.approx(expected)
        assert 0.0 < report.profiling_fraction < 1.0

    def test_clock_advances_through_span(self, chip):
        scheduler = make_scheduler(chip, longevity_seconds=7200.0)
        t0 = chip.clock.now
        scheduler.run_for(3600.0)
        assert chip.clock.now - t0 >= 3600.0

    def test_on_round_callback_invoked(self, chip):
        scheduler = make_scheduler(chip, longevity_seconds=7200.0)
        seen = []
        scheduler.run_for(3600.0, on_round=seen.append)
        assert len(seen) == len(scheduler.reaper.rounds)

    def test_new_failures_discovered_over_time(self, chip):
        """VRT keeps supplying new cells between rounds (Observation 2)."""
        scheduler = make_scheduler(chip, longevity_seconds=4 * 3600.0, safety=1.0)
        report = scheduler.run_for(48 * 3600.0)
        added = [r.cells_added_to_mitigation for r in report.rounds]
        assert sum(added[1:]) > 0, "later rounds should find VRT newcomers"

    def test_zero_duration_rejected(self, chip):
        scheduler = make_scheduler(chip)
        with pytest.raises(ConfigurationError):
            scheduler.run_for(0.0)
