"""Tests for the CSV export of analytic experiment series."""

import pytest

from repro.analysis.export import export_all
from repro.errors import ConfigurationError


class TestExport:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        outdir = tmp_path_factory.mktemp("csv")
        return outdir, export_all(outdir, n_mixes=2)

    def test_all_expected_files(self, written):
        outdir, paths = written
        names = {p.name for p in paths}
        assert names == {"table1.csv", "fig7.csv", "fig8.csv", "fig11.csv", "fig12.csv", "fig13.csv"}
        for path in paths:
            assert path.exists()

    def test_table1_contents(self, written):
        outdir, _ = written
        lines = (outdir / "table1.csv").read_text().splitlines()
        assert lines[0].startswith("ecc,tolerable_rber")
        assert len(lines) == 4  # header + 3 ECC strengths
        assert any("SECDED" in line for line in lines)

    def test_fig13_has_all_profilers(self, written):
        outdir, _ = written
        text = (outdir / "fig13.csv").read_text()
        for profiler in ("brute-force", "reaper", "ideal"):
            assert profiler in text
        assert "no-refresh" in text

    def test_csvs_parse_as_floats(self, written):
        outdir, _ = written
        lines = (outdir / "fig11.csv").read_text().splitlines()
        for line in lines[1:]:
            cells = line.split(",")
            assert len(cells) == 4
            float(cells[2])
            float(cells[3])

    def test_invalid_mix_count_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            export_all(tmp_path, n_mixes=0)

    def test_cli_export(self, tmp_path, capsys):
        from repro.__main__ import main

        assert main(["export", "--outdir", str(tmp_path / "out"), "--mixes", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("wrote ") == 6
