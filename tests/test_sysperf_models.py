"""Unit tests for the DRAM timing, CPU, and power models."""

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.cpu import CoreModel
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.power import PowerModel
from repro.sysperf.workloads import benchmark_by_name


class TestDramTimings:
    def test_row_hit_cheaper_than_miss(self):
        timings = DRAMTimings()
        assert timings.row_hit_latency_ns < timings.row_miss_latency_ns

    def test_access_latency_interpolates(self):
        timings = DRAMTimings()
        mid = timings.access_latency_ns(0.5)
        assert timings.row_hit_latency_ns < mid < timings.row_miss_latency_ns

    def test_bad_hit_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMTimings().access_latency_ns(1.5)

    def test_refresh_commands_spread_across_window(self):
        timings = DRAMTimings()
        assert timings.refresh_command_period_ns(0.064) == pytest.approx(
            0.064e9 / 8192
        )

    def test_busy_fraction_shrinks_with_longer_window(self):
        timings = DRAMTimings(density_gigabits=64)
        assert timings.refresh_busy_fraction(0.512) < timings.refresh_busy_fraction(0.064)

    def test_busy_fraction_grows_with_density(self):
        small = DRAMTimings(density_gigabits=8).refresh_busy_fraction(0.064)
        large = DRAMTimings(density_gigabits=64).refresh_busy_fraction(0.064)
        assert large > small

    def test_blocking_latency_structure(self):
        timings = DRAMTimings(density_gigabits=64)
        busy = timings.refresh_busy_fraction(0.064)
        assert timings.refresh_blocking_latency_ns(0.064) == pytest.approx(
            busy * timings.trfc_ns / 2.0
        )

    def test_bad_trefi_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMTimings().refresh_busy_fraction(0.0)


class TestCoreModel:
    def make(self, name="gcc_like"):
        return CoreModel(benchmark_by_name(name))

    def test_zero_latency_gives_base_ipc(self):
        core = self.make()
        assert core.ipc(0.0) == pytest.approx(core.profile.base_ipc)

    def test_ipc_decreases_with_latency(self):
        core = self.make()
        assert core.ipc(200.0) < core.ipc(50.0)

    def test_memory_bound_core_more_sensitive(self):
        heavy = self.make("mcf_like")
        light = self.make("povray_like")
        heavy_drop = heavy.ipc(200.0) / heavy.ipc(50.0)
        light_drop = light.ipc(200.0) / light.ipc(50.0)
        assert heavy_drop < light_drop

    def test_mlp_capped_by_mshrs(self):
        core = CoreModel(benchmark_by_name("libquantum_like"), mshrs=4)
        assert core.effective_mlp == 4.0

    def test_request_rate_tracks_ipc(self):
        core = self.make("mcf_like")
        assert core.request_rate_per_ns(200.0) < core.request_rate_per_ns(50.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().ipc(-1.0)


class TestPowerModel:
    def test_refresh_power_scales_inverse_with_window(self):
        model = PowerModel(density_gigabits=64)
        assert model.refresh_power_mw(0.128) == pytest.approx(
            model.refresh_power_mw(0.064) / 2.0
        )

    def test_refresh_power_zero_when_disabled(self):
        assert PowerModel().refresh_power_mw(None) == 0.0

    def test_refresh_share_large_for_big_chips(self):
        """The paper's motivation: refresh is up to ~50% of DRAM power."""
        share = PowerModel(density_gigabits=64).refresh_share(0.064, requests_per_ns=0.01)
        assert 0.30 < share < 0.65

    def test_refresh_share_small_for_small_chips(self):
        share = PowerModel(density_gigabits=8).refresh_share(0.064, requests_per_ns=0.01)
        assert share < 0.25

    def test_rows_per_refresh_command(self):
        assert PowerModel(density_gigabits=8).rows_per_refresh_command == 64
        assert PowerModel(density_gigabits=64).rows_per_refresh_command == 512

    def test_access_power_linear_in_rate(self):
        model = PowerModel()
        assert model.access_power_mw(0.2) == pytest.approx(2 * model.access_power_mw(0.1))

    def test_profiling_round_energy_scales_with_capacity(self):
        model = PowerModel()
        small = model.profiling_round_energy_j(1 << 30)
        large = model.profiling_round_energy_j(4 << 30)
        assert large == pytest.approx(4 * small)

    def test_profiling_power_amortizes(self):
        model = PowerModel()
        frequent = model.profiling_power_mw(1 << 30, 3600.0)
        rare = model.profiling_power_mw(1 << 30, 7200.0)
        assert frequent == pytest.approx(2 * rare)

    def test_profiling_power_is_negligible(self):
        """Figure 12's conclusion: profiling power is tiny versus the
        module's total power."""
        model = PowerModel(density_gigabits=64)
        profiling = model.profiling_power_mw(64 * (1 << 30) * 32, 4 * 3600.0)
        total = model.total_power_mw(0.512, requests_per_ns=0.05) * 32
        assert profiling / total < 0.05

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            PowerModel().profiling_power_mw(1 << 30, 0.0)
