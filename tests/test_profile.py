"""Unit tests for retention profiles and their serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.conditions import Conditions
from repro.core.profile import IterationRecord, RetentionProfile
from repro.errors import ConfigurationError


def make_profile(cells=(1, 2, 3), records=(), mechanism="brute-force"):
    return RetentionProfile(
        failing=frozenset(cells),
        profiling_conditions=Conditions(trefi=1.274),
        target_conditions=Conditions(trefi=1.024),
        patterns=("solid", "solid~"),
        iterations=2,
        runtime_seconds=10.0,
        started_at=0.0,
        records=tuple(records),
        mechanism=mechanism,
    )


def record(iteration, pattern, cells, observed=None, time=0.0):
    return IterationRecord(
        iteration=iteration,
        pattern_key=pattern,
        new_cells=frozenset(cells),
        observed_count=observed if observed is not None else len(cells),
        clock_time=time,
    )


class TestBasics:
    def test_len_and_contains(self):
        profile = make_profile(cells=(5, 9))
        assert len(profile) == 2
        assert 5 in profile
        assert 6 not in profile

    def test_is_reach_profile(self):
        assert make_profile().is_reach_profile

    def test_brute_profile_is_not_reach(self):
        profile = RetentionProfile(
            failing=frozenset(),
            profiling_conditions=Conditions(trefi=1.024),
            target_conditions=Conditions(trefi=1.024),
            patterns=(),
            iterations=1,
            runtime_seconds=0.0,
            started_at=0.0,
        )
        assert not profile.is_reach_profile

    def test_negative_runtime_rejected(self):
        with pytest.raises(ConfigurationError):
            RetentionProfile(
                failing=frozenset(),
                profiling_conditions=Conditions(trefi=1.0),
                target_conditions=Conditions(trefi=1.0),
                patterns=(),
                iterations=1,
                runtime_seconds=-1.0,
                started_at=0.0,
            )


class TestProvenance:
    def test_cumulative_counts(self):
        profile = make_profile(
            cells=(1, 2, 3),
            records=[
                record(0, "solid", {1, 2}),
                record(0, "solid~", {3}),
                record(1, "solid", set()),
            ],
        )
        assert profile.cumulative_counts() == [2, 3, 3]

    def test_cells_after_iterations(self):
        profile = make_profile(
            cells=(1, 2, 3),
            records=[
                record(0, "solid", {1}),
                record(1, "solid", {2}),
                record(2, "solid", {3}),
            ],
        )
        assert profile.cells_after_iterations(1) == frozenset({1})
        assert profile.cells_after_iterations(2) == frozenset({1, 2})
        assert profile.cells_after_iterations(10) == frozenset({1, 2, 3})

    def test_merge_unions_cells(self):
        a = make_profile(cells=(1, 2))
        b = make_profile(cells=(2, 3))
        merged = a.merged_with(b)
        assert merged.failing == frozenset({1, 2, 3})
        assert merged.runtime_seconds == pytest.approx(20.0)
        assert merged.iterations == 4

    def test_merge_different_targets_rejected(self):
        a = make_profile()
        b = RetentionProfile(
            failing=frozenset(),
            profiling_conditions=Conditions(trefi=2.0),
            target_conditions=Conditions(trefi=2.0),
            patterns=(),
            iterations=1,
            runtime_seconds=0.0,
            started_at=0.0,
        )
        with pytest.raises(ConfigurationError):
            a.merged_with(b)


class TestSerialization:
    def test_roundtrip_int_cells(self):
        profile = make_profile(
            cells=(1, 2, 3),
            records=[record(0, "solid", {1, 2}, observed=5, time=3.5)],
        )
        assert RetentionProfile.from_json(profile.to_json()) == profile

    def test_roundtrip_tuple_cells(self):
        profile = RetentionProfile(
            failing=frozenset({(0, 17), (1, 99)}),
            profiling_conditions=Conditions(trefi=1.274),
            target_conditions=Conditions(trefi=1.024),
            patterns=("random",),
            iterations=1,
            runtime_seconds=1.0,
            started_at=0.0,
            records=(record(0, "random", {(0, 17)}),),
        )
        assert RetentionProfile.from_json(profile.to_json()) == profile

    @given(st.frozensets(st.integers(min_value=0, max_value=10**9), max_size=30))
    def test_roundtrip_arbitrary_cells(self, cells):
        profile = make_profile(cells=cells)
        assert RetentionProfile.from_json(profile.to_json()).failing == cells
