"""Every example script must run to completion (guards the documentation)."""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys):
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script.name} produced no output"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "online_profiling_archshield",
        "tradeoff_explorer",
        "longevity_planner",
        "characterization_campaign",
        "spd_deployment_planner",
    } <= names
