"""Unit tests for the profiling-IO timing model and refresh constants."""

import pytest

from repro.dram.geometry import GIBIBIT
from repro.dram.timing import (
    IO_SECONDS_PER_GIGABIT,
    pattern_io_seconds,
    refresh_timings,
)
from repro.errors import ConfigurationError


class TestPatternIo:
    def test_paper_anchor_2gb_in_125ms(self):
        """Section 7.3.1: one full pass over 16 Gbit takes 0.125 s."""
        assert pattern_io_seconds(16 * GIBIBIT) == pytest.approx(0.125)

    def test_linear_scaling(self):
        assert pattern_io_seconds(32 * GIBIBIT) == pytest.approx(0.25)

    def test_module_of_32x8gb(self):
        """32x 8Gb chips: 2 s per pass (the paper's Eq 9 worked example)."""
        assert pattern_io_seconds(32 * 8 * GIBIBIT) == pytest.approx(2.0)

    def test_module_of_32x64gb(self):
        """32x 64Gb chips: 16 s per pass."""
        assert pattern_io_seconds(32 * 64 * GIBIBIT) == pytest.approx(16.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            pattern_io_seconds(0)

    def test_rate_constant(self):
        assert IO_SECONDS_PER_GIGABIT == pytest.approx(0.125 / 16.0)


class TestRefreshTimings:
    @pytest.mark.parametrize("density", [8, 16, 32, 64])
    def test_known_densities(self, density):
        info = refresh_timings(density)
        assert info.density_gigabits == density
        assert info.trfc_ns > 0.0
        assert info.refresh_commands_per_window == 8192

    def test_trfc_grows_with_density(self):
        values = [refresh_timings(d).trfc_ns for d in (8, 16, 32, 64)]
        assert values == sorted(values)
        assert values[0] < values[-1]

    def test_rows_scale_with_density(self):
        assert refresh_timings(64).rows_per_bank == 8 * refresh_timings(8).rows_per_bank

    def test_unknown_density_rejected(self):
        with pytest.raises(ConfigurationError):
            refresh_timings(128)
