"""Unit tests for the Eq-9 runtime model, pinned to the paper's examples."""

import pytest

from repro.core.runtime_model import ProfilingRoundModel, reach_speedup, round_runtime_seconds
from repro.dram.geometry import GIBIBIT
from repro.errors import ConfigurationError


class TestEq9PaperExamples:
    def test_32x8gb_is_about_3_minutes(self):
        """Section 7.3.1: 32x 8Gb chips, 1024 ms, 6 patterns, 6 iterations
        -> T_profile ~= 3.01 minutes."""
        seconds = round_runtime_seconds(
            trefi_s=1.024,
            capacity_bits=32 * 8 * GIBIBIT,
            n_patterns=6,
            n_iterations=6,
        )
        assert seconds / 60.0 == pytest.approx(3.01, rel=0.02)

    def test_32x64gb_is_about_20_minutes(self):
        """Section 7.3.1: 32x 64Gb chips -> T_profile ~= 19.8 minutes."""
        seconds = round_runtime_seconds(
            trefi_s=1.024,
            capacity_bits=32 * 64 * GIBIBIT,
            n_patterns=6,
            n_iterations=6,
        )
        assert seconds / 60.0 == pytest.approx(19.8, rel=0.02)


class TestModelStructure:
    def test_linear_in_iterations(self):
        one = round_runtime_seconds(1.0, GIBIBIT, 6, 1)
        four = round_runtime_seconds(1.0, GIBIBIT, 6, 4)
        assert four == pytest.approx(4 * one)

    def test_linear_in_patterns(self):
        one = round_runtime_seconds(1.0, GIBIBIT, 1, 6)
        six = round_runtime_seconds(1.0, GIBIBIT, 6, 6)
        assert six == pytest.approx(6 * one)

    def test_io_term_scales_with_capacity(self):
        model_small = ProfilingRoundModel(trefi_s=1.0, capacity_bits=GIBIBIT)
        model_large = ProfilingRoundModel(trefi_s=1.0, capacity_bits=4 * GIBIBIT)
        assert model_large.io_seconds_per_pass == pytest.approx(
            4 * model_small.io_seconds_per_pass
        )

    def test_pass_time_includes_wait_and_io(self):
        model = ProfilingRoundModel(trefi_s=1.0, capacity_bits=16 * GIBIBIT)
        assert model.seconds_per_pass == pytest.approx(1.0 + 0.25)

    def test_invalid_trefi_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfilingRoundModel(trefi_s=0.0, capacity_bits=GIBIBIT)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfilingRoundModel(trefi_s=1.0, capacity_bits=GIBIBIT, n_patterns=0)


class TestReachSpeedup:
    def test_headline_configuration_is_about_2_5x(self):
        """16 brute iterations at 1024 ms vs 5 reach iterations at 1274 ms."""
        speedup = reach_speedup(
            target_trefi_s=1.024,
            reach_trefi_s=1.274,
            capacity_bits=16 * GIBIBIT,
            brute_iterations=16,
            reach_iterations=5,
        )
        assert speedup == pytest.approx(2.5, rel=0.1)

    def test_fewer_reach_iterations_faster(self):
        fast = reach_speedup(1.024, 1.274, GIBIBIT, 16, 4)
        slow = reach_speedup(1.024, 1.274, GIBIBIT, 16, 8)
        assert fast > slow

    def test_reach_below_target_rejected(self):
        with pytest.raises(ConfigurationError):
            reach_speedup(1.024, 0.9, GIBIBIT, 16, 5)
