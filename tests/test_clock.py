"""Unit tests for the simulated clock."""

import pytest

from repro.clock import ClockStopwatch, SimClock
from repro.errors import ClockError


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_negative_start_rejected(self):
        with pytest.raises(ClockError):
            SimClock(-1.0)

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        clock = SimClock(1.0)
        assert clock.advance(2.0) == pytest.approx(3.0)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_elapsed_since(self):
        clock = SimClock()
        t0 = clock.now
        clock.advance(7.0)
        assert clock.elapsed_since(t0) == pytest.approx(7.0)

    def test_elapsed_since_future_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.elapsed_since(1.0)


class TestClockStopwatch:
    def test_measures_elapsed(self):
        clock = SimClock()
        watch = ClockStopwatch(clock)
        clock.advance(3.0)
        assert watch.elapsed == pytest.approx(3.0)

    def test_restart_resets_origin(self):
        clock = SimClock()
        watch = ClockStopwatch(clock)
        clock.advance(3.0)
        watch.restart()
        clock.advance(1.0)
        assert watch.elapsed == pytest.approx(1.0)

    def test_zero_elapsed_initially(self):
        assert ClockStopwatch(SimClock()).elapsed == 0.0
