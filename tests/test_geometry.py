"""Unit tests for DRAM chip geometry and addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.dram.geometry import GIBIBIT, CellAddress, ChipGeometry
from repro.errors import ConfigurationError

SMALL = ChipGeometry(banks=4, rows_per_bank=64, bits_per_row=128)


class TestCapacity:
    def test_default_is_8gbit(self):
        assert ChipGeometry().capacity_gigabits == pytest.approx(8.0)

    def test_capacity_bits(self):
        assert SMALL.capacity_bits == 4 * 64 * 128

    def test_capacity_bytes(self):
        assert SMALL.capacity_bytes == SMALL.capacity_bits // 8

    def test_total_rows(self):
        assert SMALL.total_rows == 4 * 64

    def test_from_capacity_gigabits(self):
        geometry = ChipGeometry.from_capacity_gigabits(1.0)
        assert geometry.capacity_bits == GIBIBIT

    def test_from_capacity_fractional(self):
        geometry = ChipGeometry.from_capacity_gigabits(1.0 / 16.0)
        assert geometry.capacity_bits == GIBIBIT // 16

    def test_from_capacity_rejects_non_power_of_two_rows(self):
        with pytest.raises(ConfigurationError):
            ChipGeometry.from_capacity_gigabits(0.3)

    @pytest.mark.parametrize("field", ["banks", "rows_per_bank", "bits_per_row"])
    def test_non_power_of_two_rejected(self, field):
        kwargs = {"banks": 8, "rows_per_bank": 64, "bits_per_row": 128}
        kwargs[field] = 3
        with pytest.raises(ConfigurationError):
            ChipGeometry(**kwargs)


class TestAddressing:
    def test_flatten_decompose_examples(self):
        address = CellAddress(bank=2, row=10, col=5)
        flat = SMALL.flatten(address)
        assert SMALL.decompose(flat) == address

    def test_flat_zero_is_origin(self):
        assert SMALL.decompose(0) == CellAddress(0, 0, 0)

    def test_last_flat_index(self):
        last = SMALL.capacity_bits - 1
        assert SMALL.decompose(last) == CellAddress(3, 63, 127)

    def test_out_of_range_bank_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL.flatten(CellAddress(bank=4, row=0, col=0))

    def test_out_of_range_row_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL.flatten(CellAddress(bank=0, row=64, col=0))

    def test_out_of_range_col_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL.flatten(CellAddress(bank=0, row=0, col=128))

    def test_out_of_range_flat_rejected(self):
        with pytest.raises(ConfigurationError):
            SMALL.decompose(SMALL.capacity_bits)

    def test_row_of_consistent_with_decompose(self):
        flat = SMALL.flatten(CellAddress(bank=1, row=3, col=7))
        assert SMALL.row_of(flat) == 1 * 64 + 3

    @given(st.integers(min_value=0, max_value=SMALL.capacity_bits - 1))
    def test_roundtrip_bijection(self, flat):
        assert SMALL.flatten(SMALL.decompose(flat)) == flat

    @given(
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=127),
    )
    def test_roundtrip_from_address(self, bank, row, col):
        address = CellAddress(bank, row, col)
        assert SMALL.decompose(SMALL.flatten(address)) == address
