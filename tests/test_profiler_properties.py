"""Property harness over the full profiling stack.

Randomized profiler configurations (intervals, iteration counts, pattern
subsets, reach deltas) against small chips, checking the invariants that
must hold for *any* configuration: Eq-9 runtime accounting, metric bounds,
protocol legality, and profile well-formedness.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.conditions import Conditions, ReachDelta
from repro.core import BruteForceProfiler, ReachProfiler, evaluate
from repro.dram.chip import SimulatedDRAMChip
from repro.dram.geometry import ChipGeometry
from repro.patterns import STANDARD_PATTERNS

MICRO = ChipGeometry.from_capacity_gigabits(1.0 / 64.0)

configs = st.fixed_dictionaries(
    {
        "trefi": st.sampled_from([0.256, 0.512, 1.024, 1.536]),
        "iterations": st.integers(min_value=1, max_value=4),
        "n_patterns": st.integers(min_value=1, max_value=12),
        "delta": st.sampled_from([0.0, 0.125, 0.25]),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


class TestProfilerInvariants:
    @given(configs)
    @settings(max_examples=25, deadline=None)
    def test_runtime_matches_eq9(self, config):
        chip = SimulatedDRAMChip(geometry=MICRO, seed=config["seed"])
        patterns = STANDARD_PATTERNS[: config["n_patterns"]]
        profiler = BruteForceProfiler(patterns=patterns, iterations=config["iterations"])
        profile = profiler.run(chip, Conditions(trefi=config["trefi"], temperature=45.0))
        per_pass = config["trefi"] + 2 * chip.pattern_io_seconds
        expected = per_pass * len(patterns) * config["iterations"]
        assert profile.runtime_seconds == pytest.approx(expected)

    @given(configs)
    @settings(max_examples=25, deadline=None)
    def test_profile_well_formed(self, config):
        chip = SimulatedDRAMChip(geometry=MICRO, seed=config["seed"])
        patterns = STANDARD_PATTERNS[: config["n_patterns"]]
        profiler = ReachProfiler(
            reach=ReachDelta(delta_trefi=config["delta"]),
            patterns=patterns,
            iterations=config["iterations"],
        )
        target = Conditions(trefi=config["trefi"], temperature=45.0)
        profile = profiler.run(chip, target)
        # Records cover exactly iterations x patterns passes.
        assert len(profile.records) == config["iterations"] * len(patterns)
        # Every recorded new cell appears in the final set; counts add up.
        union = set()
        for record in profile.records:
            assert record.new_cells.isdisjoint(union)
            union |= record.new_cells
        assert union == set(profile.failing)
        # Cells are valid addresses.
        for cell in profile.failing:
            assert 0 <= cell < chip.capacity_bits
        # The command trace is a legal test sequence.
        chip.trace.verify_protocol()

    @given(configs)
    @settings(max_examples=20, deadline=None)
    def test_metrics_bounded_against_oracle(self, config):
        chip = SimulatedDRAMChip(geometry=MICRO, seed=config["seed"])
        target = Conditions(trefi=config["trefi"], temperature=45.0)
        profiler = ReachProfiler(
            reach=ReachDelta(delta_trefi=config["delta"]),
            iterations=config["iterations"],
        )
        profile = profiler.run(chip, target)
        oracle = set(int(c) for c in chip.oracle_failing_set(target, p_min=0.01))
        result = evaluate(profile, oracle)
        assert 0.0 <= result.coverage <= 1.0
        assert 0.0 <= result.false_positive_rate <= 1.0
        # A zero-delta reach is brute force: nearly no false positives vs a
        # permissive oracle (VRT arrivals can contribute a couple).
        if config["delta"] == 0.0 and result.n_found > 0:
            assert result.n_false_positives <= max(2, result.n_found // 5)

    @given(configs)
    @settings(max_examples=15, deadline=None)
    def test_more_reach_never_fewer_expected_finds(self, config):
        """Statistically: a +250ms profile finds at least as many cells as a
        zero-delta profile of the same chip state (same seed, same draws)."""
        base_chip = SimulatedDRAMChip(geometry=MICRO, seed=config["seed"])
        reach_chip = SimulatedDRAMChip(geometry=MICRO, seed=config["seed"])
        target = Conditions(trefi=config["trefi"], temperature=45.0)
        base = ReachProfiler(reach=ReachDelta(), iterations=2).run(base_chip, target)
        reached = ReachProfiler(reach=ReachDelta(delta_trefi=0.25), iterations=2).run(
            reach_chip, target
        )
        # Identical RNG streams: the reach exposure dominates pointwise.
        assert len(reached) >= len(base)
