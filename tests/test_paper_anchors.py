"""Every quantitative anchor pinned from the paper, in one place.

These tests are the contract between the simulator calibration and the
published results; EXPERIMENTS.md cross-references them.
"""

import pytest

from repro.conditions import Conditions
from repro.core.longevity import longevity_for_system
from repro.core.runtime_model import round_runtime_seconds
from repro.dram.geometry import GIBIBIT
from repro.dram.timing import pattern_io_seconds
from repro.dram.vendor import VENDOR_A, VENDOR_B, VENDOR_C
from repro.ecc.model import CONSUMER_UBER, SECDED, tolerable_rber
from repro.sysperf.overhead import ProfilerKind, profiling_time_fraction

GIB = 1 << 30


class TestSection5Anchors:
    def test_eq1_temperature_coefficients(self):
        """Eq 1: R_A ~ e^{0.22dT}, R_B ~ e^{0.20dT}, R_C ~ e^{0.26dT}."""
        assert (VENDOR_A.failure_rate_temp_coeff,
                VENDOR_B.failure_rate_temp_coeff,
                VENDOR_C.failure_rate_temp_coeff) == (0.22, 0.20, 0.26)

    def test_fig3_one_cell_per_20s_at_2048ms(self):
        rate = VENDOR_B.vrt_arrival_rate_per_hour(2.048, 16.0, 45.0)
        assert 3600.0 / rate == pytest.approx(20.0, rel=0.1)

    def test_sec623_accumulation_0_73_per_hour(self):
        rate = VENDOR_B.vrt_arrival_rate_per_hour(1.024, 16.0, 45.0)
        assert rate == pytest.approx(0.73, rel=0.05)

    def test_sec623_2464_failures_at_1024ms_2gb(self):
        count = VENDOR_B.expected_failures(Conditions(trefi=1.024, temperature=45.0), 16 * GIBIBIT)
        assert count == pytest.approx(2464, rel=0.15)


class TestSection6Anchors:
    def test_table1_secded_rber(self):
        assert tolerable_rber(SECDED, CONSUMER_UBER) == pytest.approx(3.8e-9, rel=0.05)

    def test_sec623_longevity_2_3_days(self):
        estimate = longevity_for_system(
            VENDOR_B, 2 * GIB, SECDED, Conditions(trefi=1.024, temperature=45.0),
            coverage=0.99,
        )
        assert estimate.longevity_days == pytest.approx(2.3, rel=0.15)

    def test_sec612_fpr_under_50pct_at_plus_250ms(self):
        """Model-level headline: BER(target+250ms) < 2x BER(target)."""
        base = VENDOR_B.ber(Conditions(trefi=1.024, temperature=45.0))
        reach = VENDOR_B.ber(Conditions(trefi=1.274, temperature=45.0))
        assert (reach - base) / reach < 0.50


class TestSection7Anchors:
    def test_io_anchor_125ms_per_2gb_pass(self):
        assert pattern_io_seconds(16 * GIBIBIT) == pytest.approx(0.125)

    def test_eq9_example_3_minutes(self):
        seconds = round_runtime_seconds(1.024, 32 * 8 * GIBIBIT, 6, 6)
        assert seconds == pytest.approx(3.01 * 60, rel=0.02)

    def test_eq9_example_19_8_minutes(self):
        seconds = round_runtime_seconds(1.024, 32 * 64 * GIBIBIT, 6, 6)
        assert seconds == pytest.approx(19.8 * 60, rel=0.02)

    def test_fig11_anchor_22_7pct_and_9_1pct(self):
        """4-hour profiling interval, 64 Gb chips: 22.7% of system time for
        brute force, 9.1% for REAPER."""
        brute = profiling_time_fraction(ProfilerKind.BRUTE_FORCE, 4 * 3600.0, 64)
        reaper = profiling_time_fraction(ProfilerKind.REAPER, 4 * 3600.0, 64)
        assert brute == pytest.approx(0.227, rel=0.08)
        assert reaper == pytest.approx(0.091, rel=0.08)
