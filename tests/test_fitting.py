"""Unit and property tests for the statistical fitting helpers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import rng as rng_mod
from repro.analysis.fitting import (
    fit_lognormal,
    fit_normal_cdf,
    fit_power_law,
)
from repro.errors import ConfigurationError


class TestPowerLaw:
    def test_exact_recovery(self):
        x = np.array([0.5, 1.0, 2.0, 4.0])
        fit = fit_power_law(x, 3.0 * x**2.5)
        assert fit.a == pytest.approx(3.0, rel=1e-6)
        assert fit.b == pytest.approx(2.5, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        x = np.array([1.0, 2.0, 4.0])
        fit = fit_power_law(x, 2.0 * x**3)
        assert fit.predict(8.0) == pytest.approx(2.0 * 512.0, rel=1e-6)

    def test_noise_tolerated(self):
        rng = rng_mod.derive(1, "fit")
        x = np.geomspace(0.5, 8.0, 20)
        y = 1.7 * x**4.2 * np.exp(rng.normal(0, 0.05, 20))
        fit = fit_power_law(x, y)
        assert fit.b == pytest.approx(4.2, abs=0.3)
        assert fit.r_squared > 0.95

    def test_nonpositive_data_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0], [1.0, 0.0])
        with pytest.raises(ConfigurationError):
            fit_power_law([0.0, 2.0], [1.0, 1.0])

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [1.0])

    @given(
        st.floats(min_value=0.1, max_value=100.0),
        st.floats(min_value=0.5, max_value=10.0),
    )
    @settings(max_examples=30)
    def test_recovery_property(self, a, b):
        x = np.geomspace(0.25, 4.0, 8)
        fit = fit_power_law(x, a * x**b)
        assert fit.a == pytest.approx(a, rel=1e-4)
        assert fit.b == pytest.approx(b, rel=1e-4)


class TestNormalCdf:
    def test_exact_recovery(self):
        from scipy.special import ndtr

        intervals = np.linspace(0.5, 1.5, 15)
        fractions = ndtr((intervals - 1.0) / 0.1)
        fit = fit_normal_cdf(intervals, fractions)
        assert fit is not None
        assert fit.mu == pytest.approx(1.0, abs=0.01)
        assert fit.sigma == pytest.approx(0.1, abs=0.01)

    def test_degenerate_step_returns_none(self):
        """A cell observed only at 0% and 100% cannot be fitted."""
        intervals = [0.5, 1.0, 1.5]
        fractions = [0.0, 0.0, 1.0]
        assert fit_normal_cdf(intervals, fractions) is None

    def test_decreasing_fractions_return_none(self):
        intervals = [0.5, 1.0, 1.5]
        fractions = [0.9, 0.5, 0.1]
        assert fit_normal_cdf(intervals, fractions) is None

    def test_probability_roundtrip(self):
        from scipy.special import ndtr

        intervals = np.linspace(0.8, 1.2, 9)
        fractions = ndtr((intervals - 1.0) / 0.05)
        fit = fit_normal_cdf(intervals, fractions)
        assert fit.probability(1.0) == pytest.approx(0.5, abs=0.02)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_normal_cdf([1.0, 2.0], [0.5])


class TestLognormal:
    def test_recovery(self):
        rng = rng_mod.derive(2, "lognormal")
        samples = rng.lognormal(mean=np.log(0.06), sigma=0.6, size=5000)
        fit = fit_lognormal(samples)
        assert fit.median == pytest.approx(0.06, rel=0.05)
        assert fit.ln_sigma == pytest.approx(0.6, rel=0.05)
        assert fit.n_samples == 5000

    def test_ks_distance_small_for_lognormal_data(self):
        rng = rng_mod.derive(3, "lognormal")
        samples = rng.lognormal(mean=0.0, sigma=1.0, size=2000)
        fit = fit_lognormal(samples)
        assert fit.ks_distance(samples) < 0.05

    def test_ks_distance_large_for_uniform_data(self):
        rng = rng_mod.derive(4, "lognormal")
        samples = rng.uniform(0.5, 1.5, size=2000)
        fit = fit_lognormal(samples)
        assert fit.ks_distance(samples) > 0.05

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_lognormal([1.0, 0.0])

    def test_too_few_samples_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_lognormal([1.0])


class TestReport:
    def test_ascii_table_alignment(self):
        from repro.analysis.report import ascii_table

        text = ascii_table(["a", "long_header"], [[1, 2.5], ["x", None]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long_header" in lines[1]
        assert "-" in lines[2]
        assert len(lines) == 5

    def test_ascii_table_row_mismatch_rejected(self):
        from repro.analysis.report import ascii_table

        with pytest.raises(ConfigurationError):
            ascii_table(["a"], [[1, 2]])

    def test_paper_vs_measured_format(self):
        from repro.analysis.report import paper_vs_measured

        row = paper_vs_measured("coverage", ">99%", "99.4%", verdict="OK")
        assert "paper" in row and "measured" in row and "[OK]" in row

    def test_to_csv(self):
        from repro.analysis.report import to_csv

        text = to_csv(["a", "b"], [[1, 2], [3.5, None]])
        assert text.splitlines()[0] == "a,b"
        assert "3.5,-" in text
