"""Tests for the Section-5 characterization drivers (Figures 2-8).

These run scaled-down versions of the paper's experiments on tiny chips and
assert the qualitative structure (Observations 1-4).
"""

import numpy as np
import pytest

from repro.analysis.characterization import (
    fig2_retention_failure_rates,
    fig3_discovery_timeline,
    fig4_accumulation_rates,
    fig5_dpd_coverage,
    fig6_cell_failure_cdfs,
    fig7_parameter_distributions,
    fig8_combined_distribution,
)
from repro.dram.geometry import ChipGeometry
from repro.errors import ConfigurationError

from conftest import TINY_GEOMETRY

SMALL = ChipGeometry.from_capacity_gigabits(0.25)


class TestFig2:
    def test_rows_cover_all_vendors_and_intervals(self):
        intervals = (0.512, 1.024, 2.048)
        rows = fig2_retention_failure_rates(intervals_s=intervals, geometry=TINY_GEOMETRY)
        assert len(rows) == 3 * len(intervals)
        assert {r.vendor for r in rows} == {"A", "B", "C"}

    def test_ber_monotone_in_interval(self):
        rows = fig2_retention_failure_rates(
            intervals_s=(0.512, 1.024, 2.048), geometry=SMALL
        )
        for vendor in "ABC":
            series = [r.ber_total for r in rows if r.vendor == vendor]
            assert series == sorted(series)

    def test_observation_1_repeat_dominates_at_higher_intervals(self):
        """Observation 1: cells failing at an interval mostly fail again at
        higher intervals -- i.e. the non-repeat share stays small."""
        rows = fig2_retention_failure_rates(
            intervals_s=(0.512, 1.024, 2.048), geometry=SMALL, iterations=2
        )
        top = [r for r in rows if r.trefi_s == 2.048]
        for row in top:
            if row.ber_total > 0:
                assert row.ber_nonrepeat <= 0.3 * (row.ber_repeat + row.ber_nonrepeat + 1e-18)

    def test_unsorted_intervals_rejected(self):
        with pytest.raises(ConfigurationError):
            fig2_retention_failure_rates(intervals_s=(1.024, 0.512), geometry=TINY_GEOMETRY)


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3_discovery_timeline(
            trefi_s=2.048, iterations=80, span_days=1.0, geometry=SMALL
        )

    def test_cumulative_monotone(self, result):
        counts = [p.cumulative for p in result.points]
        assert counts == sorted(counts)

    def test_observation_2_new_failures_keep_arriving(self, result):
        """Observation 2: the failing population keeps changing (VRT)."""
        second_half = [p.unique_new for p in result.points[len(result.points) // 2 :]]
        assert sum(second_half) > 0

    def test_steady_state_rate_positive(self, result):
        assert result.steady_state_rate_per_hour > 0.0

    def test_timeline_spans_requested_days(self, result):
        assert result.points[-1].time_days == pytest.approx(1.0, rel=0.1)

    def test_per_iteration_set_size_roughly_stable(self, result):
        """Figure 3: unique+repeat per iteration stays roughly constant."""
        sizes = [p.unique_new + p.repeat for p in result.points[10:]]
        assert np.std(sizes) < np.mean(sizes)

    def test_too_few_iterations_rejected(self):
        with pytest.raises(ConfigurationError):
            fig3_discovery_timeline(iterations=2, geometry=TINY_GEOMETRY)


class TestFig4:
    def test_rates_grow_with_interval(self):
        result = fig4_accumulation_rates(
            intervals_s=(1.536, 2.048, 2.4),
            hours_per_interval=6.0,
            geometry=SMALL,
        )
        for vendor in "ABC":
            series = [r.analytic_rate_per_hour for r in result.rows if r.vendor == vendor]
            assert series == sorted(series)

    def test_measured_tracks_analytic(self):
        # A deep base profile is needed to exhaust the static set before the
        # VRT-driven steady state becomes measurable (the paper's ~10 hours).
        result = fig4_accumulation_rates(
            intervals_s=(2.048, 2.4),
            hours_per_interval=12.0,
            geometry=SMALL,
            base_iterations=16,
        )
        for row in result.rows:
            if row.analytic_rate_per_hour > 1.0:
                assert row.measured_rate_per_hour == pytest.approx(
                    row.analytic_rate_per_hour, rel=0.7
                )

    def test_power_law_fit_exponent(self):
        result = fig4_accumulation_rates(
            intervals_s=(1.536, 2.048, 2.4), hours_per_interval=12.0, geometry=SMALL
        )
        fit = result.fits.get("B")
        if fit is not None:
            assert 4.0 < fit.b < 12.0


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5_dpd_coverage(trefi_s=2.048, iterations=24, geometry=SMALL)

    def test_coverage_fractions_bounded(self, result):
        for series in result.coverage_by_pattern.values():
            assert all(0.0 <= value <= 1.0 for value in series)
            assert list(series) == sorted(series)

    def test_observation_3_random_wins_but_incomplete(self, result):
        """Observation 3: random discovers the most failures but not all."""
        best = result.best_pattern()
        assert best.startswith("random")
        assert result.final_coverage(best) < 1.0

    def test_no_single_pattern_reaches_total(self, result):
        assert all(result.final_coverage(k) < 1.0 for k in result.pattern_keys)

    def test_total_failures_positive(self, result):
        assert result.total_failures > 0


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        # A dense linear grid so small-sigma cells accumulate the three
        # informative probit points the fit-quality filter requires.
        return fig6_cell_failure_cdfs(
            geometry=SMALL, reads_per_interval=12,
            intervals_s=tuple(np.linspace(0.2, 2.4, 34)),
        )

    def test_cells_fitted(self, result):
        assert result.cells_fitted > 10

    def test_sigma_lognormal_fit_exists(self, result):
        assert result.sigma_fit is not None
        assert result.sigma_fit.median > 0.0

    def test_majority_sigma_below_200ms(self, result):
        """Figure 6b at 40 degC: most cells have sigma < 200 ms."""
        assert result.fraction_sigma_below_200ms > 0.5

    def test_fitted_mus_in_tested_range(self, result):
        assert np.all(result.mus_s > 0.0)
        assert np.all(result.mus_s < 3.5)


class TestFig7:
    def test_distributions_shift_left_with_temperature(self):
        rows = fig7_parameter_distributions(geometry=SMALL)
        mu_medians = [r.mu_median_s for r in rows]
        sigma_medians = [r.sigma_median_s for r in rows]
        assert mu_medians == sorted(mu_medians, reverse=True)
        assert sigma_medians == sorted(sigma_medians, reverse=True)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8_combined_distribution(geometry=SMALL)

    def test_probability_monotone_in_interval(self, result):
        for i in range(len(result.temperatures_c)):
            series = result.mean_probability[i]
            assert np.all(np.diff(series) >= -1e-9)

    def test_probability_monotone_in_temperature(self, result):
        mid = len(result.intervals_s) // 2
        column = result.mean_probability[:, mid]
        assert np.all(np.diff(column) >= -1e-9)

    def test_temperature_interval_equivalence(self, result):
        """Figure 8: at ~45 degC, ~1 s of interval ~ ~10 degC of temperature."""
        t45 = result.interval_for_probability(45.0, 0.5)
        t55 = result.interval_for_probability(55.0, 0.5)
        assert 0.4 < (t45 - t55) < 1.6
