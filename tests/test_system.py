"""Unit tests for the multi-core system performance model."""

import pytest

from repro.errors import ConfigurationError
from repro.sysperf.dramtiming import DRAMTimings
from repro.sysperf.system import SystemConfig, SystemSimulator
from repro.sysperf.workloads import benchmark_by_name, workload_mixes


def heavy_mix():
    return tuple(benchmark_by_name(n) for n in ("mcf_like", "lbm_like", "milc_like", "soplex_like"))


def light_mix():
    return tuple(benchmark_by_name(n) for n in ("povray_like", "gamess_like", "namd_like", "calculix_like"))


@pytest.fixture(scope="module")
def system64():
    return SystemSimulator(timings=DRAMTimings(density_gigabits=64))


class TestMixSimulation:
    def test_weighted_speedup_bounded_by_core_count(self, system64):
        result = system64.simulate_mix(heavy_mix(), 0.064)
        assert 0.0 < result.weighted_speedup <= 4.0

    def test_sharing_hurts_vs_alone(self, system64):
        result = system64.simulate_mix(heavy_mix(), 0.064)
        for shared, alone in zip(result.ipcs, result.alone_ipcs):
            assert shared <= alone * 1.01

    def test_empty_mix_rejected(self, system64):
        with pytest.raises(ConfigurationError):
            system64.simulate_mix((), 0.064)

    def test_heavy_mix_higher_utilization(self, system64):
        heavy = system64.simulate_mix(heavy_mix(), 0.064)
        light = system64.simulate_mix(light_mix(), 0.064)
        assert heavy.channel_utilization > light.channel_utilization

    def test_request_rate_recorded(self, system64):
        result = system64.simulate_mix(heavy_mix(), 0.064)
        assert result.request_rate_per_ns > 0.0


class TestRefreshSensitivity:
    def test_longer_interval_improves_speedup(self, system64):
        base = system64.simulate_mix(heavy_mix(), 0.064).weighted_speedup
        relaxed = system64.simulate_mix(heavy_mix(), 0.512).weighted_speedup
        assert relaxed > base

    def test_no_refresh_is_upper_bound(self, system64):
        relaxed = system64.simulate_mix(heavy_mix(), 1.024).weighted_speedup
        unbounded = system64.simulate_mix(heavy_mix(), None).weighted_speedup
        assert unbounded >= relaxed * 0.999

    def test_speedup_over_default_positive_for_heavy_mix(self, system64):
        assert system64.speedup_over_default(heavy_mix(), 0.512) > 0.05

    def test_light_mix_gains_less_than_heavy(self, system64):
        light_gain = system64.speedup_over_default(light_mix(), 0.512)
        heavy_gain = system64.speedup_over_default(heavy_mix(), 0.512)
        assert light_gain < heavy_gain
        assert light_gain < 0.08

    def test_gains_grow_with_density(self):
        small = SystemSimulator(timings=DRAMTimings(density_gigabits=8))
        large = SystemSimulator(timings=DRAMTimings(density_gigabits=64))
        mix = heavy_mix()
        assert large.speedup_over_default(mix, None) > small.speedup_over_default(mix, None)

    def test_paper_scale_no_refresh_gain(self):
        """Figure 13: ~19-20% average ideal gain for 64 Gb at no-refresh."""
        system = SystemSimulator(timings=DRAMTimings(density_gigabits=64))
        mixes = workload_mixes(10)
        gains = [system.speedup_over_default(mix, None) for mix in mixes]
        mean_gain = sum(gains) / len(gains)
        assert 0.10 < mean_gain < 0.35


class TestConfig:
    def test_invalid_core_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(cores=0)

    def test_defaults_match_table2(self):
        config = SystemConfig()
        assert config.cores == 4
        assert config.channels == 4
        assert config.clock_ghz == 4.0
        assert config.mshrs_per_core == 8
