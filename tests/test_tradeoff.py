"""Unit tests for the tradeoff-space explorer (Figures 9 and 10)."""

import numpy as np
import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core.tradeoff import TradeoffExplorer
from repro.errors import ConfigurationError

from conftest import TINY_GEOMETRY, TEST_SEED


@pytest.fixture(scope="module")
def surface():
    from repro.dram.chip import SimulatedDRAMChip

    def factory():
        return SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED, max_trefi_s=2.0)

    explorer = TradeoffExplorer(device_factory=factory, iterations=8)
    return explorer.explore(
        Conditions(trefi=0.768, temperature=45.0),
        delta_trefis=[0.0, 0.25, 0.5],
        delta_temperatures=[0.0, 5.0],
    )


class TestSurfaceStructure:
    def test_all_deltas_present(self, surface):
        for d_trefi in (0.0, 0.25, 0.5):
            for d_temp in (0.0, 5.0):
                cell = surface.cell(ReachDelta(d_trefi, d_temp))
                assert cell.samples >= 1

    def test_origin_is_identity(self, surface):
        origin = surface.cell(ReachDelta())
        assert origin.coverage_mean == pytest.approx(1.0)
        assert origin.fpr_mean == pytest.approx(0.0)
        assert origin.runtime_norm_mean == pytest.approx(1.0)

    def test_unknown_delta_rejected(self, surface):
        with pytest.raises(ConfigurationError):
            surface.cell(ReachDelta(delta_trefi=0.33))

    def test_grid_shapes(self, surface):
        for metric in ("coverage", "fpr", "runtime"):
            grid = surface.grid(metric)
            assert grid.shape == (2, 3)
            assert not np.isnan(grid).any()

    def test_unknown_metric_rejected(self, surface):
        with pytest.raises(ConfigurationError):
            surface.grid("happiness")


class TestPaperTrends:
    def test_coverage_high_at_positive_reach(self, surface):
        """Figure 9 top: reach conditions give near-total coverage."""
        reach = surface.cell(ReachDelta(delta_trefi=0.25))
        assert reach.coverage_mean > 0.95

    def test_fpr_grows_with_reach(self, surface):
        """Figure 9 bottom: more aggressive reach -> more false positives."""
        mild = surface.cell(ReachDelta(delta_trefi=0.25))
        harsh = surface.cell(ReachDelta(delta_trefi=0.5, delta_temperature=5.0))
        assert harsh.fpr_mean > mild.fpr_mean

    def test_runtime_drops_with_reach(self, surface):
        """Figure 10: reach profiling needs less runtime for the same coverage."""
        origin = surface.cell(ReachDelta())
        reach = surface.cell(ReachDelta(delta_trefi=0.25))
        assert reach.runtime_norm_mean < origin.runtime_norm_mean

    def test_temperature_axis_also_gives_coverage(self, surface):
        hot = surface.cell(ReachDelta(delta_temperature=5.0))
        assert hot.coverage_mean > 0.9

    def test_best_reach_respects_constraints(self, surface):
        best = surface.best_reach(min_coverage=0.95, max_fpr=0.9)
        assert best is not None
        assert best.coverage_mean >= 0.95
        assert best.fpr_mean <= 0.9

    def test_best_reach_none_when_impossible(self, surface):
        assert surface.best_reach(min_coverage=1.01, max_fpr=0.0) is None


class TestValidation:
    def test_grid_must_start_at_zero(self, chip_factory):
        explorer = TradeoffExplorer(device_factory=chip_factory, iterations=2)
        with pytest.raises(ConfigurationError):
            explorer.explore(Conditions(trefi=0.5), delta_trefis=[0.1, 0.2])

    def test_non_uniform_grid_rejected(self, chip_factory):
        """Regression test: a non-uniform grid used to be accepted and
        silently snapped pairwise deltas into the wrong bucket."""
        explorer = TradeoffExplorer(device_factory=chip_factory, iterations=2)
        with pytest.raises(ConfigurationError):
            explorer.explore(Conditions(trefi=0.5), delta_trefis=[0.0, 0.25, 1.0])
        with pytest.raises(ConfigurationError):
            explorer.explore(
                Conditions(trefi=0.5),
                delta_trefis=[0.0, 0.25],
                delta_temperatures=[0.0, 5.0, 7.0],
            )

    def test_duplicate_grid_values_rejected(self, chip_factory):
        explorer = TradeoffExplorer(device_factory=chip_factory, iterations=2)
        with pytest.raises(ConfigurationError):
            explorer.explore(Conditions(trefi=0.5), delta_trefis=[0.0, 0.25, 0.25])

    def test_bad_coverage_target_rejected(self, chip_factory):
        with pytest.raises(ConfigurationError):
            TradeoffExplorer(device_factory=chip_factory, coverage_target=0.0)


class TestDeviceReuse:
    def test_reused_device_matches_fresh_devices(self):
        """One reset() chip across the grid equals a fresh chip per point."""
        from repro.dram.chip import SimulatedDRAMChip

        class CountingFactory:
            def __init__(self):
                self.calls = 0

            def __call__(self):
                self.calls += 1
                return SimulatedDRAMChip(
                    geometry=TINY_GEOMETRY, seed=TEST_SEED, max_trefi_s=2.0
                )

        class NoResetChip:
            """Hides reset() so the explorer falls back to reconstruction."""

            def __init__(self, chip):
                self._chip = chip

            def __getattr__(self, name):
                if name == "reset":
                    raise AttributeError(name)
                return getattr(self._chip, name)

        reused_factory = CountingFactory()
        fresh_factory = CountingFactory()
        explorer_kwargs = dict(iterations=2)
        base = Conditions(trefi=0.768, temperature=45.0)
        grids = dict(delta_trefis=[0.0, 0.25], delta_temperatures=[0.0, 5.0])

        reused = TradeoffExplorer(device_factory=reused_factory, **explorer_kwargs).explore(
            base, **grids
        )
        fresh = TradeoffExplorer(
            device_factory=lambda: NoResetChip(fresh_factory()), **explorer_kwargs
        ).explore(base, **grids)

        assert reused_factory.calls == 1
        assert fresh_factory.calls == 4
        assert reused.cells == fresh.cells
