"""Exporters and the offline run-dir analyzer (``python -m repro obs``).

Covers the consumer half of the telemetry pipeline:

* OpenMetrics/Prometheus text exposition -- types, cumulative buckets,
  name/label sanitization, determinism, and a grammar check;
* Chrome trace-event JSON -- span slices, instants, per-unit lanes,
  timestamp rebasing, ``json`` round-trip;
* durable ``metrics.json`` write/load (atomic, corruption-rejecting);
* the analyzer -- loading partial/resumed run dirs, latency stats,
  failure breakdown, summaries, comparison, and exports;
* the CLI -- summary/compare/export on a real run directory produced via
  checkpoint/resume with metrics enabled.
"""

import json
import re

import pytest

from repro import obs
from repro.__main__ import main
from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    load_metrics_json,
    to_chrome_trace,
    to_openmetrics,
    write_metrics_json,
)
from repro.obs import analyze

from conftest import TINY_GEOMETRY

CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))

#: One Prometheus text-format sample line: name{labels} value
_PROM_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" -?([0-9.e+\-]+|NaN|\+Inf|-Inf)$"
)


def check_promtext(text: str) -> int:
    """Tiny exposition-format lint: every line is a comment or a sample,
    and the document ends with the OpenMetrics EOF marker.  Returns the
    number of sample lines."""
    lines = text.splitlines()
    assert lines and lines[-1] == "# EOF"
    samples = 0
    for line in lines[:-1]:
        if line.startswith("#"):
            assert re.match(r"^# (TYPE|HELP|UNIT) ", line), line
            continue
        assert _PROM_SAMPLE.match(line), f"bad sample line: {line!r}"
        samples += 1
    return samples


def sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("chip.commands", command="write_pattern").inc(7)
    reg.counter("chip.commands", command="wait").inc(3)
    reg.gauge("runner.queue_depth").set(2)
    for value in (0.0002, 0.04, 0.04, 7.0):
        reg.histogram("unit.seconds", status="ok").observe(value)
    return reg.snapshot()


class TestOpenMetrics:
    def test_exposition_grammar_and_types(self):
        text = to_openmetrics(sample_snapshot())
        assert check_promtext(text) > 0
        assert "# TYPE chip_commands counter" in text
        assert "# TYPE runner_queue_depth gauge" in text
        assert "# TYPE unit_seconds histogram" in text
        assert 'chip_commands_total{command="write_pattern"} 7' in text
        assert "runner_queue_depth 2" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_openmetrics(sample_snapshot())
        buckets = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("unit_seconds_bucket")
        ]
        assert buckets == sorted(buckets)  # monotone nondecreasing
        assert buckets[-1] == 4  # +Inf bucket equals the count
        assert 'unit_seconds_bucket{status="ok",le="+Inf"} 4' in text
        assert 'unit_seconds_count{status="ok"} 4' in text
        assert 'unit_seconds_sum{status="ok"} ' in text

    def test_type_line_emitted_once_per_name(self):
        text = to_openmetrics(sample_snapshot())
        assert text.count("# TYPE chip_commands counter") == 1

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c", note='say "hi"\nback\\slash').inc()
        text = to_openmetrics(reg.snapshot())
        assert check_promtext(text) == 1
        assert '\\"hi\\"' in text and "\\n" in text and "\\\\slash" in text

    def test_deterministic_output(self):
        assert to_openmetrics(sample_snapshot()) == to_openmetrics(sample_snapshot())

    def test_unknown_kind_refused(self):
        with pytest.raises(ConfigurationError, match="unknown metric kind"):
            to_openmetrics([{"kind": "summary", "name": "x", "labels": {}}])


class TestChromeTrace:
    EVENTS = [
        {"event": "runner.start", "ts": 100.0, "seq": 0, "backend": "serial"},
        {
            "event": "span",
            "name": "profiler.run",
            "ts": 103.0,
            "elapsed_s": 2.5,
            "seq": 1,
            "unit_id": "u-0",
            "chip_id": 4,
        },
        {"event": "runner.unit", "ts": 103.1, "seq": 2, "unit_id": "u-0"},
    ]

    def test_spans_become_complete_slices(self):
        trace = to_chrome_trace(self.EVENTS)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        (span,) = slices
        assert span["name"] == "profiler.run"
        assert span["dur"] == pytest.approx(2.5e6)
        # Starts at ts - elapsed_s = 100.5, rebased against min start 100.0.
        assert span["ts"] == pytest.approx(0.5e6)
        assert span["args"]["chip_id"] == 4
        assert "seq" not in span["args"] and "ts" not in span["args"]

    def test_lanes_per_unit_with_metadata(self):
        trace = to_chrome_trace(self.EVENTS)
        meta = {
            e["args"]["name"]: e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert set(meta) == {"run", "u-0"}
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        by_name = {e["name"]: e for e in instants}
        assert by_name["runner.start"]["tid"] == meta["run"]
        assert by_name["runner.unit"]["tid"] == meta["u-0"]

    def test_earliest_start_rebased_to_zero(self):
        trace = to_chrome_trace(self.EVENTS)
        starts = [e["ts"] for e in trace["traceEvents"] if e["ph"] != "M"]
        assert min(starts) == pytest.approx(0.0)

    def test_json_roundtrip_and_empty_input(self):
        trace = json.loads(json.dumps(to_chrome_trace(self.EVENTS)))
        assert trace["displayTimeUnit"] == "ms"
        assert to_chrome_trace([]) == {"traceEvents": [], "displayTimeUnit": "ms"}


class TestMetricsJson:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "metrics.json"
        snapshot = sample_snapshot()
        write_metrics_json(snapshot, path, meta={"backend": "serial"})
        payload = load_metrics_json(path)
        assert payload["series"] == snapshot
        assert payload["meta"] == {"backend": "serial"}
        assert payload["schema"] == 1
        assert not path.with_name("metrics.json.tmp").exists()

    def test_load_rejects_corruption(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_metrics_json(path)
        path.write_text('{"no_series": true}', encoding="utf-8")
        with pytest.raises(ConfigurationError, match="metrics snapshot"):
            load_metrics_json(path)
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_metrics_json(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# Analyzer on synthetic run directories
# ----------------------------------------------------------------------
def make_run_dir(tmp_path, name="run", results=(), events=None, metrics=None,
                 manifest=None):
    run_dir = tmp_path / name
    run_dir.mkdir(parents=True, exist_ok=True)
    with (run_dir / analyze.RESULTS_NAME).open("w", encoding="utf-8") as handle:
        for row in results:
            handle.write(json.dumps(row) + "\n")
    if events is not None:
        with (run_dir / analyze.EVENTS_NAME).open("w", encoding="utf-8") as handle:
            for row in events:
                handle.write(json.dumps(row) + "\n")
    if metrics is not None:
        write_metrics_json(metrics, run_dir / analyze.METRICS_NAME)
    if manifest is not None:
        (run_dir / analyze.MANIFEST_NAME).write_text(
            json.dumps(manifest), encoding="utf-8"
        )
    return run_dir


RESULT_ROWS = [
    {"unit_id": "u-0", "status": "ok", "elapsed_s": 0.1, "attempts": 1},
    {"unit_id": "u-1", "status": "failed", "elapsed_s": 0.4, "attempts": 2,
     "error": {"type": "ValueError"}},
    {"unit_id": "u-2", "status": "failed", "elapsed_s": 0.2, "attempts": 2,
     "error": {"type": "KeyError"}},
    # Resume re-records u-1; the later row wins.
    {"unit_id": "u-1", "status": "ok", "elapsed_s": 0.3, "attempts": 1},
]

EVENT_ROWS = [
    {"event": "runner.start", "ts": 10.0, "seq": 0},
    {"event": "profiler.iteration", "ts": 10.2, "seq": 1, "chip_id": 0,
     "new_cells": 5},
    {"event": "profiler.iteration", "ts": 10.6, "seq": 2, "chip_id": 0,
     "new_cells": 2},
    {"event": "span", "name": "profiler.run", "ts": 10.9, "elapsed_s": 0.7,
     "seq": 3, "unit_id": "u-0"},
    {"event": "runner.unit", "ts": 11.0, "seq": 4, "unit_id": "u-0"},
    {"event": "runner.unit", "ts": 12.0, "seq": 5, "unit_id": "u-1"},
    {"event": "runner.unit", "ts": 13.0, "seq": 6, "unit_id": "u-2"},
]


class TestAnalyzer:
    def test_load_requires_results(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ConfigurationError, match="not a run directory"):
            analyze.load_run(tmp_path / "empty")

    def test_later_rows_win_and_rerecords_counted(self, tmp_path):
        run = analyze.load_run(make_run_dir(tmp_path, results=RESULT_ROWS))
        assert len(run.result_rows) == 4
        assert len(run.results) == 3
        assert run.results["u-1"]["status"] == "ok"
        # u-1 recovered on resume; only u-2 is still failed.
        assert analyze.failure_breakdown(run) == {"KeyError": ["u-2"]}

    def test_torn_lines_skipped_and_reported(self, tmp_path):
        run_dir = make_run_dir(tmp_path, results=RESULT_ROWS)
        with (run_dir / analyze.RESULTS_NAME).open("a", encoding="utf-8") as handle:
            handle.write('{"unit_id": "u-9", "status"')  # torn tail
        run = analyze.load_run(run_dir)
        assert run.skipped_lines == 1
        assert "u-9" not in run.results
        assert "skipped 1 unparseable" in analyze.summarize_run(run)

    def test_percentile_exact_interpolation(self):
        assert analyze.percentile([], 0.5) is None
        assert analyze.percentile([3.0], 0.95) == 3.0
        assert analyze.percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert analyze.percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0

    def test_latency_throughput_timeline_views(self, tmp_path):
        run = analyze.load_run(
            make_run_dir(tmp_path, results=RESULT_ROWS, events=EVENT_ROWS)
        )
        stats = analyze.unit_latency_stats(run)
        assert stats["count"] == 3
        assert stats["mean"] == pytest.approx((0.1 + 0.3 + 0.2) / 3)
        assert stats["max"] == pytest.approx(0.3)
        # 3 runner.unit events over ts 11..13 -> 1 unit/s.
        assert analyze.throughput_units_per_s(run) == pytest.approx(1.0)
        (timeline,) = analyze.chip_timelines(run)
        assert timeline["chip_id"] == 0
        assert timeline["iterations"] == 2
        assert timeline["new_cells"] == 7
        (slowest,) = analyze.slowest_spans(run, top=1)
        assert slowest["name"] == "profiler.run"

    def test_summary_text(self, tmp_path):
        run = analyze.load_run(
            make_run_dir(
                tmp_path,
                results=RESULT_ROWS,
                events=EVENT_ROWS,
                metrics=sample_snapshot(),
                manifest={"fingerprint": "a" * 32, "kind": "campaign",
                          "n_units": 3},
            )
        )
        text = analyze.summarize_run(run)
        assert "3 recorded | 2 ok | 1 failed" in text
        assert "1 re-recorded across resumes" in text
        assert "unit latency" in text and "p95" in text
        assert "KeyError: 1 units (u-2)" in text
        assert "chip timeline (1 chips)" in text
        assert "series in metrics.json" in text

    def test_summary_without_telemetry_files(self, tmp_path):
        run = analyze.load_run(make_run_dir(tmp_path, results=RESULT_ROWS))
        text = analyze.summarize_run(run)
        assert "no metrics.json" in text

    def test_compare_runs(self, tmp_path):
        manifest = {"fingerprint": "a" * 32}
        run_a = analyze.load_run(
            make_run_dir(tmp_path, "a", results=RESULT_ROWS, events=EVENT_ROWS,
                         metrics=sample_snapshot(), manifest=manifest)
        )
        run_b = analyze.load_run(
            make_run_dir(tmp_path, "b", results=RESULT_ROWS, events=EVENT_ROWS,
                         metrics=sample_snapshot(), manifest=manifest)
        )
        text = analyze.compare_runs(run_a, run_b)
        assert "campaign fingerprints: identical" in text
        assert "chip.commands: 10 -> 10 (+0.0%)" in text
        run_c = analyze.load_run(
            make_run_dir(tmp_path, "c", results=RESULT_ROWS,
                         manifest={"fingerprint": "b" * 32})
        )
        assert "DIFFERENT" in analyze.compare_runs(run_a, run_c)

    def test_export_run_errors_guide_the_user(self, tmp_path):
        run = analyze.load_run(make_run_dir(tmp_path, results=RESULT_ROWS))
        with pytest.raises(ConfigurationError, match="--metrics"):
            analyze.export_run(run, "prometheus")
        with pytest.raises(ConfigurationError, match="--metrics"):
            analyze.export_run(run, "chrome-trace")
        with pytest.raises(ConfigurationError, match="unknown export format"):
            analyze.export_run(run, "csv")
        # HTML degrades gracefully without telemetry files.
        name, content = analyze.export_run(run, "html")
        assert name == "summary.html"
        assert "No metrics.json recorded" in content


# ----------------------------------------------------------------------
# CLI on a real checkpoint/resume run directory
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def resumed_run_dir(tmp_path_factory):
    """A run dir produced with --metrics, interrupted and resumed."""
    run_dir = tmp_path_factory.mktemp("obs-cli") / "run"
    campaign = CharacterizationCampaign(
        chips_per_vendor=1, geometry=TINY_GEOMETRY, iterations=1, seed=42
    )
    obs.disable()
    obs.reset()
    obs.enable()
    try:
        campaign.run(run_dir=str(run_dir), **CAMPAIGN_KW)
        # Resume: everything is satisfied, but the engine still appends a
        # fresh runner.start/finish pair and re-stamps metrics.json.
        campaign.run(run_dir=str(run_dir), resume=True, **CAMPAIGN_KW)
    finally:
        obs.disable()
        obs.reset()
    return run_dir


class TestObsCli:
    def test_event_log_spans_the_resume(self, resumed_run_dir):
        rows = [
            json.loads(line)
            for line in (resumed_run_dir / analyze.EVENTS_NAME)
            .read_text()
            .splitlines()
        ]
        starts = [r for r in rows if r["event"] == "runner.start"]
        assert len(starts) == 2
        assert starts[1]["skipped"] == 3  # second attach resumed everything
        seqs = [r["seq"] for r in rows]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_summary(self, resumed_run_dir, capsys):
        assert main(["obs", str(resumed_run_dir)]) == 0
        out = capsys.readouterr().out
        assert "run summary" in out
        assert "3 recorded | 3 ok" in out
        assert "series in metrics.json" in out

    def test_export_prometheus(self, resumed_run_dir, capsys):
        assert main(["obs", str(resumed_run_dir), "--export", "prometheus"]) == 0
        out_path = resumed_run_dir / "metrics.prom"
        assert str(out_path) in capsys.readouterr().out
        text = out_path.read_text(encoding="utf-8")
        assert check_promtext(text) > 0
        assert "chip_commands_total" in text

    def test_export_chrome_trace(self, resumed_run_dir, capsys):
        assert main(["obs", str(resumed_run_dir), "--export", "chrome-trace"]) == 0
        capsys.readouterr()
        trace = json.loads(
            (resumed_run_dir / "trace.json").read_text(encoding="utf-8")
        )
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "runner.run" in names  # the engine's top-level span
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_export_html_to_custom_path(self, resumed_run_dir, tmp_path, capsys):
        out = tmp_path / "report" / "summary.html"
        assert main(
            ["obs", str(resumed_run_dir), "--export", "html", "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert "<h1>Run summary</h1>" in out.read_text(encoding="utf-8")

    def test_compare(self, resumed_run_dir, capsys):
        assert main(
            ["obs", "--compare", str(resumed_run_dir), str(resumed_run_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "run comparison" in out
        assert "campaign fingerprints: identical" in out

    def test_no_run_dir_is_a_usage_error(self, capsys):
        assert main(["obs"]) == 2
        assert "pass a run directory" in capsys.readouterr().err
