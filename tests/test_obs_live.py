"""The live observability plane, trace correlation, and ``repro top``.

Covers the online half of :mod:`repro.obs` end to end:

* :class:`~repro.obs.context.TraceContext` propagation -- ids on span
  events, engine self-rooting, worker adoption, one correlated tree per
  run -- plus the nested ``capture``/``enable`` sink-restore regression;
* exporter/analyzer edges: chrome-trace worker lanes, metrics.json
  schema refusal, empty run dirs, torn-tail-only event logs, and
  ``--compare`` across disjoint metric sets;
* :class:`~repro.obs.live.LivePlane` unit behavior (rings, EWMA,
  completed-fold monotonicity, OpenMetrics rendering);
* the dashboard's exposition parser and pure frame renderer;
* the full service integration: ``GET /metrics`` mid-run passes the
  exposition grammar with queue-depth / request-latency / kernel-phase
  series, extended healthz, per-job live metrics, trace ids from the
  HTTP submission landing in the run dir's events, and campaign
  summaries staying byte-identical with the live plane mounted.
"""

import json
import time

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs import ListEventSink, Observability, TraceContext
from repro.obs.analyze import compare_runs, load_run
from repro.obs.export import to_chrome_trace, write_metrics_json
from repro.obs.live import LivePlane, SeriesRing
from repro.obs.top import parse_openmetrics, render_frame
from repro.runner import RunnerEngine, WorkUnit
from repro.service import ServiceClient, ServiceConfig, ServiceThread

MANIFEST = {"fingerprint": "f" * 32}


def run_checker(text: str, tmp_path) -> None:
    """Validate an exposition body with the repo's promtext checker."""
    import subprocess
    import sys

    path = tmp_path / "metrics.txt"
    path.write_text(text, encoding="utf-8")
    proc = subprocess.run(
        [sys.executable, "scripts/check_promtext.py", str(path)],
        capture_output=True,
        text=True,
        cwd=None,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


# ----------------------------------------------------------------------
# TraceContext + tracer ids
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_new_ids_are_well_formed_and_distinct(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert len(a.trace_id) == 32 and int(a.trace_id, 16) >= 0
        assert a.trace_id != b.trace_id

    def test_json_roundtrip(self):
        ctx = TraceContext.new().child("a" * 16)
        assert TraceContext.from_json_dict(ctx.to_json_dict()) == ctx

    def test_malformed_wire_forms_return_none(self):
        assert TraceContext.from_json_dict(None) is None
        assert TraceContext.from_json_dict({}) is None
        assert TraceContext.from_json_dict({"trace_id": 42}) is None

    def test_span_events_carry_ids_only_when_context_set(self):
        layer = Observability(sink=ListEventSink())
        with layer.span("bare"):
            pass
        layer.tracer.context = TraceContext.new()
        with layer.span("traced") as handle:
            pass
        bare, traced = layer.sink.events
        assert "trace_id" not in bare and "span_id" not in bare
        assert traced["trace_id"] == layer.tracer.context.trace_id
        assert traced["span_id"] == handle.span_id

    def test_nested_spans_parent_to_enclosing_span(self):
        layer = Observability(sink=ListEventSink())
        layer.tracer.context = TraceContext.new()
        with layer.span("outer") as outer:
            with layer.span("inner"):
                pass
        inner_event, outer_event = layer.sink.events  # inner closes first
        assert inner_event["parent_id"] == outer.span_id
        assert inner_event["trace_id"] == outer_event["trace_id"]

    def test_engine_self_roots_and_correlates_one_tree(self):
        layer = Observability(sink=ListEventSink())
        engine = RunnerEngine(observability=layer)
        units = tuple(WorkUnit(f"u-{i}", "toy", {"i": i}) for i in range(2))
        engine.run(lambda payload: payload, units, MANIFEST)
        spans = [e for e in layer.sink.events if e["event"] == "span"]
        trace_ids = {e["trace_id"] for e in spans}
        assert len(trace_ids) == 1  # one tree per run
        assert layer.tracer.context is None  # self-rooted context removed
        run_span = next(e for e in spans if e["name"] == "runner.run")
        unit_spans = [e for e in spans if e["name"] == "unit.execute"]
        assert len(unit_spans) == 2
        assert all(e["parent_id"] == run_span["span_id"] for e in unit_spans)

    def test_preseeded_context_survives_the_run(self):
        layer = Observability(sink=ListEventSink())
        layer.tracer.context = TraceContext(trace_id="ab" * 16)
        engine = RunnerEngine(observability=layer)
        engine.run(lambda payload: payload, (WorkUnit("u-0", "toy", {}),), MANIFEST)
        spans = [e for e in layer.sink.events if e["event"] == "span"]
        assert {e["trace_id"] for e in spans} == {"ab" * 16}
        assert layer.tracer.context is not None  # caller's context kept


# ----------------------------------------------------------------------
# capture() nested-enable regression
# ----------------------------------------------------------------------
class TestCaptureNestedEnable:
    def test_nested_enable_restores_buffered_sink(self, tmp_path):
        """``obs.enable(events_path=...)`` inside ``capture`` used to clobber
        the capture layer's buffer with a JSONL sink, breaking the
        telemetry shipment's ``layer.sink.events`` read."""
        with obs.capture() as layer:
            obs.enable(events_path=tmp_path / "events.jsonl")
            obs.emit("inner.note", i=1)
        # The shipment read still works: the buffer saw the event ...
        assert [e["event"] for e in layer.sink.events] == ["inner.note"]
        # ... and so did the nested file sink (teed, then closed on exit).
        logged = (tmp_path / "events.jsonl").read_text().splitlines()
        assert json.loads(logged[0])["event"] == "inner.note"
        assert not obs.enabled()
        assert layer.sink is not obs.get().sink


# ----------------------------------------------------------------------
# Exporter / analyzer edges
# ----------------------------------------------------------------------
class TestChromeTraceLanes:
    def test_worker_rows_get_synthetic_pid_lanes(self):
        events = [
            {"event": "span", "name": "runner.run", "ts": 10.0, "elapsed_s": 5.0},
            {
                "event": "span",
                "name": "unit.execute",
                "ts": 9.0,
                "elapsed_s": 2.0,
                "unit_id": "u-0",
                "worker_pid": 4242,
                "trace_id": "ab" * 16,
                "span_id": "cd" * 8,
            },
        ]
        trace = to_chrome_trace(events)
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["runner.run"]["pid"] == 1
        assert by_name["unit.execute"]["pid"] == 2
        assert by_name["unit.execute"]["args"]["trace_id"] == "ab" * 16
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "worker 4242") in names

    def test_parent_only_trace_has_single_pid(self):
        trace = to_chrome_trace(
            [{"event": "span", "name": "s", "ts": 1.0, "elapsed_s": 0.5}]
        )
        assert {e["pid"] for e in trace["traceEvents"]} == {1}


class TestAnalyzerEdges:
    def test_empty_run_dir_refused_with_guidance(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a run directory"):
            load_run(tmp_path)

    def test_metrics_schema_mismatch_refused_with_guidance(self, tmp_path):
        path = tmp_path / "metrics.json"
        path.write_text(
            json.dumps({"schema": 999, "meta": {}, "series": []}), encoding="utf-8"
        )
        with pytest.raises(ConfigurationError, match="schema 999"):
            obs.load_metrics_json(path)

    def test_written_metrics_json_reads_back(self, tmp_path):
        path = write_metrics_json([], tmp_path / "metrics.json")
        assert obs.load_metrics_json(path)["series"] == []

    def _run_dir(self, tmp_path, name, counters):
        run_dir = tmp_path / name
        run_dir.mkdir()
        (run_dir / "results.jsonl").write_text(
            json.dumps({"unit_id": "u-0", "status": "ok", "elapsed_s": 0.5}) + "\n",
            encoding="utf-8",
        )
        series = [
            {"kind": "counter", "name": n, "labels": {}, "value": v}
            for n, v in counters.items()
        ]
        write_metrics_json(series, run_dir / "metrics.json")
        return run_dir

    def test_events_with_only_torn_tails(self, tmp_path):
        run_dir = self._run_dir(tmp_path, "torn", {})
        (run_dir / "events.jsonl").write_text(
            '{"event": "runner.sta\n{"truncat', encoding="utf-8"
        )
        run = load_run(run_dir)
        assert run.events == []
        assert run.skipped_lines == 2

    def test_compare_across_disjoint_metric_sets(self, tmp_path):
        run_a = load_run(self._run_dir(tmp_path, "a", {"only.in.a": 1.0}))
        run_b = load_run(self._run_dir(tmp_path, "b", {"only.in.b": 2.0}))
        report = compare_runs(run_a, run_b)
        assert "only.in.a" in report and "only.in.b" in report


# ----------------------------------------------------------------------
# LivePlane units
# ----------------------------------------------------------------------
class TestSeriesRing:
    def test_bounded_eviction(self):
        ring = SeriesRing(maxlen=3)
        for i in range(5):
            ring.push(float(i), float(i * 10))
        assert ring.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert ring.last() == (4.0, 40.0)
        assert len(ring) == 3


class TestLivePlane:
    def test_request_feed_renders_as_openmetrics(self, tmp_path):
        plane = LivePlane()
        plane.note_request("GET", "/v1/jobs", 200, 0.01)
        plane.note_request("GET", "/v1/jobs", 200, 0.02)
        text = plane.render_openmetrics()
        assert 'service_requests_total{method="GET",route="/v1/jobs",status="200"} 2' in text
        assert "service_request_seconds_count" in text
        run_checker(text, tmp_path)

    def test_service_gauges_feed_rings(self):
        clock = iter([100.0, 101.0]).__next__
        plane = LivePlane(clock=clock)
        plane.set_service_gauges(queue_depth=3)
        plane.set_service_gauges(queue_depth=1)
        assert plane.service_series()["service.queue_depth"] == [
            (100.0, 3.0),
            (101.0, 1.0),
        ]
        assert "service_queue_depth 1" in plane.render_openmetrics()

    def test_unregister_folds_job_counters_monotonically(self):
        plane = LivePlane()
        layer = Observability()
        layer.counter("chip.commands", 5)
        plane.register_job("job-1", "acme", layer)
        assert "chip_commands_total 5" in plane.render_openmetrics()
        plane.unregister_job("job-1")
        # Finished job's series persist in the completed fold.
        assert "chip_commands_total 5" in plane.render_openmetrics()
        assert plane.job_metrics("job-1") is None

    def test_note_unit_rates_and_percentiles(self):
        import itertools

        ticks = itertools.count(0.0, 1.0)
        plane = LivePlane(monotonic=lambda: next(ticks))
        plane.register_job("job-1", "acme", Observability())
        for latency in (0.2, 0.4, 0.6, 0.8):
            plane.note_unit("job-1", latency, "ok")
        plane.note_unit("job-1", 9.9, "failed")
        live = plane.job_metrics("job-1")
        assert live["rates"]["units_completed"] == 5
        assert live["rates"]["units_failed"] == 1
        assert live["rates"]["units_per_s_ewma"] == pytest.approx(1.0)
        assert live["rates"]["unit_p50_s"] == pytest.approx(0.6)
        assert live["rates"]["unit_p99_s"] == pytest.approx(9.9)

    def test_sample_jobs_pushes_ring_points(self):
        plane = LivePlane(clock=lambda: 7.0, monotonic=time.monotonic)
        plane.register_job("job-1", "acme", Observability())
        plane.note_unit("job-1", 0.1, "ok")
        plane.sample_jobs()
        live = plane.job_metrics("job-1")
        assert live["series"]["units_completed"] == [(7.0, 1.0)]


# ----------------------------------------------------------------------
# Dashboard parsing / rendering
# ----------------------------------------------------------------------
class TestTop:
    def test_parse_openmetrics_roundtrip(self):
        plane = LivePlane()
        plane.note_request("GET", "/v1/jobs", 200, 0.01)
        plane.set_service_gauges(queue_depth=2)
        samples = parse_openmetrics(plane.render_openmetrics())
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["service_queue_depth"] == [({}, 2.0)]
        ((labels, value),) = by_name["service_requests_total"]
        assert labels == {"method": "GET", "route": "/v1/jobs", "status": "200"}
        assert value == 1.0

    def test_render_frame_lists_jobs_and_phases(self):
        health = {
            "status": "ok",
            "queued": 1,
            "running": 1,
            "pool": {"workers_busy": 2, "workers_total": 4},
            "shm": {"segments": 1, "bytes": 2048},
            "ledger_lag_s": 0.25,
        }
        jobs = [
            {
                "job_id": "job-000001",
                "tenant": "acme",
                "state": "running",
                "progress": {"completed": 2, "total": 6},
            }
        ]
        live = {
            "job-000001": {
                "rates": {
                    "units_per_s_ewma": 3.5,
                    "unit_p50_s": 0.2,
                    "unit_p99_s": 0.9,
                }
            }
        }
        samples = [
            ("span_kernel_vrt_sum", {}, 0.5),
            ("span_kernel_vrt_count", {}, 10.0),
            ("service_queue_depth", {}, 1.0),
        ]
        frame = render_frame(health, jobs, live, samples)
        assert "acme" in frame and "job-000001" in frame
        assert "2/6" in frame and "3.50" in frame
        assert "vrt" in frame and "10" in frame
        assert "pool 2/4" in frame
        assert "sampled queue depth: 1" in frame

    def test_render_frame_empty_service(self):
        frame = render_frame({"status": "ok"}, [], {}, [])
        assert "(no jobs)" in frame


# ----------------------------------------------------------------------
# Full service integration
# ----------------------------------------------------------------------
FLEET_SPEC = {
    "chips_per_vendor": 2,
    "iterations": 1,
    "chips_per_unit": 2,
    "intervals_s": [0.512],
    "temperatures_c": [45.0],
    "megakernel": True,
}


@pytest.mark.slow
class TestServiceLivePlane:
    def test_live_metrics_trace_and_identity(self, tmp_path):
        root = tmp_path / "service"
        with ServiceThread(
            ServiceConfig(root=root, port=0, pool_workers=2, max_running=1)
        ) as svc:
            client = ServiceClient(svc.host, svc.port)

            health = client.healthz()
            assert health.status == "ok"
            assert health.pool_workers_total == 2
            assert health.shm_segments == 0

            job = client.submit("acme", FLEET_SPEC, trace_id="ab" * 16)
            job_id = job["job_id"]
            assert job["trace_id"] == "ab" * 16

            # Scrape /metrics while the job is in flight.
            mid_flight = None
            live = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                record = client.job(job_id)
                if record["state"] == "running":
                    mid_flight = client.metrics_text()
                    probe = client.job_metrics(job_id)
                    if probe.get("live"):
                        live = probe
                        break
                if record["state"] in ("done", "failed"):
                    break
                time.sleep(0.02)
            record = client.wait(job_id, timeout=120)
            assert record["state"] == "done", record.get("error")

            assert mid_flight is not None, "never observed the job running"
            run_checker(mid_flight, tmp_path)
            assert "service_queue_depth" in mid_flight
            assert "service_request_seconds" in mid_flight
            if live is not None:
                assert live["trace_id"] == "ab" * 16
                assert "units_per_s_ewma" in live["rates"]

            final = client.metrics_text()
            run_checker(final, tmp_path)
            # Kernel-phase histograms from the fleet megakernel reached
            # the plane (live while running, completed-fold after).
            assert "span_kernel_read_compare" in final
            assert "service_shm_segment_bytes" in final
            assert "service_pool_workers_total" in final

            # Finished job: metrics endpoint degrades to a shell.
            done_live = client.job_metrics(job_id)
            assert done_live["live"] is False
            assert done_live["state"] == "done"

            summary = client.result(job_id)
            run_dir = root / "acme" / job_id

        # Trace correlation: every span in the run dir's event log (and
        # its chrome-trace export) carries the submission's trace id.
        events = [
            json.loads(line)
            for line in (run_dir / "events.jsonl").read_text().splitlines()
            if line.strip()
        ]
        spans = [e for e in events if e.get("event") == "span"]
        assert spans and {e.get("trace_id") for e in spans} == {"ab" * 16}
        worker_spans = [e for e in spans if "worker_pid" in e]
        assert worker_spans, "no worker-origin spans recorded"
        trace = to_chrome_trace(events)
        worker_lanes = {
            e["pid"] for e in trace["traceEvents"] if e.get("pid", 1) != 1
        }
        assert worker_lanes, "chrome trace has no worker lane"

        # Byte-identity: the same spec on the serial backend (no pool, no
        # worker telemetry shipping) yields the identical summary JSON
        # even with the live plane mounted on both services.
        second_root = tmp_path / "replay"
        with ServiceThread(
            ServiceConfig(root=second_root, port=0, pool_workers=0, max_running=1)
        ) as svc:
            client = ServiceClient(svc.host, svc.port)
            job2 = client.submit("acme", FLEET_SPEC)
            client.wait(job2["job_id"], timeout=120)
            replay = client.result(job2["job_id"])
        assert json.dumps(replay, sort_keys=True) == json.dumps(
            summary, sort_keys=True
        )

    def test_request_latency_recorded_per_route(self, tmp_path):
        with ServiceThread(
            ServiceConfig(root=tmp_path / "svc", port=0, pool_workers=0)
        ) as svc:
            client = ServiceClient(svc.host, svc.port)
            client.healthz()
            client.jobs()
            with pytest.raises(Exception):
                client.job("job-999999")
            text = client.metrics_text()
        samples = parse_openmetrics(text)
        requests = {
            (labels["route"], labels["status"]): value
            for name, labels, value in samples
            if name == "service_requests_total"
        }
        assert requests[("/v1/healthz", "200")] == 1.0
        assert requests[("/v1/jobs", "200")] == 1.0
        assert requests[("/v1/jobs/{id}", "404")] == 1.0
