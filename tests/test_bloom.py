"""Unit and property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.mitigation.bloom import BloomFilter


class TestBasics:
    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(size_bits=1024, n_hashes=3)
        assert 42 not in bloom
        assert bloom.fill_ratio == 0.0
        assert bloom.expected_fp_rate() == 0.0

    def test_added_items_found(self):
        bloom = BloomFilter(size_bits=1024, n_hashes=3)
        for item in (1, 99, (2, 7), "row-5"):
            bloom.add(item)
            assert item in bloom

    def test_items_added_counter(self):
        bloom = BloomFilter(size_bits=1024, n_hashes=3)
        bloom.add(1)
        bloom.add(1)
        assert bloom.items_added == 2

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            BloomFilter(size_bits=0, n_hashes=3)
        with pytest.raises(ConfigurationError):
            BloomFilter(size_bits=8, n_hashes=0)

    def test_unsupported_item_type_rejected(self):
        bloom = BloomFilter(size_bits=64, n_hashes=2)
        with pytest.raises(ConfigurationError):
            bloom.add(3.14)


class TestSizing:
    def test_for_capacity_hits_fp_target(self):
        bloom = BloomFilter.for_capacity(1000, target_fp_rate=0.01)
        for i in range(1000):
            bloom.add(i)
        false_positives = sum(1 for i in range(1000, 11000) if i in bloom)
        assert false_positives / 10000 < 0.03

    def test_expected_fp_rate_tracks_load(self):
        bloom = BloomFilter.for_capacity(100, target_fp_rate=0.01)
        rates = []
        for i in range(200):
            bloom.add(i)
            rates.append(bloom.expected_fp_rate())
        assert rates == sorted(rates)
        assert rates[-1] > rates[50]

    def test_bad_capacity_params_rejected(self):
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(0)
        with pytest.raises(ConfigurationError):
            BloomFilter.for_capacity(10, target_fp_rate=1.0)


class TestNoFalseNegatives:
    """The safety-critical Bloom property: members are never missed."""

    @given(st.sets(st.integers(min_value=0, max_value=10**9), max_size=200))
    @settings(max_examples=50)
    def test_every_member_found_ints(self, items):
        bloom = BloomFilter(size_bits=512, n_hashes=4)
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)

    @given(
        st.sets(
            st.tuples(st.integers(0, 31), st.integers(0, 10**6)),
            max_size=100,
        )
    )
    @settings(max_examples=50)
    def test_every_member_found_tuples(self, items):
        bloom = BloomFilter(size_bits=512, n_hashes=4)
        for item in items:
            bloom.add(item)
        assert all(item in bloom for item in items)
