"""Scenario tests: multi-component deployment stories run end to end."""

import pytest

from repro.conditions import Conditions, ReachDelta
from repro.core import (
    AccumulationRateEstimator,
    BruteForceProfiler,
    PlannerConstraints,
    REAPER,
    ReachProfiler,
    RelaxedRefreshPlanner,
    coverage,
)
from repro.dram import DRAMModule, SimulatedDRAMChip, characterize_for_spd
from repro.dram.spd import SPDCharacterization
from repro.ecc import SECDED
from repro.ecc.model import tolerable_bit_errors
from repro.mitigation import ArchShield

from conftest import TINY_GEOMETRY, TEST_SEED


class TestFieldDeploymentLoop:
    """SPD plan -> deploy -> measure the VRT rate -> adapt the cadence."""

    def test_measured_rate_refines_the_cadence(self, chip_factory):
        chip = chip_factory(max_trefi_s=2.6)
        target = Conditions(trefi=2.048, temperature=45.0)

        # Plan from SPD (catalogue numbers).  A tiny test chip has an ECC
        # budget of a fraction of a cell, so near-perfect coverage is needed
        # for the plan to have headroom at this aggressive target.
        spd = characterize_for_spd(
            chip, anchor_intervals_s=(0.512, 1.024, 1.536, 2.048)
        )
        planner = RelaxedRefreshPlanner(spd)
        plan = planner.evaluate(
            target,
            ReachDelta(delta_trefi=0.25),
            PlannerConstraints(min_coverage=0.999999),
        )
        assert plan.reprofile_interval_seconds > 0.0

        # Deploy and *measure* the accumulation rate across rounds.
        reaper = REAPER(chip, ArchShield(capacity_bits=chip.capacity_bits), target, iterations=2)
        estimator = AccumulationRateEstimator()
        reaper.profile_and_update()  # base set
        for _ in range(10):
            t0 = chip.clock.now
            chip.wait(4 * 3600.0)
            record = reaper.profile_and_update()
            estimator.observe(chip.clock.now - t0, record.cells_added_to_mitigation)
        estimate = estimator.estimate()
        assert estimate.is_informative

        # The measured rate should land near the SPD's catalogue rate.
        catalogue = spd.accumulation_per_hour(target.trefi)
        assert estimate.confidence_low_per_hour <= catalogue * 2.0
        assert estimate.confidence_high_per_hour >= catalogue * 0.3

        # And the measured-rate longevity is a usable cadence.
        budget = tolerable_bit_errors(SECDED, chip.capacity_bits // 8)
        adapted = estimator.longevity_seconds(budget, 0.0)
        assert adapted > 0.0


class TestTemperatureExcursion:
    """A hot spell grows the failing set; reprofiling at temperature recovers."""

    def test_profile_degrades_then_recovers(self, chip_factory):
        chip = chip_factory()
        cool = Conditions(trefi=1.024, temperature=45.0)
        hot = Conditions(trefi=1.024, temperature=55.0)

        profile_cool = ReachProfiler(iterations=5).run(chip, cool)

        # The chip heats up: the true failing set expands sharply (Eq 1).
        chip.set_temperature(55.0)
        oracle_hot = set(int(c) for c in chip.oracle_failing_set(hot, p_min=0.3))
        cool_coverage = coverage(profile_cool.failing, oracle_hot)
        assert cool_coverage < 0.9, "a cool-weather profile cannot cover hot operation"

        # Reprofiling at the new temperature restores coverage.
        profile_hot = ReachProfiler(iterations=5).run(chip, hot)
        hot_coverage = coverage(profile_hot.failing, oracle_hot)
        assert hot_coverage > cool_coverage + 0.05
        assert hot_coverage > 0.9


class TestModuleDeployment:
    """REAPER protecting a multi-chip module through one mitigation table."""

    def test_module_wide_faultmap(self):
        module = DRAMModule.build(n_chips=2, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        shield = ArchShield(capacity_bits=module.capacity_bits)
        reaper = REAPER(module, shield, Conditions(trefi=1.024, temperature=45.0), iterations=2)
        record = reaper.profile_and_update()
        assert record.cells_added_to_mitigation > 0
        # Entries exist for both chips' namespaces.
        chips_seen = {cell[0] for cell in record.profile.failing}
        assert chips_seen == {0, 1}
        for cell in record.profile.failing:
            assert shield.covers(cell)

    def test_module_profile_scales_runtime_with_capacity(self):
        single = SimulatedDRAMChip(geometry=TINY_GEOMETRY, seed=TEST_SEED)
        pair = DRAMModule.build(n_chips=2, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        target = Conditions(trefi=1.024, temperature=45.0)
        profile_one = BruteForceProfiler(iterations=1).run(single, target)
        profile_two = BruteForceProfiler(iterations=1).run(pair, target)
        # Eq 9: the IO term doubles with capacity, the wait term does not.
        io_delta = profile_two.runtime_seconds - profile_one.runtime_seconds
        expected = single.pattern_io_seconds * 2 * len(profile_one.patterns)
        assert io_delta == pytest.approx(expected, rel=0.05)


class TestPlannerAgainstVendorSpread:
    """One planning policy holds across all three vendors' silicon."""

    @pytest.mark.parametrize("vendor_name", ["A", "B", "C"])
    def test_plan_validates_on_chip(self, vendor_name):
        from repro.dram.vendor import vendor_by_name

        vendor = vendor_by_name(vendor_name)
        chip = SimulatedDRAMChip(vendor=vendor, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        spd = characterize_for_spd(
            chip, anchor_intervals_s=(0.512, 0.768, 1.024, 1.28, 1.536)
        )
        planner = RelaxedRefreshPlanner(spd)
        target = Conditions(trefi=1.024, temperature=45.0)
        plan = planner.plan(target, PlannerConstraints(max_false_positive_rate=0.55))
        assert plan.feasible

        truth_chip = SimulatedDRAMChip(vendor=vendor, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        truth = BruteForceProfiler(iterations=16).run(truth_chip, target)
        reach_chip = SimulatedDRAMChip(vendor=vendor, geometry=TINY_GEOMETRY, seed=TEST_SEED)
        profile = ReachProfiler(reach=plan.reach, iterations=5).run(reach_chip, target)
        assert coverage(profile.failing, truth.failing) > 0.97
