"""Cross-process telemetry: capture, shipping, merging, and parity.

The worker half records into an isolated layer (``obs.capture``), ships
plain dicts back on ``UnitResult.telemetry``, and the parent merges them
(counters sum, histograms merge exactly, gauges take the latest) and
replays the buffered events.  These tests pin the contracts end to end:

* histogram merge algebra -- merging per-worker histograms is
  indistinguishable from observing the concatenated stream (property
  test, including empty and single-observation edges);
* a ``--workers 4`` campaign's merged report carries the worker-side
  series (``chip.commands``, profiler-iteration histograms) with the
  same totals as the serial run of the same campaign;
* campaign summaries stay byte-identical with observability on vs off on
  the multiprocess path;
* the transport itself: ``capture`` isolation, ``execute_unit``
  attachment, result-equality/JSON neutrality, engine-side merge and
  event replay, and the durable ``metrics.json`` at run end.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.analysis.campaign import CharacterizationCampaign
from repro.errors import ConfigurationError
from repro.obs import BufferedEventSink, ListEventSink, Observability
from repro.obs.metrics import DEFAULT_BUCKET_BOUNDS, Histogram
from repro.runner import METRICS_NAME, RunnerEngine, WorkUnit
from repro.runner.executors import execute_unit

from conftest import TINY_GEOMETRY

MANIFEST = {"fingerprint": "f" * 32}
CAMPAIGN_KW = dict(intervals_s=(0.512, 1.024), temperatures_c=(45.0, 55.0))

#: Series whose *values* are wall-clock (host-speed) and therefore differ
#: run to run; their structure (kind, labels, observation count) is still
#: deterministic.
WALL_CLOCK_NAMES = ("runner.unit_seconds", "runner.run_seconds")


def _is_wall_clock(name: str) -> bool:
    return name.startswith("span.") or name in WALL_CLOCK_NAMES


# ----------------------------------------------------------------------
# Histogram merge algebra (hypothesis property test)
# ----------------------------------------------------------------------
observations = st.floats(
    min_value=-10.0, max_value=3600.0, allow_nan=False, allow_infinity=False
)


class TestHistogramMergeAlgebra:
    @given(streams=st.lists(st.lists(observations, max_size=25), max_size=6))
    @settings(max_examples=150, deadline=None)
    def test_merge_equals_observing_concatenated_stream(self, streams):
        # One histogram per "worker" stream, folded into a parent ...
        merged = Histogram()
        for stream in streams:
            part = Histogram()
            for value in stream:
                part.observe(value)
            merged.merge(part)
        # ... must match a single histogram observing everything itself.
        reference = Histogram()
        for value in (v for stream in streams for v in stream):
            reference.observe(value)

        assert merged.count == reference.count
        assert merged.min == reference.min
        assert merged.max == reference.max
        assert merged.bucket_counts == reference.bucket_counts
        # Sums are float additions in a different order: exact up to ulp.
        assert merged.total == pytest.approx(reference.total, rel=1e-12, abs=1e-12)
        assert merged.sum_sq == pytest.approx(reference.sum_sq, rel=1e-12, abs=1e-12)
        if reference.count:
            assert merged.mean == pytest.approx(reference.mean, rel=1e-12, abs=1e-12)
            assert merged.stddev == pytest.approx(
                reference.stddev, rel=1e-9, abs=1e-9
            )
            for q in (0.0, 0.5, 0.95, 1.0):
                assert merged.percentile(q) == pytest.approx(
                    reference.percentile(q), rel=1e-12, abs=1e-12
                )
        else:
            assert merged.mean is None and merged.stddev is None
            assert merged.percentile(0.5) is None

    def test_empty_merge_is_identity(self):
        hist = Histogram()
        hist.observe(0.3)
        hist.merge(Histogram())
        assert (hist.count, hist.total, hist.min, hist.max) == (1, 0.3, 0.3, 0.3)

    def test_single_observation_each_side(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        b.observe(3.0)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (2, 4.0, 1.0, 3.0)
        assert a.mean == pytest.approx(2.0)
        assert a.stddev == pytest.approx(1.0)

    def test_mismatched_bounds_refused(self):
        with pytest.raises(ConfigurationError, match="bucket bounds"):
            Histogram(bounds=(1.0, 2.0)).merge(Histogram())

    def test_snapshot_roundtrip_is_exact(self):
        """Rehydrating a snapshot row rebuilds the histogram bit-for-bit
        (the cross-process wire format loses nothing)."""
        from repro.obs import MetricsRegistry

        source = MetricsRegistry()
        for value in (0.0001, 0.042, 7.5, 2000.0):
            source.histogram("h", phase="x").observe(value)
        sink = MetricsRegistry()
        sink.merge_snapshot(source.snapshot())
        assert sink.snapshot() == source.snapshot()


# ----------------------------------------------------------------------
# capture(): the worker-side recording context
# ----------------------------------------------------------------------
class TestCapture:
    def test_isolates_and_restores_process_default(self):
        assert not obs.enabled()
        before = obs.get()
        with obs.capture() as layer:
            assert obs.enabled()  # force-enabled inside
            assert obs.get() is layer
            assert obs.get() is not before
            obs.counter("captured.things", 2)
            obs.emit("captured.note", detail="x")
        assert not obs.enabled()
        assert obs.get() is before
        rows = {r["name"]: r for r in layer.snapshot()}
        assert rows["captured.things"]["value"] == 2.0
        (event,) = layer.sink.events
        assert event["event"] == "captured.note"
        assert event["detail"] == "x"
        assert isinstance(event["ts"], float)  # BufferedEventSink stamps ts

    def test_restores_enabled_layer_untouched(self):
        obs.reset()
        obs.enable()
        try:
            obs.counter("outer.count")
            with obs.capture():
                obs.counter("inner.count")
            names = {r["name"] for r in obs.snapshot()}
            assert names == {"outer.count"}  # inner stayed isolated
            assert obs.enabled()
        finally:
            obs.disable()
            obs.reset()

    def test_restores_on_exception(self):
        before = obs.get()
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("worker died")
        assert obs.get() is before
        assert not obs.enabled()


# ----------------------------------------------------------------------
# execute_unit(): telemetry attachment and result neutrality
# ----------------------------------------------------------------------
def telemetry_worker(payload):
    obs.counter("worker.widgets", payload["i"] + 1)
    obs.observe("worker.latency", 0.25, status="ok")
    obs.emit("worker.note", i=payload["i"])
    return {"i": payload["i"]}


class TestExecuteUnitTelemetry:
    def test_attaches_metrics_and_events(self):
        unit = WorkUnit("u-0", "toy", {"i": 1})
        result = execute_unit(telemetry_worker, unit, capture_telemetry=True)
        assert result.ok
        names = {r["name"]: r for r in result.telemetry["metrics"]}
        assert names["worker.widgets"]["value"] == 2.0
        assert names["worker.latency"]["count"] == 1
        (event,) = result.telemetry["events"]
        assert event["event"] == "worker.note" and event["i"] == 1
        # Plain picklable data only: must survive the pool boundary.
        json.dumps(result.telemetry)

    def test_no_capture_leaves_telemetry_none(self):
        unit = WorkUnit("u-0", "toy", {"i": 1})
        result = execute_unit(telemetry_worker, unit)
        assert result.telemetry is None

    def test_telemetry_excluded_from_equality_and_json(self):
        unit = WorkUnit("u-0", "toy", {"i": 1})
        captured = execute_unit(telemetry_worker, unit, capture_telemetry=True)
        stripped = dataclasses.replace(captured, telemetry=None)
        assert captured == stripped  # compare=False
        assert "telemetry" not in captured.to_json_dict()
        assert captured.to_json_dict() == stripped.to_json_dict()


# ----------------------------------------------------------------------
# Engine-side merge and replay
# ----------------------------------------------------------------------
class TestEngineMerge:
    def units(self, n=3):
        return tuple(WorkUnit(f"u-{i}", "toy", {"i": i}) for i in range(n))

    def test_worker_metrics_merge_into_injected_layer(self):
        layer = Observability(sink=ListEventSink())
        engine = RunnerEngine(observability=layer)
        engine.run(telemetry_worker, self.units(), MANIFEST)
        rows = {r["name"]: r for r in layer.snapshot()}
        # Counters summed across units: (0+1) + (1+1) + (2+1).
        assert rows["worker.widgets"]["value"] == 6.0
        hist = rows["worker.latency"]
        assert hist["count"] == 3
        assert hist["total"] == pytest.approx(0.75)
        assert hist["labels"] == {"status": "ok"}

    def test_worker_events_replayed_with_unit_attribution(self):
        layer = Observability(sink=ListEventSink())
        engine = RunnerEngine(observability=layer)
        engine.run(telemetry_worker, self.units(), MANIFEST)
        notes = [e for e in layer.sink.events if e["event"] == "worker.note"]
        assert len(notes) == 3
        for note in notes:
            assert note["unit_id"] == f"u-{note['i']}"
            # The worker's wall-clock stamp rides along on replay.
            assert isinstance(note["ts"], float)
        # Replayed rows interleave with the engine's own unit rows.
        kinds = [e["event"] for e in layer.sink.events]
        assert kinds.count("runner.unit") == 3

    def test_metrics_json_written_at_run_end(self, tmp_path):
        layer = Observability(sink=ListEventSink())
        run_dir = tmp_path / "run"
        engine = RunnerEngine(run_dir=str(run_dir), observability=layer)
        report = engine.run(telemetry_worker, self.units(), MANIFEST)
        payload = obs.load_metrics_json(run_dir / METRICS_NAME)
        assert payload["meta"]["total"] == 3
        assert payload["meta"]["succeeded"] == report.stats.succeeded
        assert payload["meta"]["backend"] == "serial"
        names = {r["name"] for r in payload["series"]}
        assert "worker.widgets" in names
        assert "runner.units" in names

    def test_no_metrics_json_without_observability(self, tmp_path):
        run_dir = tmp_path / "run"
        engine = RunnerEngine(run_dir=str(run_dir))
        engine.run(telemetry_worker, self.units(), MANIFEST)
        assert not (run_dir / METRICS_NAME).exists()


# ----------------------------------------------------------------------
# Serial vs multiprocess parity (the headline acceptance criterion)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def campaign():
    return CharacterizationCampaign(
        chips_per_vendor=1, geometry=TINY_GEOMETRY, iterations=1, seed=42
    )


def _run_with_metrics(campaign, **kwargs):
    obs.disable()
    obs.reset()
    obs.enable()
    try:
        summary = campaign.run(**CAMPAIGN_KW, **kwargs)
        snapshot = obs.snapshot()
    finally:
        obs.disable()
        obs.reset()
    return summary, snapshot


def _series_index(snapshot):
    return {
        (r["name"], tuple(sorted(r["labels"].items()))): r for r in snapshot
    }


class TestMultiprocessParity:
    def test_merged_report_matches_serial(self, campaign):
        serial_summary, serial_snap = _run_with_metrics(campaign, backend="serial")
        pool_summary, pool_snap = _run_with_metrics(
            campaign, backend=None, workers=4
        )
        # Same simulation outcome either way.
        assert pool_summary == serial_summary

        serial_idx, pool_idx = _series_index(serial_snap), _series_index(pool_snap)
        # Identical series structure: every (name, labels) pair exists in
        # both runs -- the pool run lost no worker-side series.
        assert set(serial_idx) == set(pool_idx)

        # The worker-side series the issue pins explicitly.
        assert any(name == "chip.commands" for name, _ in serial_idx)
        assert any(
            name == "profiler.new_cells_per_iteration" for name, _ in serial_idx
        )

        for key, serial_row in serial_idx.items():
            pool_row = pool_idx[key]
            name = key[0]
            assert pool_row["kind"] == serial_row["kind"]
            if _is_wall_clock(name):
                # Wall-clock values vary; observation counts must not.
                if serial_row["kind"] == "histogram":
                    assert pool_row["count"] == serial_row["count"]
                continue
            if serial_row["kind"] == "histogram":
                # Sim-domain histograms merge exactly (ulp-level float
                # tolerance: worker snapshots fold in completion order).
                assert pool_row["count"] == serial_row["count"]
                assert pool_row["buckets"] == serial_row["buckets"]
                assert pool_row["min"] == serial_row["min"]
                assert pool_row["max"] == serial_row["max"]
                assert pool_row["total"] == pytest.approx(
                    serial_row["total"], rel=1e-12
                )
            else:
                assert pool_row["value"] == pytest.approx(
                    serial_row["value"], rel=1e-12
                )

    def test_multiprocess_summary_byte_identical_obs_on_vs_off(self, campaign):
        obs.disable()
        obs.reset()
        baseline = campaign.run(backend=None, workers=2, **CAMPAIGN_KW)
        try:
            obs.enable()
            instrumented = campaign.run(backend=None, workers=2, **CAMPAIGN_KW)
        finally:
            obs.disable()
            obs.reset()
        assert instrumented == baseline
        assert instrumented.to_text().encode() == baseline.to_text().encode()
