"""Unit tests for synthetic SPEC-like workloads."""

import pytest

from repro import rng as rng_mod
from repro.errors import ConfigurationError
from repro.sysperf.workloads import (
    BenchmarkProfile,
    SPEC_LIKE_BENCHMARKS,
    benchmark_by_name,
    random_mix,
    workload_mixes,
)


class TestBenchmarkProfiles:
    def test_suite_spans_memory_intensity(self):
        mpkis = [b.mpki for b in SPEC_LIKE_BENCHMARKS]
        assert min(mpkis) < 0.5
        assert max(mpkis) > 25.0

    def test_twenty_profiles(self):
        assert len(SPEC_LIKE_BENCHMARKS) == 20

    def test_names_unique(self):
        names = [b.name for b in SPEC_LIKE_BENCHMARKS]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert benchmark_by_name("mcf_like").mpki == pytest.approx(36.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            benchmark_by_name("doom_like")

    def test_memory_bound_benchmarks_have_lower_base_ipc(self):
        heavy = benchmark_by_name("mcf_like")
        light = benchmark_by_name("povray_like")
        assert heavy.base_ipc < light.base_ipc

    def test_validation_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", mpki=-1, row_hit_fraction=0.5, read_fraction=0.5, mlp=2, base_ipc=1)
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", mpki=1, row_hit_fraction=1.5, read_fraction=0.5, mlp=2, base_ipc=1)
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", mpki=1, row_hit_fraction=0.5, read_fraction=0.5, mlp=0.5, base_ipc=1)
        with pytest.raises(ConfigurationError):
            BenchmarkProfile("x", mpki=1, row_hit_fraction=0.5, read_fraction=0.5, mlp=2, base_ipc=0)


class TestMixes:
    def test_default_is_20_mixes_of_4(self):
        """Section 7.2: 20 heterogeneous 4-benchmark mixes."""
        mixes = workload_mixes()
        assert len(mixes) == 20
        assert all(len(mix) == 4 for mix in mixes)

    def test_mixes_are_deterministic_per_seed(self):
        a = workload_mixes(seed=5)
        b = workload_mixes(seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        assert workload_mixes(seed=5) != workload_mixes(seed=6)

    def test_mixes_are_heterogeneous(self):
        mixes = workload_mixes()
        distinct = {tuple(b.name for b in mix) for mix in mixes}
        assert len(distinct) > 15

    def test_random_mix_size(self):
        mix = random_mix(rng_mod.derive(1, "mix"), size=6)
        assert len(mix) == 6

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            random_mix(rng_mod.derive(1, "mix"), size=0)

    def test_zero_mix_count_rejected(self):
        with pytest.raises(ConfigurationError):
            workload_mixes(n_mixes=0)
