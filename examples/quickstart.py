#!/usr/bin/env python3
"""Quickstart: profile a simulated DRAM chip with reach profiling.

Creates one simulated LPDDR4 chip, finds its retention failures at a
relaxed 1024 ms refresh interval two ways -- the state-of-the-art
brute-force method (Algorithm 1 of the paper) and REAPER's reach profiling
(+250 ms) -- and scores both on the paper's three key metrics: coverage,
false positive rate, and runtime.

Run:  python examples/quickstart.py
"""

from repro import (
    BruteForceProfiler,
    Conditions,
    ReachDelta,
    ReachProfiler,
    SimulatedDRAMChip,
    evaluate,
)

TARGET = Conditions(trefi=1.024, temperature=45.0)  # 16x the JEDEC default


def main() -> None:
    # Two statistically identical chips (same seed): one establishes the
    # ground truth with exhaustive brute force, the other is profiled with
    # reach profiling -- mirroring how the paper scores reach conditions.
    truth_chip = SimulatedDRAMChip(seed=42)
    reach_chip = SimulatedDRAMChip(seed=42)

    print(f"Chip: {truth_chip!r}")
    print(f"Weak cells instantiated: {truth_chip.weak_cell_count}")
    print(f"Target conditions: {TARGET}")
    print()

    brute = BruteForceProfiler(iterations=16)
    truth = brute.run(truth_chip, TARGET)
    print(
        f"Brute force    : {len(truth):4d} failing cells in "
        f"{truth.runtime_seconds:6.1f} s ({truth.iterations} iterations)"
    )

    reacher = ReachProfiler(reach=ReachDelta(delta_trefi=0.250), iterations=5)
    profile = reacher.run(reach_chip, TARGET)
    print(
        f"Reach profiling: {len(profile):4d} failing cells in "
        f"{profile.runtime_seconds:6.1f} s ({profile.iterations} iterations "
        f"at {profile.profiling_conditions})"
    )
    print()

    score = evaluate(profile, truth.failing)
    speedup = truth.runtime_seconds / profile.runtime_seconds
    print(f"Coverage            : {score.coverage:.2%}   (paper: >99%)")
    print(f"False positive rate : {score.false_positive_rate:.1%}   (paper: <50%)")
    print(f"Runtime speedup     : {speedup:.2f}x  (paper: ~2.5x)")


if __name__ == "__main__":
    main()
