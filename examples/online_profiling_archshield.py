#!/usr/bin/env python3
"""REAPER + ArchShield: reliable relaxed-refresh operation, end to end.

Reproduces the paper's Section 7.1.1 deployment story on a simulated chip:

1. Size the problem with the ECC/longevity analysis (Eq 7): how many
   failures can SECDED tolerate, and how long does a profile stay valid?
2. Run REAPER (firmware-style reach profiling) feeding an ArchShield
   FaultMap, on the Eq-7 cadence, across several simulated days.
3. Report the accumulated FaultMap load and the time spent paused for
   profiling -- the overheads Figure 11 and Figure 13 quantify.

Run:  python examples/online_profiling_archshield.py
"""

from repro import Conditions, SimulatedDRAMChip, longevity_for_system
from repro.core import OnlineProfilingScheduler, REAPER
from repro.dram.vendor import VENDOR_B
from repro.ecc import SECDED
from repro.mitigation import ArchShield

TARGET = Conditions(trefi=1.024, temperature=45.0)
OPERATING_DAYS = 7.0


def main() -> None:
    chip = SimulatedDRAMChip(seed=7)

    # --- Step 1: reliability budget (Section 6.2) ------------------------
    estimate = longevity_for_system(
        vendor=VENDOR_B,
        capacity_bytes=chip.capacity_bits // 8,
        ecc=SECDED,
        target=TARGET,
        coverage=0.99,
    )
    print(f"Target: {TARGET} on a {chip.geometry.capacity_gigabits:g} Gbit chip with SECDED")
    print(f"  tolerable failures (N) : {estimate.tolerable_failures:8.1f}")
    print(f"  expected failures      : {estimate.expected_failures:8.1f}")
    print(f"  accumulation (A)       : {estimate.accumulation_per_hour:8.3f} cells/hour")
    print(f"  profile longevity (T)  : {estimate.longevity_days:8.2f} days")
    print()

    # --- Step 2: deploy REAPER + ArchShield -------------------------------
    shield = ArchShield(capacity_bits=chip.capacity_bits)
    reaper = REAPER(chip, shield, TARGET, iterations=5)
    scheduler = OnlineProfilingScheduler(reaper, estimate, safety_factor=0.5)

    def narrate(round_record):
        days = round_record.started_at / 86400.0
        print(
            f"  day {days:5.2f}: profiling round #{round_record.index} found "
            f"{len(round_record.profile):4d} cells "
            f"({round_record.cells_added_to_mitigation:3d} new) in "
            f"{round_record.runtime_seconds:5.1f} s"
        )

    print(f"Operating for {OPERATING_DAYS:.0f} days, reprofiling every "
          f"{scheduler.reprofile_interval_seconds / 3600.0:.1f} h:")
    report = scheduler.run_for(OPERATING_DAYS * 86400.0, on_round=narrate)
    print()

    # --- Step 3: the bill --------------------------------------------------
    print(f"FaultMap entries        : {shield.entry_count} "
          f"({shield.utilization:.2%} of the reserved area)")
    print(f"Known failing cells     : {shield.known_cell_count}")
    print(f"Profiling pauses        : {len(report.rounds)} rounds, "
          f"{report.profiling_seconds:.0f} s total")
    print(f"Time spent profiling    : {report.profiling_fraction:.3%} of system time")


if __name__ == "__main__":
    main()
