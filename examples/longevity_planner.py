#!/usr/bin/env python3
"""Plan a relaxed-refresh deployment from the ECC/longevity math alone.

For a range of target refresh intervals and ECC strengths, computes (per
Section 6.2): the tolerable failure budget (Table 1), the minimum profiling
coverage the budget implies, the Eq-7 profile longevity, and the resulting
profiling time overhead for brute force vs REAPER -- then flags the best
operating point, reproducing the reasoning behind Figure 13's "512 ms is
the sweet spot, REAPER extends it beyond 1024 ms" conclusion.

Run:  python examples/longevity_planner.py
"""

from repro import Conditions
from repro.core.longevity import longevity_for_system, minimum_required_coverage
from repro.core.runtime_model import round_runtime_seconds
from repro.dram.geometry import GIBIBIT
from repro.dram.vendor import VENDOR_B
from repro.ecc import ECC2, SECDED

CHIP_DENSITY_GBIT = 64
N_CHIPS = 32
MODULE_BYTES = CHIP_DENSITY_GBIT * N_CHIPS * GIBIBIT // 8
INTERVALS = (0.256, 0.512, 1.024, 1.280, 1.536)
REAPER_SPEEDUP = 2.5


def main() -> None:
    print(f"Module: {N_CHIPS} x {CHIP_DENSITY_GBIT} Gb chips "
          f"({MODULE_BYTES / (1 << 30):.0f} GB), vendor B, 45 degC, UBER 1e-15")
    print()
    header = (f"{'ECC':>7} {'tREFI':>7} {'budget N':>9} {'min cov':>8} "
              f"{'longevity':>10} {'brute ovh':>10} {'REAPER ovh':>11}")
    print(header)
    print("-" * len(header))
    for ecc in (SECDED, ECC2):
        for trefi in INTERVALS:
            target = Conditions(trefi=trefi, temperature=45.0)
            estimate = longevity_for_system(VENDOR_B, MODULE_BYTES, ecc, target, coverage=1.0)
            min_cov = minimum_required_coverage(VENDOR_B, MODULE_BYTES, ecc, target)
            round_s = round_runtime_seconds(
                trefi, MODULE_BYTES * 8, n_patterns=6, n_iterations=16
            )
            interval_s = estimate.longevity_seconds * 0.5  # reprofile at half budget
            brute_ovh = round_s / (round_s + interval_s)
            reaper_ovh = (round_s / REAPER_SPEEDUP) / (round_s / REAPER_SPEEDUP + interval_s)
            print(
                f"{ecc.name:>7} {trefi * 1e3:6.0f}m {estimate.tolerable_failures:9.0f} "
                f"{min_cov:8.2%} {estimate.longevity_seconds / 3600.0:8.1f} h "
                f"{brute_ovh:10.2%} {reaper_ovh:11.2%}"
            )
        print()
    print("Reading: once the reprofiling cadence (longevity) drops to hours,")
    print("brute-force rounds eat a visible slice of system time; REAPER's")
    print("2.5x cheaper rounds keep long intervals viable (Figure 13).")


if __name__ == "__main__":
    main()
