#!/usr/bin/env python3
"""A miniature multi-vendor characterization campaign (Section 5).

Builds a thermally controlled testbed with chips from all three vendors,
then walks the paper's characterization sequence:

* BER vs refresh interval per vendor (Figure 2's aggregate curves),
* the temperature dependence of the failure rate (Eq 1),
* steady-state VRT accumulation at a long interval (Figure 3),
* per-pattern DPD coverage (Figure 5),
* and finally exports each chip's SPD characterization blob (Section 6.3).

Run:  python examples/characterization_campaign.py
"""

from repro import BruteForceProfiler, Conditions
from repro.analysis.report import ascii_table
from repro.dram import characterize_for_spd
from repro.dram.geometry import ChipGeometry
from repro.infra import TestBed

GEOMETRY = ChipGeometry.from_capacity_gigabits(0.25)
INTERVALS = (0.512, 1.024, 2.048)


def main() -> None:
    bed = TestBed.build(chips_per_vendor=1, geometry=GEOMETRY, seed=368)
    settle = bed.set_ambient(45.0)
    print(f"Testbed: {len(bed.chips)} chips, chamber settled at "
          f"{bed.chamber.ambient_c:.2f} degC in {settle:.0f} s\n")

    # --- BER vs interval (Figure 2) ---------------------------------------
    profiler = BruteForceProfiler(iterations=2)
    rows = []
    for trefi in INTERVALS:
        profiles = bed.profile_all(profiler, Conditions(trefi=trefi, temperature=45.0))
        for chip in bed.chips:
            count = len(profiles[chip.chip_id])
            rows.append([chip.vendor.name, trefi * 1e3, count, count / chip.capacity_bits])
    print(ascii_table(
        ["vendor", "tREFI (ms)", "failures", "BER"],
        rows,
        title="Aggregate failure rates (2 brute-force iterations per point)",
    ))

    # --- Temperature dependence (Eq 1) -------------------------------------
    counts = {}
    for ambient in (45.0, 55.0):
        bed.set_ambient(ambient)
        profiles = bed.profile_all(profiler, Conditions(trefi=1.024, temperature=ambient))
        counts[ambient] = {c.chip_id: len(profiles[c.chip_id]) for c in bed.chips}
    print("Temperature dependence at 1024 ms (Eq 1 predicts ~10x per +10 degC):")
    for chip in bed.chips:
        cool, hot = counts[45.0][chip.chip_id], counts[55.0][chip.chip_id]
        ratio = hot / cool if cool else float("inf")
        print(f"  vendor {chip.vendor.name}: {cool:4d} -> {hot:4d} failures "
              f"({ratio:.1f}x, model k={chip.vendor.failure_rate_temp_coeff})")
    print()

    # --- VRT accumulation (Figure 3, abbreviated) --------------------------
    bed.set_ambient(45.0)
    chip = bed.chips_by_vendor()["B"][0]
    conditions = Conditions(trefi=2.048, temperature=chip.temperature_c)
    seen = set(int(c) for c in BruteForceProfiler(iterations=4).run(chip, conditions).failing)
    new_cells = 0
    probes = 12
    for _ in range(probes):
        chip.wait(3600.0)
        found = set(int(c) for c in BruteForceProfiler(iterations=1).run(chip, conditions).failing)
        new_cells += len(found - seen)
        seen |= found
    print(f"VRT accumulation on vendor B at 2048 ms: {new_cells} new cells over "
          f"{probes} h ({new_cells / probes:.2f}/h; scales ~t^8 with interval)\n")

    # --- SPD export (Section 6.3) ------------------------------------------
    print("SPD characterization blobs (what a vendor would ship on-DIMM):")
    for chip in bed.chips:
        blob = characterize_for_spd(chip).to_bytes()
        print(f"  vendor {chip.vendor.name} chip {chip.chip_id}: {len(blob)} bytes, "
              f"BER@1024ms={characterize_for_spd(chip).ber_at(1.024):.2e}")


if __name__ == "__main__":
    main()
