#!/usr/bin/env python3
"""The full production loop: hybrid maintenance with an adaptive cadence.

Combines everything the library offers into the most capable deployment:

* REAPER reach-profiling rounds provide the coverage guarantee;
* ECC scrub passes between rounds harvest VRT newcomers immediately
  (AVATAR-style, Section 6.2.1's "ECC is needed anyway");
* every observation feeds an online Poisson estimator of the accumulation
  rate, so the Eq-7 reprofiling cadence adapts to the chip actually in the
  machine instead of catalogue numbers.

Run:  python examples/adaptive_maintenance.py
"""

from repro import Conditions, SimulatedDRAMChip
from repro.core import AccumulationRateEstimator, HybridMaintainer, REAPER
from repro.ecc import SECDED
from repro.ecc.model import tolerable_bit_errors
from repro.mitigation import ArchShield

# An aggressive 2048 ms target makes VRT churn visible within days.
TARGET = Conditions(trefi=2.048, temperature=45.0)
DAY = 86400.0


def main() -> None:
    chip = SimulatedDRAMChip(seed=2048, max_trefi_s=2.6)
    shield = ArchShield(capacity_bits=chip.capacity_bits)
    reaper = REAPER(chip, shield, TARGET, iterations=3, stop_after_quiet_iterations=1)

    # Bootstrap cadence from the chip's own analytic model (what the SPD
    # would carry); it will be replaced by the measured rate.
    capacity_gbit = chip.capacity_bits / (1 << 30)
    catalogue_rate = chip.vendor.vrt_arrival_rate_per_hour(TARGET.trefi, capacity_gbit, 45.0)
    budget = tolerable_bit_errors(SECDED, chip.capacity_bits // 8)
    print(f"Target {TARGET} on a {capacity_gbit:g} Gbit chip")
    print(f"  catalogue accumulation rate : {catalogue_rate:6.2f} cells/h")
    print(f"  SECDED budget               : {budget:6.2f} cells")
    print()

    estimator = AccumulationRateEstimator()
    maintainer = HybridMaintainer(
        reaper,
        reprofile_interval_seconds=1.0 * DAY,
        scrub_interval_seconds=2.0 * 3600.0,
    )

    for day in range(3):
        before = shield.known_cell_count
        t0 = chip.clock.now
        report = maintainer.run_for(1.0 * DAY)
        newcomers = shield.known_cell_count - before
        if day > 0:  # day 0 includes the base set, not accumulation
            estimator.observe(chip.clock.now - t0, newcomers)
        print(
            f"day {day}: {report.reaper_rounds} round(s), {report.scrub_passes} scrubs, "
            f"+{newcomers} cells ({report.cells_from_scrubbing} via scrubbing), "
            f"{report.profiling_seconds + report.scrubbing_seconds:6.0f} s paused"
        )

    print()
    estimate = estimator.estimate()
    print(f"Measured accumulation rate : {estimate.rate_per_hour:.2f} cells/h "
          f"[{estimate.confidence_low_per_hour:.2f}, {estimate.confidence_high_per_hour:.2f}]")
    adapted = estimator.longevity_seconds(budget, missed_failures=0.0)
    print(f"Adapted reprofiling window : {adapted / 3600.0:.1f} h "
          f"(vs catalogue-based {budget / catalogue_rate:.1f} h)")
    print(f"FaultMap load              : {shield.known_cell_count} cells "
          f"({shield.utilization:.2%} of the reserved area)")


if __name__ == "__main__":
    main()
