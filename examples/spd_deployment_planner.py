#!/usr/bin/env python3
"""Plan a relaxed-refresh deployment from on-DIMM SPD data (Section 6.3).

The paper proposes that DRAM vendors ship per-chip retention
characterization in the SPD so systems can choose reach conditions in the
field.  This example plays both sides: the "vendor" characterizes a chip
and serializes the SPD blob; the "system" deserializes it, combines it with
its mitigation mechanism's constraints, and uses
:class:`~repro.core.planner.RelaxedRefreshPlanner` to pick the operating
point -- then validates the plan against the actual (simulated) chip.

Run:  python examples/spd_deployment_planner.py
"""

from repro import BruteForceProfiler, Conditions, ReachProfiler, SimulatedDRAMChip, evaluate
from repro.core import PlannerConstraints, RelaxedRefreshPlanner
from repro.dram import SPDCharacterization, characterize_for_spd
from repro.ecc import SECDED
from repro.mitigation import ArchShield

TARGET = Conditions(trefi=1.024, temperature=45.0)


def main() -> None:
    # --- Vendor side: characterize the chip and ship the SPD blob ---------
    chip = SimulatedDRAMChip(seed=363)
    blob = characterize_for_spd(
        chip, anchor_intervals_s=(0.256, 0.512, 0.768, 1.024, 1.28, 1.536, 2.048)
    ).to_bytes()
    print(f"Vendor ships {len(blob)} bytes of SPD characterization data\n")

    # --- System side: read SPD, apply mitigation constraints --------------
    spd = SPDCharacterization.from_bytes(blob)
    shield = ArchShield(capacity_bits=chip.capacity_bits)
    constraints = PlannerConstraints(
        max_false_positive_rate=0.50,
        min_coverage=0.99,
        mitigation_capacity_cells=shield.max_entries,  # one cell/word worst case
    )
    planner = RelaxedRefreshPlanner(spd, ecc=SECDED)
    plan = planner.plan(TARGET, constraints)

    print(f"Planned deployment for target {TARGET}:")
    print(f"  reach conditions        : {plan.reach_conditions} (delta {plan.reach})")
    print(f"  expected failures       : {plan.expected_failures:8.1f} cells")
    print(f"  expected profiled cells : {plan.expected_profiled_cells:8.1f} "
          f"(est. FPR {plan.expected_false_positive_rate:.1%})")
    print(f"  ECC budget (N)          : {plan.tolerable_failures:8.1f} cells")
    print(f"  reprofile every         : {plan.reprofile_interval_seconds / 3600.0:8.1f} h")
    print(f"  profiling round         : {plan.round_seconds:8.1f} s "
          f"({plan.profiling_time_fraction:.3%} of system time)")
    print(f"  feasible                : {plan.feasible}")
    print()

    # --- Validation: does the plan hold on the physical chip? -------------
    truth = BruteForceProfiler(iterations=16).run(SimulatedDRAMChip(seed=363), TARGET)
    profile = ReachProfiler(reach=plan.reach, iterations=5).run(
        SimulatedDRAMChip(seed=363), TARGET
    )
    score = evaluate(profile, truth.failing)
    print("Validation against the actual chip:")
    print(f"  measured coverage       : {score.coverage:.2%} "
          f"(planned floor {constraints.min_coverage:.0%})")
    print(f"  measured FPR            : {score.false_positive_rate:.1%} "
          f"(planned ceiling {constraints.max_false_positive_rate:.0%})")
    print(f"  cells into FaultMap     : {shield.ingest(profile.failing)} "
          f"({shield.utilization:.2%} of reserved area)")


if __name__ == "__main__":
    main()
