#!/usr/bin/env python3
"""Explore the reach-condition tradeoff space (Figures 9 and 10).

Brute-force profiles a grid of (refresh interval, temperature) points on
statistically identical chips, treats each point as a target with every
more-aggressive point as its reach conditions, and prints the coverage /
false-positive / runtime surfaces.  Finishes by picking the fastest reach
conditions that satisfy a coverage floor and a false-positive ceiling --
the selection rule of Section 6.1.2.

Run:  python examples/tradeoff_explorer.py
"""

from repro import Conditions, SimulatedDRAMChip
from repro.core import TradeoffExplorer

BASE = Conditions(trefi=1.024, temperature=45.0)
DELTA_TREFIS = [0.0, 0.125, 0.250, 0.375, 0.500]
DELTA_TEMPS = [0.0, 5.0, 10.0]


def render(surface, metric: str, fmt: str) -> None:
    print(f"  {metric:>9}:  " + "  ".join(f"+{d * 1e3:4.0f}ms" for d in surface.delta_trefis))
    grid = surface.grid(metric)
    for i, d_temp in enumerate(surface.delta_temperatures):
        cells = "  ".join(format(grid[i, j], fmt) for j in range(len(surface.delta_trefis)))
        print(f"  +{d_temp:4.1f}degC  {cells}")
    print()


def main() -> None:
    def chip_factory():
        return SimulatedDRAMChip(
            seed=99,
            max_trefi_s=(BASE.trefi + max(DELTA_TREFIS)) * 1.05,
        )

    explorer = TradeoffExplorer(device_factory=chip_factory, iterations=16, coverage_target=0.99)
    print(f"Exploring reach conditions around {BASE} "
          f"({len(DELTA_TREFIS) * len(DELTA_TEMPS)} grid points x 16 iterations)...")
    surface = explorer.explore(BASE, DELTA_TREFIS, DELTA_TEMPS)
    print()

    render(surface, "coverage", "6.3f")
    render(surface, "fpr", "6.3f")
    render(surface, "runtime", "6.3f")

    for max_fpr in (0.30, 0.50, 0.80):
        best = surface.best_reach(min_coverage=0.99, max_fpr=max_fpr)
        if best is None:
            print(f"  FPR <= {max_fpr:.0%}: no reach conditions qualify")
        else:
            print(
                f"  FPR <= {max_fpr:.0%}: best reach {best.delta} -> "
                f"coverage {best.coverage_mean:.1%}, FPR {best.fpr_mean:.1%}, "
                f"{1.0 / best.runtime_norm_mean:.1f}x faster than brute force"
            )


if __name__ == "__main__":
    main()
