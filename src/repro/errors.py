"""Exception hierarchy for the REAPER reproduction library.

Every exception raised by this package derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish configuration mistakes from protocol
violations at the simulated DRAM command interface.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """A model, geometry, or experiment was configured with invalid values."""


class CommandSequenceError(ReproError, RuntimeError):
    """A DRAM command was issued in an invalid order.

    The simulated chips enforce the same protocol a SoftMC-style testing
    infrastructure would: data must be written before errors can be read,
    refresh must be disabled before a retention exposure can accumulate,
    and so on.
    """


class ProfilingError(ReproError, RuntimeError):
    """A profiling run could not be completed as requested."""


class EccError(ReproError, RuntimeError):
    """An ECC codec was asked to do something it cannot (e.g. bad word size)."""


class CapacityError(ReproError, RuntimeError):
    """A mitigation mechanism ran out of spare capacity for failing cells."""


class ClockError(ReproError, RuntimeError):
    """Simulated time was manipulated in a non-monotonic way."""
