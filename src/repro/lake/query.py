"""Cross-run analytics over the columnar lake.

Two layers live here:

**Canonical summaries** -- :func:`run_summary` reduces one run's final
results to a deterministic JSON object (unit counts, failed ids, per-
vendor failure-count tables in chip order).  :func:`summary_from_run_dir`
derives it by re-parsing the source JSONL; :func:`summary_from_lake`
derives it straight from the columnar arrays (vectorized, no JSON in the
hot path).  The project invariant is that the two are *byte-identical*
(``json.dumps(..., sort_keys=True)``) -- the lake may be faster, never
different.

**Cross-run reports** -- longitudinal failure trends, vendor × condition
contour tables, and profile-longevity drift summaries spanning every
compacted run, the derived artifacts a REAPER-style deployment watches
over months of characterization rounds.  Each report is a plain dict
(``headers``/``rows`` plus a rendered ``text`` table) so it serves JSON
APIs and terminals alike.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..runner.campaign import aggregate_chip_results
from ..runner.units import UnitResult
from .columns import KIND_CODE, VALUE_JSON, RunColumns, _chip_encodable
from .store import ResultLake, fold_results_jsonl

#: Version stamp carried by every canonical summary.
SUMMARY_SCHEMA = 1

_KIND_KEYS = {"interval": "interval_failures", "temperature": "temperature_failures"}


# ----------------------------------------------------------------------
# Canonical per-run summaries (the byte-identity surface)
# ----------------------------------------------------------------------
def run_summary(results: Mapping[str, UnitResult]) -> Dict[str, Any]:
    """Reduce one run's final results to the canonical summary object.

    Results are consumed in sorted ``unit_id`` order so the summary is
    independent of completion order, and the count tables inherit
    :func:`aggregate_chip_results`' chip-ascending ordering.  ``ok``
    values that are not chip measurements (foreign work-unit kinds) are
    listed under ``other_ok_units`` instead of entering the tables.
    """
    ordered = [results[uid] for uid in sorted(results)]
    chip_ok = [r for r in ordered if r.ok and _chip_encodable(r.value)]
    other_ok = sorted(
        uid for uid, r in results.items() if r.ok and not _chip_encodable(r.value)
    )
    interval_counts, temperature_counts = aggregate_chip_results(chip_ok)
    vendors: Dict[str, Any] = {}
    for vendor in sorted(set(interval_counts) | set(temperature_counts)):
        vendors[vendor] = {
            "interval_failures": {
                repr(cond): counts
                for cond, counts in sorted(interval_counts.get(vendor, {}).items())
            },
            "temperature_failures": {
                repr(cond): counts
                for cond, counts in sorted(temperature_counts.get(vendor, {}).items())
            },
        }
    failed = sorted(uid for uid, r in results.items() if not r.ok)
    return {
        "schema": SUMMARY_SCHEMA,
        "units": len(results),
        "ok": len(results) - len(failed),
        "failed": len(failed),
        "failed_units": failed,
        "other_ok_units": other_ok,
        "vendors": vendors,
    }


def summary_from_run_dir(run_dir) -> Dict[str, Any]:
    """Canonical summary straight from a run directory's ``results.jsonl``."""
    import pathlib

    from ..runner.store import RESULTS_NAME

    rows, _, _ = fold_results_jsonl(pathlib.Path(run_dir) / RESULTS_NAME)
    return run_summary(
        {uid: UnitResult.from_json_dict(row) for uid, row in rows.items()}
    )


def summary_from_lake(lake: ResultLake, run_id: str) -> Dict[str, Any]:
    """Canonical summary from the columnar segment, vectorized.

    Byte-identical to :func:`summary_from_run_dir` over the same logical
    run.  Falls back to the exact row-reconstruction path when the run
    carries a live delta journal or non-chip-shaped ``ok`` values --
    correctness never depends on the fast path applying.
    """
    if lake.has_delta(run_id):
        return run_summary(lake.results(run_id))
    cols = lake.columns(run_id)
    ok_mask = cols.status == 0
    if bool(np.any((cols.value_kind == VALUE_JSON) & ok_mask)):
        return run_summary(lake.results(run_id))

    failed = sorted(cols.unit_id[~ok_mask].tolist())
    vendors: Dict[str, Any] = {
        str(v): {"interval_failures": {}, "temperature_failures": {}}
        for v in cols.vendors.tolist()
    }
    if cols.n_observations:
        # aggregate_chip_results orders chips by ascending chip_id with a
        # stable sort over unit_id order -- exactly reproduced here: the
        # segment stores units (and their observation rows) unit_id-sorted,
        # and the stable argsort below reorders observation rows by chip.
        order = np.argsort(cols.obs_chip_id(), kind="stable")
        vend = cols.obs_vendor_idx()[order]
        kind = cols.obs_kind[order]
        cond = cols.obs_condition[order]
        fail = cols.obs_failures[order].astype(np.int64)
        for vendor_index, vendor in enumerate(cols.vendors.tolist()):
            tables = vendors[str(vendor)]
            vendor_mask = vend == vendor_index
            for kind_name, key in _KIND_KEYS.items():
                mask = vendor_mask & (kind == KIND_CODE[kind_name])
                conds = cond[mask]
                counts = fail[mask]
                tables[key] = {
                    repr(float(c)): counts[conds == c].tolist()
                    for c in np.unique(conds).tolist()
                }
    # The aggregate path only materializes a vendor once it sees at least
    # one failure pair, so a vendor whose chips all reported empty lists
    # (or whose units all failed) must not appear here either.
    if cols.n_observations:
        seen = set(cols.vendors[np.unique(cols.obs_vendor_idx())].tolist())
    else:
        seen = set()
    vendors = {v: t for v, t in sorted(vendors.items()) if v in seen}
    n_units = cols.n_units
    return {
        "schema": SUMMARY_SCHEMA,
        "units": n_units,
        "ok": n_units - len(failed),
        "failed": len(failed),
        "failed_units": [str(u) for u in failed],
        # The fast path only applies when every ok value is chip-encoded.
        "other_ok_units": [],
        "vendors": vendors,
    }


# ----------------------------------------------------------------------
# Cross-run reports
# ----------------------------------------------------------------------
def ascii_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Fixed-width text table (right-aligned numbers, left-aligned text)."""
    rendered = [[_cell(x) for x in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rendered)) if rendered else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells, pad=" "):
        return "  ".join(str(c).ljust(w, pad) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line([""] * len(headers), pad="-")]
    out.extend(line(r) for r in rendered)
    return "\n".join(out)


def _cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _selected_runs(lake: ResultLake, run_ids: Optional[Sequence[str]]) -> List[str]:
    known = lake.run_ids()
    if run_ids is None:
        return known
    missing = sorted(set(run_ids) - set(known))
    if missing:
        raise ConfigurationError(
            f"runs not in the lake: {', '.join(missing)} "
            f"(known: {', '.join(known) or '<empty lake>'})"
        )
    return list(run_ids)


def _kind_code(kind: str) -> int:
    if kind not in KIND_CODE:
        raise ConfigurationError(
            f"unknown observation kind {kind!r}: use 'interval' or 'temperature'"
        )
    return KIND_CODE[kind]


def _capacity_bits(manifest: Mapping[str, Any]) -> Optional[int]:
    capacity = manifest.get("capacity_bits")
    if isinstance(capacity, (int, float)) and capacity > 0:
        return int(capacity)
    return None


def _mean_by_condition(
    cols: RunColumns, kind_code: int, vendor_index: int
) -> Dict[float, Tuple[int, float]]:
    """``condition -> (n_observations, mean_failures)`` for one vendor."""
    mask = (cols.obs_kind == kind_code) & (cols.obs_vendor_idx() == vendor_index)
    conds = cols.obs_condition[mask]
    fails = cols.obs_failures[mask]
    out: Dict[float, Tuple[int, float]] = {}
    for c in np.unique(conds).tolist():
        sel = fails[conds == c]
        out[float(c)] = (int(sel.size), float(sel.mean()))
    return out


def trend_report(
    lake: ResultLake,
    run_ids: Optional[Sequence[str]] = None,
    vendor: Optional[str] = None,
    kind: str = "interval",
) -> Dict[str, Any]:
    """Longitudinal failure trend: one row per (run, vendor, condition).

    ``failure_rate`` is failures per bit when the run's manifest recorded
    ``capacity_bits``; older runs render ``-``.
    """
    code = _kind_code(kind)
    headers = ["run", "vendor", kind, "chips", "mean_failures", "failure_rate"]
    rows: List[List[Any]] = []
    for run_id in _selected_runs(lake, run_ids):
        cols = lake.columns(run_id)
        capacity = _capacity_bits(lake.manifest(run_id))
        for vendor_index, vendor_name in enumerate(cols.vendors.tolist()):
            if vendor is not None and str(vendor_name) != vendor:
                continue
            for cond, (n, mean) in sorted(
                _mean_by_condition(cols, code, vendor_index).items()
            ):
                rate = mean / capacity if capacity else None
                rows.append([run_id, str(vendor_name), cond, n, mean, rate])
    return {
        "report": "trend",
        "kind": kind,
        "headers": headers,
        "rows": rows,
        "text": ascii_table(headers, rows),
    }


def contour_report(
    lake: ResultLake,
    run_ids: Optional[Sequence[str]] = None,
    kind: str = "temperature",
) -> Dict[str, Any]:
    """Vendor × condition contour: mean failures pooled across runs.

    The REAPER-style view of the characterization grid -- how failure
    counts scale with temperature (or refresh interval) per vendor, with
    every selected run's chips pooled into one population.
    """
    code = _kind_code(kind)
    pooled: Dict[str, Dict[float, List[float]]] = {}
    for run_id in _selected_runs(lake, run_ids):
        cols = lake.columns(run_id)
        for vendor_index, vendor_name in enumerate(cols.vendors.tolist()):
            cells = pooled.setdefault(str(vendor_name), {})
            mask = (cols.obs_kind == code) & (cols.obs_vendor_idx() == vendor_index)
            conds = cols.obs_condition[mask]
            fails = cols.obs_failures[mask]
            for c in np.unique(conds).tolist():
                cells.setdefault(float(c), []).extend(fails[conds == c].tolist())
    vendors = sorted(pooled)
    conditions = sorted({c for cells in pooled.values() for c in cells})
    headers = [kind] + vendors
    rows: List[List[Any]] = []
    for c in conditions:
        row: List[Any] = [c]
        for v in vendors:
            samples = pooled[v].get(c)
            row.append(float(np.mean(samples)) if samples else None)
        rows.append(row)
    return {
        "report": "contour",
        "kind": kind,
        "headers": headers,
        "rows": rows,
        "text": ascii_table(headers, rows),
    }


def longevity_report(
    lake: ResultLake,
    run_ids: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Profile-longevity drift: per vendor, how the failure population
    moved across characterization rounds.

    For each vendor the report tracks the mean failure count at the most
    aggressive profiled condition (the longest refresh interval, REAPER's
    reach-profiling point) across the selected runs in order: first and
    last round means, the relative drift between them, and the largest
    single round-to-round step.  Stable numbers mean an old profile still
    covers the population; a large drift is the signal to re-profile.
    """
    selected = _selected_runs(lake, run_ids)
    code = _kind_code("interval")
    series: Dict[str, List[Tuple[str, float, float]]] = {}
    for run_id in selected:
        cols = lake.columns(run_id)
        for vendor_index, vendor_name in enumerate(cols.vendors.tolist()):
            by_cond = _mean_by_condition(cols, code, vendor_index)
            if not by_cond:
                continue
            top = max(by_cond)
            series.setdefault(str(vendor_name), []).append(
                (run_id, top, by_cond[top][1])
            )
    headers = [
        "vendor",
        "runs",
        "interval",
        "first_mean",
        "last_mean",
        "drift",
        "max_step",
    ]
    rows: List[List[Any]] = []
    for vendor in sorted(series):
        points = series[vendor]
        means = [m for _, _, m in points]
        first, last = means[0], means[-1]
        drift = (last - first) / abs(first) if first else None
        steps = [abs(b - a) for a, b in zip(means, means[1:])]
        rows.append(
            [
                vendor,
                len(points),
                max(top for _, top, _ in points),
                first,
                last,
                drift,
                max(steps) if steps else None,
            ]
        )
    return {
        "report": "longevity",
        "headers": headers,
        "rows": rows,
        "text": ascii_table(headers, rows),
    }


def runs_report(lake: ResultLake, run_ids: Optional[Sequence[str]] = None) -> Dict[str, Any]:
    """Catalog inventory: one row per compacted run."""
    headers = ["run", "units", "observations", "events", "status", "kind"]
    rows: List[List[Any]] = []
    for run_id in _selected_runs(lake, run_ids):
        entry = lake.entry(run_id)
        manifest = entry.get("manifest") or {}
        rows.append(
            [
                run_id,
                entry.get("units", 0),
                entry.get("observations", 0),
                entry.get("events", 0),
                manifest.get("status") or None,
                manifest.get("kind") or None,
            ]
        )
    return {
        "report": "runs",
        "headers": headers,
        "rows": rows,
        "text": ascii_table(headers, rows),
    }


#: CLI-facing registry: ``python -m repro lake query --report <name>``.
REPORTS = {
    "runs": runs_report,
    "trend": trend_report,
    "contour": contour_report,
    "longevity": longevity_report,
}
