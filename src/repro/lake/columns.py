"""Columnar (struct-of-arrays) encoding of campaign result rows.

One compacted run is a single ``.npz`` archive holding aligned numpy
arrays -- the lake's on-disk unit.  The layout is two tables plus a small
event digest:

**Unit table** (one row per *final* work unit, later JSONL rows win)
    ``unit_id`` (unicode), ``status`` (0 ok / 1 failed), ``attempts``,
    ``elapsed_s``, ``value_kind``, ``chip_id``, ``vendor_idx`` (index into
    the per-run ``vendors`` string table), ``value_json`` (fallback
    payload), ``error_type`` / ``error_message`` / ``error_traceback``.

**Observation table** (one row per ``[condition, failures]`` measurement
pair of a chip-encoded unit, in the unit's list order)
    ``obs_unit_idx`` (index into the unit table), ``obs_kind``
    (0 interval-sweep / 1 temperature-scaling), ``obs_condition``
    (tREFI seconds or degrees C), ``obs_failures``.

**Event digest** (from ``events.jsonl`` when present)
    ``event_name_idx`` (index into ``event_names``), ``event_ts`` --
    enough to recompute throughput windows without keeping the full log.

The chip-measurement value produced by :func:`repro.runner.measure_chip`
-- ``{"chip_id", "vendor", "interval_failures", "temperature_failures"}``
-- is exploded into the observation table; any other ``ok`` value is kept
verbatim as canonical JSON in ``value_json``.  The encoding is *exact*:
:func:`decode_results` reproduces byte-for-byte the rows
:meth:`repro.runner.store.ResultStore.load_results` would return, which is
what makes every summary derived from the lake byte-identical to one
derived from the source JSONL.  To guarantee that, a value is only
chip-encoded when its floats are genuine JSON floats (``20.0``, not
``20``) -- anything looser falls back to the JSON column.
"""

from __future__ import annotations

import json
import os
import pathlib
import zipfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError
from ..runner.units import STATUS_FAILED, STATUS_OK, UnitFailure, UnitResult

#: On-disk schema stamp; bump on any layout change so old readers refuse
#: new archives (and vice versa) instead of misreading them.
LAKE_SCHEMA = 1

#: ``status`` column values.
STATUS_CODE = {STATUS_OK: 0, STATUS_FAILED: 1}
STATUS_NAME = {code: name for name, code in STATUS_CODE.items()}

#: ``value_kind`` column values.
VALUE_CHIP = 0  #: exploded into the observation table
VALUE_JSON = 1  #: kept verbatim in ``value_json``
VALUE_NONE = 2  #: failed row, no value

#: ``obs_kind`` column values.
KIND_INTERVAL = 0
KIND_TEMPERATURE = 1
KIND_CODE = {"interval": KIND_INTERVAL, "temperature": KIND_TEMPERATURE}

#: Keys of a chip-measurement value (``repro.runner.measure_chip``).
_CHIP_VALUE_KEYS = frozenset(
    ("chip_id", "vendor", "interval_failures", "temperature_failures")
)


def _chip_encodable(value: Any) -> bool:
    """Can ``value`` round-trip exactly through the observation table?"""
    if not isinstance(value, dict) or set(value) != _CHIP_VALUE_KEYS:
        return False
    if type(value["chip_id"]) is not int or not isinstance(value["vendor"], str):
        return False
    for key in ("interval_failures", "temperature_failures"):
        pairs = value[key]
        if not isinstance(pairs, list):
            return False
        for pair in pairs:
            if not (isinstance(pair, list) and len(pair) == 2):
                return False
            # JSON floats only: an int here (``20`` vs ``20.0``) would not
            # survive the float64 round trip byte-identically.
            if type(pair[0]) is not float or type(pair[1]) is not float:
                return False
    return True


def _str_array(values: Sequence[str]) -> np.ndarray:
    return np.array(list(values), dtype="<U1") if not values else np.array(list(values))


@dataclass
class RunColumns:
    """One compacted run's aligned column arrays."""

    # -- unit table ----------------------------------------------------
    unit_id: np.ndarray = field(default_factory=lambda: _str_array([]))
    status: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    attempts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    elapsed_s: np.ndarray = field(default_factory=lambda: np.zeros(0, np.float64))
    value_kind: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    chip_id: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    vendor_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    value_json: np.ndarray = field(default_factory=lambda: _str_array([]))
    error_type: np.ndarray = field(default_factory=lambda: _str_array([]))
    error_message: np.ndarray = field(default_factory=lambda: _str_array([]))
    error_traceback: np.ndarray = field(default_factory=lambda: _str_array([]))
    #: Per-run vendor string table (``vendor_idx`` indexes into it).
    vendors: np.ndarray = field(default_factory=lambda: _str_array([]))
    # -- observation table ---------------------------------------------
    obs_unit_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    obs_kind: np.ndarray = field(default_factory=lambda: np.zeros(0, np.uint8))
    obs_condition: np.ndarray = field(default_factory=lambda: np.zeros(0, np.float64))
    obs_failures: np.ndarray = field(default_factory=lambda: np.zeros(0, np.float64))
    # -- event digest ---------------------------------------------------
    event_names: np.ndarray = field(default_factory=lambda: _str_array([]))
    event_name_idx: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    event_ts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.float64))

    @property
    def n_units(self) -> int:
        return int(self.unit_id.shape[0])

    @property
    def n_observations(self) -> int:
        return int(self.obs_condition.shape[0])

    @property
    def n_events(self) -> int:
        return int(self.event_ts.shape[0])

    #: chip vendor name per observation row (fancy-indexed view).
    def obs_vendor_idx(self) -> np.ndarray:
        return self.vendor_idx[self.obs_unit_idx]

    def obs_chip_id(self) -> np.ndarray:
        return self.chip_id[self.obs_unit_idx]


def encode_results(
    results: Mapping[str, Mapping[str, Any]],
    events: Optional[Sequence[Mapping[str, Any]]] = None,
) -> RunColumns:
    """Encode folded result rows (unit_id -> final JSON row) into columns.

    Rows are laid out in sorted ``unit_id`` order, which erases the
    append/completion order exactly like the campaign's own aggregation --
    two compactions of the same logical run produce identical archives.
    """
    cols = RunColumns()
    ordered = sorted(results.items())
    vendors: List[str] = []
    vendor_of: Dict[str, int] = {}

    unit_id: List[str] = []
    status: List[int] = []
    attempts: List[int] = []
    elapsed: List[float] = []
    value_kind: List[int] = []
    chip_id: List[int] = []
    vendor_idx: List[int] = []
    value_json: List[str] = []
    err_type: List[str] = []
    err_message: List[str] = []
    err_traceback: List[str] = []
    obs_unit: List[int] = []
    obs_kind: List[int] = []
    obs_cond: List[float] = []
    obs_fail: List[float] = []

    for index, (uid, row) in enumerate(ordered):
        row_status = str(row.get("status", ""))
        if row_status not in STATUS_CODE:
            raise ConfigurationError(
                f"cannot compact unit {uid!r}: unknown status {row_status!r}"
            )
        unit_id.append(str(uid))
        status.append(STATUS_CODE[row_status])
        attempts.append(int(row.get("attempts", 1)))
        elapsed.append(float(row.get("elapsed_s", 0.0)))
        error = row.get("error") or {}
        err_type.append(str(error.get("type", "")) if error else "")
        err_message.append(str(error.get("message", "")) if error else "")
        err_traceback.append(str(error.get("traceback", "")) if error else "")

        value = row.get("value")
        if row_status == STATUS_FAILED:
            value_kind.append(VALUE_NONE)
            chip_id.append(-1)
            vendor_idx.append(-1)
            value_json.append("")
        elif _chip_encodable(value):
            value_kind.append(VALUE_CHIP)
            chip_id.append(int(value["chip_id"]))
            vendor = str(value["vendor"])
            if vendor not in vendor_of:
                vendor_of[vendor] = len(vendors)
                vendors.append(vendor)
            vendor_idx.append(vendor_of[vendor])
            value_json.append("")
            for kind_code, key in (
                (KIND_INTERVAL, "interval_failures"),
                (KIND_TEMPERATURE, "temperature_failures"),
            ):
                for condition, failures in value[key]:
                    obs_unit.append(index)
                    obs_kind.append(kind_code)
                    obs_cond.append(float(condition))
                    obs_fail.append(float(failures))
        else:
            value_kind.append(VALUE_JSON)
            chip_id.append(-1)
            vendor_idx.append(-1)
            value_json.append(json.dumps(value, sort_keys=True))

    cols.unit_id = _str_array(unit_id)
    cols.status = np.array(status, np.uint8)
    cols.attempts = np.array(attempts, np.int64)
    cols.elapsed_s = np.array(elapsed, np.float64)
    cols.value_kind = np.array(value_kind, np.uint8)
    cols.chip_id = np.array(chip_id, np.int64)
    cols.vendor_idx = np.array(vendor_idx, np.int64)
    cols.value_json = _str_array(value_json)
    cols.error_type = _str_array(err_type)
    cols.error_message = _str_array(err_message)
    cols.error_traceback = _str_array(err_traceback)
    cols.vendors = _str_array(vendors)
    cols.obs_unit_idx = np.array(obs_unit, np.int64)
    cols.obs_kind = np.array(obs_kind, np.uint8)
    cols.obs_condition = np.array(obs_cond, np.float64)
    cols.obs_failures = np.array(obs_fail, np.float64)

    if events:
        names: List[str] = []
        name_of: Dict[str, int] = {}
        name_idx: List[int] = []
        stamps: List[float] = []
        for event in events:
            name = str(event.get("event", ""))
            ts = event.get("ts")
            if not name or ts is None:
                continue
            if name not in name_of:
                name_of[name] = len(names)
                names.append(name)
            name_idx.append(name_of[name])
            stamps.append(float(ts))
        cols.event_names = _str_array(names)
        cols.event_name_idx = np.array(name_idx, np.int64)
        cols.event_ts = np.array(stamps, np.float64)
    return cols


def decode_results(cols: RunColumns) -> Dict[str, UnitResult]:
    """Rebuild the exact :meth:`ResultStore.load_results` mapping.

    The returned objects compare equal to -- and ``to_json_dict``-dump
    byte-identically with -- the rows parsed straight from the source
    ``results.jsonl``.
    """
    results: Dict[str, UnitResult] = {}
    # Group observation rows by unit in one pass (they are stored in
    # per-unit list order, so a simple bucket append reconstructs the
    # original pair lists).
    interval_pairs: Dict[int, List[List[float]]] = {}
    temperature_pairs: Dict[int, List[List[float]]] = {}
    for unit_index, kind, condition, failures in zip(
        cols.obs_unit_idx.tolist(),
        cols.obs_kind.tolist(),
        cols.obs_condition.tolist(),
        cols.obs_failures.tolist(),
    ):
        bucket = interval_pairs if kind == KIND_INTERVAL else temperature_pairs
        bucket.setdefault(unit_index, []).append([condition, failures])

    for index in range(cols.n_units):
        uid = str(cols.unit_id[index])
        code = int(cols.status[index])
        kind = int(cols.value_kind[index])
        attempts = int(cols.attempts[index])
        elapsed = float(cols.elapsed_s[index])
        if code == STATUS_CODE[STATUS_FAILED]:
            results[uid] = UnitResult(
                unit_id=uid,
                status=STATUS_FAILED,
                error=UnitFailure(
                    type=str(cols.error_type[index]),
                    message=str(cols.error_message[index]),
                    traceback=str(cols.error_traceback[index]),
                ),
                attempts=attempts,
                elapsed_s=elapsed,
            )
            continue
        if kind == VALUE_CHIP:
            value: Any = {
                "chip_id": int(cols.chip_id[index]),
                "vendor": str(cols.vendors[int(cols.vendor_idx[index])]),
                "interval_failures": interval_pairs.get(index, []),
                "temperature_failures": temperature_pairs.get(index, []),
            }
        else:
            value = json.loads(str(cols.value_json[index]))
        results[uid] = UnitResult(
            unit_id=uid,
            status=STATUS_OK,
            value=value,
            attempts=attempts,
            elapsed_s=elapsed,
        )
    return results


# ----------------------------------------------------------------------
# npz persistence
# ----------------------------------------------------------------------
_ARRAY_FIELDS = (
    "unit_id",
    "status",
    "attempts",
    "elapsed_s",
    "value_kind",
    "chip_id",
    "vendor_idx",
    "value_json",
    "error_type",
    "error_message",
    "error_traceback",
    "vendors",
    "obs_unit_idx",
    "obs_kind",
    "obs_condition",
    "obs_failures",
    "event_names",
    "event_name_idx",
    "event_ts",
)


def save_columns(cols: RunColumns, path: Union[str, os.PathLike]) -> pathlib.Path:
    """Write one run's columns durably (temp file + atomic replace)."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    arrays = {name: getattr(cols, name) for name in _ARRAY_FIELDS}
    arrays["schema"] = np.array([LAKE_SCHEMA], np.int64)
    with open(tmp_path, "wb") as handle:
        np.savez_compressed(handle, **arrays)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    return path


def load_columns(path: Union[str, os.PathLike]) -> RunColumns:
    """Read one run's columns back, refusing unknown schema versions."""
    path = pathlib.Path(path)
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise ConfigurationError(f"cannot read lake segment {path}: {exc}") from exc
    with archive:
        schema = int(archive["schema"][0]) if "schema" in archive else None
        if schema != LAKE_SCHEMA:
            raise ConfigurationError(
                f"{path} carries lake schema {schema!r}; this reader "
                f"understands schema {LAKE_SCHEMA} -- recompact the run"
            )
        cols = RunColumns()
        for name in _ARRAY_FIELDS:
            if name not in archive:
                raise ConfigurationError(
                    f"{path} is missing column {name!r}; recompact the run"
                )
            setattr(cols, name, archive[name])
        return cols
