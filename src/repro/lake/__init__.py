"""Columnar result lake + cross-run analytics.

JSONL run directories are the engine's durable write format; the lake is
where they go to be *queried*.  :class:`ResultLake` compacts run dirs
into schema-versioned numpy struct-of-arrays segments (``runs/*.npz``)
under one catalog, :class:`LakeStore` lets the engine write straight into
the lake through the ``ResultStore`` interface (delta journal + fold on
close), and :mod:`repro.lake.query` derives canonical per-run summaries
-- byte-identical to the JSONL path -- plus cross-run trend, contour,
and profile-longevity reports.
"""

from .columns import (
    LAKE_SCHEMA,
    RunColumns,
    decode_results,
    encode_results,
    load_columns,
    save_columns,
)
from .query import (
    REPORTS,
    contour_report,
    longevity_report,
    run_summary,
    runs_report,
    summary_from_lake,
    summary_from_run_dir,
    trend_report,
)
from .store import (
    CompactionReport,
    LakeStore,
    ResultLake,
    fold_results_jsonl,
    read_events_jsonl,
    run_id_for_dir,
)

__all__ = [
    "LAKE_SCHEMA",
    "RunColumns",
    "decode_results",
    "encode_results",
    "load_columns",
    "save_columns",
    "CompactionReport",
    "LakeStore",
    "ResultLake",
    "fold_results_jsonl",
    "read_events_jsonl",
    "run_id_for_dir",
    "REPORTS",
    "run_summary",
    "runs_report",
    "trend_report",
    "contour_report",
    "longevity_report",
    "summary_from_lake",
    "summary_from_run_dir",
]
