"""The columnar result lake: compaction, catalog, and a live store facade.

A lake is one directory::

    <lake_root>/
        lake.json                   # schema-versioned catalog of runs
        runs/<run_id>.npz           # one columnar segment per run
        runs/<run_id>.delta.jsonl   # live append journal (LakeStore only)

:class:`ResultLake` is the offline half: :meth:`ResultLake.compact_run_dir`
streams a run directory's ``results.jsonl``/``events.jsonl`` into one
columnar segment (resume-aware -- later rows win, torn tails skipped --
exactly like :meth:`repro.runner.store.ResultStore.load_results`), and the
catalog remembers each run's manifest so cross-run queries can group by
campaign configuration.

:class:`LakeStore` is the online half: a drop-in implementation of the
``ResultStore`` interface the engine writes through.  Completions append
to a plain JSONL *delta journal* (same row format, same flush-per-row
durability as ``results.jsonl``), and ``close()`` folds base + delta into
a fresh columnar segment -- an LSM in miniature.  A crash between append
and compaction loses nothing: readers always fold the surviving delta on
top of the base segment.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from ..errors import ConfigurationError
from ..runner.store import manifest_spec_diff
from ..runner.units import STATUS_OK, UnitResult
from .columns import LAKE_SCHEMA, RunColumns, decode_results, encode_results, load_columns, save_columns

CATALOG_NAME = "lake.json"
RUNS_DIR_NAME = "runs"
SEGMENT_SUFFIX = ".npz"
DELTA_SUFFIX = ".delta.jsonl"

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,119}$")


def validate_run_id(run_id: str) -> str:
    if not _RUN_ID_RE.match(run_id):
        raise ConfigurationError(
            f"invalid lake run id {run_id!r}: use 1-120 chars of "
            "[A-Za-z0-9._-], starting with an alphanumeric"
        )
    return run_id


def run_id_for_dir(run_dir: Union[str, os.PathLike]) -> str:
    """Derive a catalog run id from a run directory path (sanitized)."""
    name = pathlib.Path(run_dir).resolve().name or "run"
    cleaned = re.sub(r"[^A-Za-z0-9._-]", "-", name).lstrip("._-") or "run"
    return validate_run_id(cleaned[:120])


# ----------------------------------------------------------------------
# Streaming JSONL folding (shared by compaction and the delta journal)
# ----------------------------------------------------------------------
def fold_results_jsonl(
    path: Union[str, os.PathLike],
    into: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Tuple[Dict[str, Dict[str, Any]], int, int]:
    """Fold a results JSONL stream into ``unit_id -> final row``.

    Mirrors :meth:`ResultStore.load_results` semantics -- later rows win
    (resumed runs re-record units), and a torn final line is skipped as a
    mid-write crash artifact -- but reads line-by-line instead of slurping
    the file, and *counts* undecodable interior rows instead of raising:
    compaction is an offline ingest pass, and one corrupt row should cost
    one row, not the whole run.  Returns ``(rows, raw_rows, skipped)``.
    """
    rows: Dict[str, Dict[str, Any]] = into if into is not None else {}
    raw_rows = 0
    skipped = 0
    path = pathlib.Path(path)
    if not path.exists():
        return rows, raw_rows, skipped
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text:
                continue
            try:
                row = json.loads(text)
            except json.JSONDecodeError:
                # A torn tail is expected after a crash; interior garbage
                # is counted and skipped.
                skipped += 1
                continue
            if not isinstance(row, dict) or "unit_id" not in row:
                skipped += 1
                continue
            rows[str(row["unit_id"])] = row
            raw_rows += 1
    return rows, raw_rows, skipped


def read_events_jsonl(path: Union[str, os.PathLike]) -> List[Dict[str, Any]]:
    """Best-effort read of an ``events.jsonl`` stream (torn rows skipped)."""
    events: List[Dict[str, Any]] = []
    path = pathlib.Path(path)
    if not path.exists():
        return events
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            text = line.strip()
            if not text:
                continue
            try:
                row = json.loads(text)
            except json.JSONDecodeError:
                continue
            if isinstance(row, dict):
                events.append(row)
    return events


@dataclass(frozen=True)
class CompactionReport:
    """What one compaction pass ingested."""

    run_id: str
    segment: pathlib.Path
    units: int
    observations: int
    events: int
    source_rows: int
    skipped_lines: int

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "segment": str(self.segment),
            "units": self.units,
            "observations": self.observations,
            "events": self.events,
            "source_rows": self.source_rows,
            "skipped_lines": self.skipped_lines,
        }


class ResultLake:
    """Catalog + columnar segments for many compacted runs."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = pathlib.Path(root)
        self.catalog_path = self.root / CATALOG_NAME
        self.runs_dir = self.root / RUNS_DIR_NAME

    # -- catalog -------------------------------------------------------
    def _load_catalog(self) -> Dict[str, Any]:
        if not self.catalog_path.exists():
            return {"schema": LAKE_SCHEMA, "runs": {}}
        try:
            catalog = json.loads(self.catalog_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"{self.catalog_path} is corrupt ({exc}); restore it from "
                "backup or delete the lake directory and recompact the runs"
            ) from exc
        if not isinstance(catalog, dict) or not isinstance(catalog.get("runs"), dict):
            raise ConfigurationError(
                f"{self.catalog_path} does not hold a lake catalog object"
            )
        schema = catalog.get("schema")
        if schema != LAKE_SCHEMA:
            raise ConfigurationError(
                f"{self.catalog_path} carries lake schema {schema!r}; this "
                f"reader understands schema {LAKE_SCHEMA} -- recompact into "
                "a fresh lake directory"
            )
        return catalog

    def _save_catalog(self, catalog: Mapping[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp_path = self.catalog_path.with_name(CATALOG_NAME + ".tmp")
        tmp_path.write_text(
            json.dumps(dict(catalog), indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp_path, self.catalog_path)

    def run_ids(self) -> List[str]:
        return sorted(self._load_catalog()["runs"])

    def entry(self, run_id: str) -> Dict[str, Any]:
        catalog = self._load_catalog()
        try:
            return dict(catalog["runs"][run_id])
        except KeyError:
            known = ", ".join(sorted(catalog["runs"])) or "<empty lake>"
            raise ConfigurationError(
                f"run {run_id!r} is not in the lake (known runs: {known})"
            ) from None

    def manifest(self, run_id: str) -> Dict[str, Any]:
        manifest = self.entry(run_id).get("manifest")
        return dict(manifest) if isinstance(manifest, dict) else {}

    # -- segment paths -------------------------------------------------
    def segment_path(self, run_id: str) -> pathlib.Path:
        return self.runs_dir / (run_id + SEGMENT_SUFFIX)

    def delta_path(self, run_id: str) -> pathlib.Path:
        return self.runs_dir / (run_id + DELTA_SUFFIX)

    # -- ingest --------------------------------------------------------
    def write_run(
        self,
        run_id: str,
        rows: Mapping[str, Mapping[str, Any]],
        manifest: Optional[Mapping[str, Any]] = None,
        events: Optional[Iterable[Mapping[str, Any]]] = None,
        source: Optional[str] = None,
        source_rows: int = 0,
        skipped_lines: int = 0,
    ) -> CompactionReport:
        """Encode folded rows into a segment and register it in the catalog."""
        validate_run_id(run_id)
        cols = encode_results(rows, events=list(events) if events else None)
        segment = save_columns(cols, self.segment_path(run_id))
        catalog = self._load_catalog()
        catalog["runs"][run_id] = {
            "segment": f"{RUNS_DIR_NAME}/{run_id}{SEGMENT_SUFFIX}",
            "manifest": dict(manifest) if manifest is not None else None,
            "source": source,
            "units": cols.n_units,
            "observations": cols.n_observations,
            "events": cols.n_events,
            "source_rows": int(source_rows),
            "skipped_lines": int(skipped_lines),
        }
        self._save_catalog(catalog)
        return CompactionReport(
            run_id=run_id,
            segment=segment,
            units=cols.n_units,
            observations=cols.n_observations,
            events=cols.n_events,
            source_rows=int(source_rows),
            skipped_lines=int(skipped_lines),
        )

    def compact_run_dir(
        self,
        run_dir: Union[str, os.PathLike],
        run_id: Optional[str] = None,
    ) -> CompactionReport:
        """Stream one JSONL run directory into a columnar segment.

        Recompacting an existing ``run_id`` replaces its segment -- the
        natural refresh after a resumed run appended more rows.
        """
        run_dir = pathlib.Path(run_dir)
        # Import here to avoid a hard layering cycle: runner.store names
        # live in the runner package, which never imports the lake.
        from ..runner.store import EVENTS_NAME, MANIFEST_NAME, RESULTS_NAME

        manifest_path = run_dir / MANIFEST_NAME
        results_path = run_dir / RESULTS_NAME
        if not manifest_path.exists() and not results_path.exists():
            raise ConfigurationError(
                f"{run_dir} is not a run directory (no {MANIFEST_NAME} or "
                f"{RESULTS_NAME})"
            )
        manifest: Optional[Dict[str, Any]] = None
        if manifest_path.exists():
            try:
                loaded = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise ConfigurationError(
                    f"{manifest_path} is corrupt ({exc}); cannot compact a run "
                    "that can no longer prove which campaign it belongs to"
                ) from exc
            if isinstance(loaded, dict):
                manifest = loaded
        rows, raw_rows, skipped = fold_results_jsonl(results_path)
        events = read_events_jsonl(run_dir / EVENTS_NAME)
        return self.write_run(
            run_id if run_id is not None else run_id_for_dir(run_dir),
            rows,
            manifest=manifest,
            events=events,
            source=str(run_dir),
            source_rows=raw_rows,
            skipped_lines=skipped,
        )

    # -- read ----------------------------------------------------------
    def columns(self, run_id: str) -> RunColumns:
        """One run's columnar segment (delta journal *not* folded in)."""
        self.entry(run_id)  # raises with the known-runs list if absent
        segment = self.segment_path(run_id)
        if not segment.exists():
            raise ConfigurationError(
                f"lake catalog lists run {run_id!r} but {segment} is missing; "
                "recompact the run"
            )
        return load_columns(segment)

    def has_delta(self, run_id: str) -> bool:
        delta = self.delta_path(run_id)
        return delta.exists() and delta.stat().st_size > 0

    def results(self, run_id: str) -> Dict[str, UnitResult]:
        """One run's final results, byte-identical to the JSONL loader.

        Folds the delta journal (if a :class:`LakeStore` crash left one)
        on top of the columnar base, later rows winning.
        """
        results = decode_results(self.columns(run_id))
        if self.has_delta(run_id):
            delta_rows, _, _ = fold_results_jsonl(self.delta_path(run_id))
            for uid, row in delta_rows.items():
                results[uid] = UnitResult.from_json_dict(row)
        return results


class LakeStore:
    """``ResultStore``-interface adapter that persists into a lake.

    The engine's contract -- ``open(manifest, resume)`` with fingerprint
    guard, flush-per-append durability, later-rows-win ``load_results``,
    ``completed_ids`` as the resume skip-set -- is preserved exactly;
    only the bytes land differently: appends go to a per-run delta
    journal, and ``close()`` folds base + delta into a fresh columnar
    segment so an idle run costs one ``.npz`` file, not a JSONL heap.

    ``run_dir`` is ``None`` by design: a lake run has no private
    directory, so the engine skips the run-dir side artifacts
    (``events.jsonl`` sink, ``metrics.json``) exactly as it does for
    :class:`~repro.runner.store.NullStore`.
    """

    run_dir: Optional[pathlib.Path] = None

    def __init__(self, lake_root: Union[str, os.PathLike], run_id: str) -> None:
        self.lake = ResultLake(lake_root)
        self.run_id = validate_run_id(run_id)
        self._handle = None
        self._manifest: Optional[Dict[str, Any]] = None

    # -- lifecycle -----------------------------------------------------
    def open(self, manifest: Mapping[str, Any], resume: bool = False) -> None:
        if "fingerprint" not in manifest:
            raise ConfigurationError("store manifest must carry a 'fingerprint'")
        catalog = self.lake._load_catalog()
        existing = catalog["runs"].get(self.run_id)
        if existing is not None:
            stored = existing.get("manifest") or {}
            if stored.get("fingerprint") != manifest["fingerprint"]:
                raise ConfigurationError(
                    f"lake run {self.run_id!r} belongs to a different campaign "
                    f"(manifest fingerprint {stored.get('fingerprint')!r} != "
                    f"{manifest['fingerprint']!r}).  Differing configuration: "
                    f"{manifest_spec_diff(stored, manifest)}.  Use a fresh "
                    "run id, or relaunch with the run's original "
                    "configuration to resume it"
                )
            has_rows = existing.get("units", 0) > 0 or self.lake.has_delta(self.run_id)
            if not resume and has_rows:
                raise ConfigurationError(
                    f"lake run {self.run_id!r} already holds results; pass "
                    "resume=True (--resume) to continue it"
                )
            # The stored manifest stays authoritative on resume, mirroring
            # ResultStore (which never rewrites manifest.json on re-open).
            self._manifest = dict(stored)
        else:
            self._manifest = dict(manifest)
            # Register the run up front (empty segment) so a crash before
            # the first completion still leaves a resumable catalog entry.
            self.lake.write_run(self.run_id, {}, manifest=self._manifest)
        self.lake.runs_dir.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.lake.delta_path(self.run_id), "a", encoding="utf-8")

    def mark_status(self, status: str) -> None:
        """Stamp the catalog entry's manifest ``status`` (atomic rewrite)."""
        catalog = self.lake._load_catalog()
        entry = catalog["runs"].get(self.run_id)
        if entry is None:
            return
        manifest = dict(entry.get("manifest") or {})
        manifest["status"] = str(status)
        entry["manifest"] = manifest
        self._manifest = manifest
        self.lake._save_catalog(catalog)

    def close(self) -> None:
        """Close the journal and fold it into the columnar base segment."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.compact()

    def compact(self) -> None:
        """Fold base + delta into a fresh segment; drop the journal."""
        if not self.lake.has_delta(self.run_id):
            delta = self.lake.delta_path(self.run_id)
            if delta.exists():
                delta.unlink()
            return
        rows = {
            uid: result.to_json_dict()
            for uid, result in decode_results(self.lake.columns(self.run_id)).items()
        }
        rows, raw_rows, skipped = fold_results_jsonl(
            self.lake.delta_path(self.run_id), into=rows
        )
        entry = self.lake.entry(self.run_id)
        self.lake.write_run(
            self.run_id,
            rows,
            manifest=self._manifest if self._manifest is not None else entry.get("manifest"),
            source=entry.get("source"),
            source_rows=int(entry.get("source_rows", 0)) + raw_rows,
            skipped_lines=int(entry.get("skipped_lines", 0)) + skipped,
        )
        self.lake.delta_path(self.run_id).unlink(missing_ok=True)

    def __enter__(self) -> "LakeStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- read ----------------------------------------------------------
    def load_results(self) -> Dict[str, UnitResult]:
        return self.lake.results(self.run_id)

    def completed_ids(self) -> Set[str]:
        return {
            uid
            for uid, result in self.load_results().items()
            if result.status == STATUS_OK
        }

    # -- write ---------------------------------------------------------
    def append(self, result: UnitResult) -> None:
        if self._handle is None:
            raise ConfigurationError("store is not open for appending")
        self._handle.write(json.dumps(result.to_json_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def append_all(self, results: Iterable[UnitResult]) -> None:
        for result in results:
            self.append(result)
