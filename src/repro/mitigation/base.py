"""Common interface of retention failure mitigation mechanisms (Section 3.1).

Reach profiling produces a set of failing cells; a *mitigation mechanism*
is whatever the system uses to operate correctly despite them -- remapping,
multi-rate refresh, spare cells, or discarding addresses.  Every mechanism
here implements the same small interface so REAPER can drive any of them:

* :meth:`MitigationMechanism.ingest` absorbs newly discovered failing cells
  and returns how many were previously unknown;
* :meth:`MitigationMechanism.covers` answers whether a cell is protected;
* :attr:`MitigationMechanism.known_cell_count` sizes the mechanism's load,
  which is what false positives inflate.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Hashable, Iterable, Set


def row_key(cell: Hashable, bits_per_row: int) -> Hashable:
    """Map a cell reference to its row reference.

    Integer cell ids map to integer (bank-major global) row ids;
    ``(chip, flat)`` module refs map to ``(chip, row)``.
    """
    if isinstance(cell, tuple):
        chip, flat = cell
        return (chip, int(flat) // bits_per_row)
    return int(cell) // bits_per_row


class MitigationMechanism(abc.ABC):
    """Base class for all retention failure mitigation mechanisms."""

    #: Human-readable mechanism name.
    name: str = "abstract"

    def __init__(self) -> None:
        self._known: Set[Hashable] = set()

    @property
    def known_cell_count(self) -> int:
        """Number of distinct failing cells the mechanism is carrying."""
        return len(self._known)

    @property
    def known_cells(self) -> FrozenSet[Hashable]:
        return frozenset(self._known)

    def ingest(self, cells: Iterable[Hashable]) -> int:
        """Absorb failing cells; returns the count of previously unknown ones."""
        new_cells = [c for c in cells if c not in self._known]
        if new_cells:
            self._absorb(new_cells)
            self._known.update(new_cells)
        return len(new_cells)

    def covers(self, cell: Hashable) -> bool:
        """Whether accesses touching ``cell`` are protected by the mechanism."""
        return cell in self._known

    @abc.abstractmethod
    def _absorb(self, new_cells: Iterable[Hashable]) -> None:
        """Mechanism-specific handling of newly discovered failing cells."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"{type(self).__name__}(known_cells={self.known_cell_count})"
