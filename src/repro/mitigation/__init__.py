"""Retention failure mitigation mechanisms (Section 3.1 / Section 7.1).

All mechanisms share the :class:`~repro.mitigation.base.MitigationMechanism`
interface so REAPER can feed any of them the failing cells it discovers.
"""

from .archshield import ArchShield, word_key
from .base import MitigationMechanism, row_key
from .binning import update_raidr_bins
from .bloom import BloomFilter
from .raidr import RAIDR
from .rapid import RAPID
from .rowmapout import RowMapOut
from .secret import SECRET

__all__ = [
    "MitigationMechanism",
    "row_key",
    "word_key",
    "BloomFilter",
    "ArchShield",
    "RAIDR",
    "RAPID",
    "SECRET",
    "RowMapOut",
    "update_raidr_bins",
]
