"""Multi-interval row binning for RAIDR (Section 7.1.2).

REAPER's single-target profiles tell RAIDR only "this row cannot sustain
the relaxed interval".  Profiling at a *ladder* of intervals recovers
per-row retention classes: a row whose weakest cell fails an exposure of
``bin_intervals[i+1]`` must be refreshed at ``bin_intervals[i]`` or faster.
This module runs that ladder (optionally with reach profiling at each rung)
and populates a :class:`~repro.mitigation.raidr.RAIDR` instance's bins.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Sequence

from ..conditions import Conditions, ReachDelta
from ..core.bruteforce import BruteForceProfiler
from ..core.reach import ReachProfiler
from ..errors import ConfigurationError
from .base import row_key
from .raidr import RAIDR


def update_raidr_bins(
    device,
    raidr: RAIDR,
    temperature_c: float = 45.0,
    iterations: int = 2,
    reach: Optional[ReachDelta] = None,
) -> Dict[Hashable, int]:
    """Profile a ladder of intervals and place rows into RAIDR bins.

    For bins at intervals ``[b0, b1, ..., bk]`` with relaxed interval ``R``,
    the ladder tests exposures ``[b1, ..., bk, R]``: a row first failing at
    the exposure ``b_{i+1}`` lands in bin ``i`` (refreshed at ``b_i``), and
    rows failing only at ``R`` land in the last bin.  Rows never failing
    stay at the relaxed interval.

    Returns the mapping of rows to their assigned bin index.
    """
    exposures = list(raidr.bin_intervals_s[1:]) + [raidr.relaxed_interval_s]
    headroom = reach.delta_trefi if reach is not None else 0.0
    if any(e + headroom > device.max_trefi_s for e in exposures):
        raise ConfigurationError(
            "the bin ladder tests exposures beyond the device's max_trefi_s"
        )
    if reach is not None:
        profiler = ReachProfiler(reach=reach, iterations=iterations)
        run = lambda conditions: profiler.run(device, conditions)  # noqa: E731
    else:
        brute = BruteForceProfiler(iterations=iterations)
        run = lambda conditions: brute.run(device, conditions)  # noqa: E731

    assigned: Dict[Hashable, int] = {}
    for bin_index, exposure in enumerate(exposures):
        profile = run(Conditions(trefi=exposure, temperature=temperature_c))
        for cell in profile.failing:
            row = row_key(cell, raidr.bits_per_row)
            if row not in assigned:
                assigned[row] = bin_index
                raidr.assign_row(row, bin_index)
    return assigned
