"""Address-space row map-out (the introductory example of Section 1).

The simplest mitigation the paper sketches: the memory controller removes
addresses containing failing cells from the system address space entirely.
Capacity cost is paid in whole rows, so this mechanism is the most sensitive
of all to profiling false positives -- each false positive can discard an
entire healthy row.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Set

from ..errors import CapacityError, ConfigurationError
from .base import MitigationMechanism, row_key


class RowMapOut(MitigationMechanism):
    """Map rows with failing cells out of the system address space."""

    name = "RowMapOut"

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        max_mapped_fraction: float = 0.05,
    ) -> None:
        super().__init__()
        if total_rows <= 0 or bits_per_row <= 0:
            raise ConfigurationError("row geometry must be positive")
        if not (0.0 < max_mapped_fraction <= 1.0):
            raise ConfigurationError("max_mapped_fraction must lie in (0, 1]")
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.max_mapped_fraction = max_mapped_fraction
        self._mapped_rows: Set[Hashable] = set()

    @property
    def mapped_row_count(self) -> int:
        return len(self._mapped_rows)

    @property
    def capacity_loss_fraction(self) -> float:
        """Fraction of DRAM removed from the address space."""
        return len(self._mapped_rows) / self.total_rows

    def _absorb(self, new_cells: Iterable[Hashable]) -> None:
        budget_rows = int(self.total_rows * self.max_mapped_fraction)
        for cell in new_cells:
            row = row_key(cell, self.bits_per_row)
            if row not in self._mapped_rows:
                if len(self._mapped_rows) >= budget_rows:
                    raise CapacityError(
                        f"row map-out budget exhausted ({budget_rows} rows, "
                        f"{self.max_mapped_fraction:.0%} of capacity); false "
                        "positives are costing whole rows -- use gentler reach "
                        "conditions or a cell-granularity mechanism"
                    )
                self._mapped_rows.add(row)

    def row_is_mapped_out(self, row: Hashable) -> bool:
        return row in self._mapped_rows

    def address_is_usable(self, cell: Hashable) -> bool:
        """Whether an address remains part of the system address space."""
        return row_key(cell, self.bits_per_row) not in self._mapped_rows
