"""SECRET-style cell remapping (Lin et al., ICCD 2012; Section 3.1).

SECRET identifies the set of failing cells at a longer refresh interval and
remaps each to a known-good spare cell.  The model here maintains the remap
table against a finite spare pool; running out of spares raises
:class:`~repro.errors.CapacityError` -- the failure mode that makes SECRET
sensitive to profiling false positives (every false positive permanently
consumes a spare).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

from ..errors import CapacityError, ConfigurationError
from .base import MitigationMechanism


class SECRET(MitigationMechanism):
    """Per-cell remap table backed by a finite pool of spare cells."""

    name = "SECRET"

    def __init__(self, spare_cells: int) -> None:
        super().__init__()
        if spare_cells <= 0:
            raise ConfigurationError(f"spare_cells must be positive, got {spare_cells!r}")
        self.spare_cells = spare_cells
        self._remap: Dict[Hashable, int] = {}
        self._next_spare = 0

    @property
    def spares_used(self) -> int:
        return self._next_spare

    @property
    def spares_remaining(self) -> int:
        return self.spare_cells - self._next_spare

    @property
    def utilization(self) -> float:
        return self._next_spare / self.spare_cells

    def _absorb(self, new_cells: Iterable[Hashable]) -> None:
        for cell in new_cells:
            if self._next_spare >= self.spare_cells:
                raise CapacityError(
                    f"SECRET spare pool exhausted ({self.spare_cells} spares); "
                    "profiling false positives consume spares permanently -- "
                    "choose gentler reach conditions or a larger pool"
                )
            self._remap[cell] = self._next_spare
            self._next_spare += 1

    def remap_target(self, cell: Hashable) -> int:
        """The spare-cell index serving a remapped cell."""
        try:
            return self._remap[cell]
        except KeyError:
            raise ConfigurationError(f"cell {cell!r} is not remapped") from None
