"""RAPID-style retention-aware data placement (Venkatesan et al., HPCA 2006;
paper Section 3.1).

RAPID orders rows by the retention time of their weakest cell and allocates
data to the *strongest* rows first; the refresh interval is then set by the
weakest row actually holding data.  Lightly loaded systems get very long
refresh intervals; the interval degrades gracefully as memory fills.

Per-row retention estimates come from multi-interval profiling (e.g. the
:func:`~repro.mitigation.binning.update_raidr_bins` ladder, or repeated
reach profiles at a ladder of targets); unprofiled rows are conservatively
treated as requiring the JEDEC default.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List

from ..conditions import JEDEC_TREFW
from ..errors import CapacityError, ConfigurationError
from .base import row_key


class RAPID:
    """Retention-ordered row allocator with load-dependent refresh."""

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        default_retention_s: float = JEDEC_TREFW,
        guardband: float = 0.5,
    ) -> None:
        if total_rows <= 0 or bits_per_row <= 0:
            raise ConfigurationError("row geometry must be positive")
        if not (0.0 < guardband <= 1.0):
            raise ConfigurationError("guardband must lie in (0, 1]")
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.default_retention_s = default_retention_s
        self.guardband = guardband
        self._retention: Dict[Hashable, float] = {}
        self._allocated: set = set()

    # ------------------------------------------------------------------
    # Learning per-row retention
    # ------------------------------------------------------------------
    def learn_row_retention(self, row: Hashable, retention_s: float) -> None:
        """Record (or tighten) the weakest-cell retention estimate of a row."""
        if retention_s <= 0.0:
            raise ConfigurationError("retention must be positive")
        current = self._retention.get(row)
        if current is None or retention_s < current:
            self._retention[row] = retention_s

    def learn_from_failing_cells(self, cells: Iterable[Hashable], tested_interval_s: float) -> int:
        """Rows containing cells that failed a tested exposure retain less
        than that exposure; returns the number of rows tightened."""
        tightened = 0
        for cell in cells:
            row = row_key(cell, self.bits_per_row)
            before = self._retention.get(row)
            self.learn_row_retention(row, tested_interval_s)
            if before != self._retention[row]:
                tightened += 1
        return tightened

    def learn_survivors(self, rows: Iterable[Hashable], survived_interval_s: float) -> None:
        """Rows that passed an exposure retain at least that long: raise
        their estimate (never above what failures established)."""
        for row in rows:
            current = self._retention.get(row)
            if current is None or survived_interval_s > current:
                # Only raise if no failure has bounded the row below this.
                if current is None:
                    self._retention[row] = survived_interval_s

    def row_retention(self, row: Hashable) -> float:
        """Best-known retention of a row (conservative default if unknown)."""
        return self._retention.get(row, self.default_retention_s)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def strongest_rows(self, n_rows: int) -> List[Hashable]:
        """The ``n_rows`` longest-retention *profiled* rows, strongest first."""
        ranked = sorted(self._retention.items(), key=lambda kv: -kv[1])
        return [row for row, _ in ranked[:n_rows]]

    def allocate(self, n_rows: int) -> List[Hashable]:
        """Place data in the strongest free rows; returns the chosen rows."""
        if n_rows <= 0:
            raise ConfigurationError("n_rows must be positive")
        free_profiled = [
            (retention, row)
            for row, retention in self._retention.items()
            if row not in self._allocated
        ]
        free_profiled.sort(key=lambda pair: -pair[0])
        chosen = [row for _, row in free_profiled[:n_rows]]
        remaining = n_rows - len(chosen)
        if remaining > 0:
            # Fall back to unprofiled rows (conservative retention).
            unprofiled_budget = self.total_rows - len(self._retention)
            used_unprofiled = sum(
                1 for row in self._allocated if row not in self._retention
            )
            if remaining > unprofiled_budget - used_unprofiled:
                raise CapacityError("not enough free rows to allocate")
            chosen.extend(("unprofiled", i) for i in range(used_unprofiled, used_unprofiled + remaining))
        self._allocated.update(chosen)
        return chosen

    def release(self, rows: Iterable[Hashable]) -> None:
        for row in rows:
            self._allocated.discard(row)

    @property
    def allocated_rows(self) -> int:
        return len(self._allocated)

    @property
    def utilization(self) -> float:
        return len(self._allocated) / self.total_rows

    # ------------------------------------------------------------------
    # Refresh policy
    # ------------------------------------------------------------------
    def required_refresh_interval_s(self) -> float:
        """Refresh interval dictated by the weakest allocated row.

        The guardband derates the weakest retention (RAPID refreshes well
        before the weakest allocated cell could fail).  With nothing
        allocated, refresh could be arbitrarily slow; the JEDEC default is
        returned as a floor for an empty machine's sanity.
        """
        if not self._allocated:
            return self.default_retention_s
        weakest = min(self.row_retention(row) for row in self._allocated)
        return max(weakest * self.guardband, self.default_retention_s)

    def refresh_savings_fraction(self, baseline_interval_s: float = JEDEC_TREFW) -> float:
        """Refresh-operation savings versus refreshing everything at baseline.

        Only allocated rows need refreshing at all under RAPID's
        quasi-non-volatile model.
        """
        baseline_ops = self.total_rows / baseline_interval_s
        if not self._allocated:
            return 1.0
        ops = len(self._allocated) / self.required_refresh_interval_s()
        return 1.0 - ops / baseline_ops
