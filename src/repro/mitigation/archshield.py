"""ArchShield-style architectural fault tolerance (Nair et al., ISCA 2013;
paper Section 7.1.1).

ArchShield reserves a slice of DRAM (4% in the paper) for a *FaultMap* plus
replicas of faulty words.  The memory controller checks each access against
the FaultMap; accesses to words with known-faulty cells are additionally
served from the replica area.  REAPER feeds ArchShield by writing all
discovered failing cells into the FaultMap after each profiling round.

The model here tracks word-granularity entries, enforces the reserved-area
capacity, and exposes the two quantities the end-to-end evaluation needs:
DRAM capacity overhead and the expected slowdown from replica accesses.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

from ..errors import CapacityError, ConfigurationError
from .base import MitigationMechanism


def word_key(cell: Hashable, bits_per_word: int) -> Hashable:
    """Map a cell reference to its data-word reference.

    Integer cell ids map to integer word ids; ``(chip, flat)`` module refs
    map to ``(chip, word)``.
    """
    if isinstance(cell, tuple):
        chip, flat = cell
        return (chip, int(flat) // bits_per_word)
    return int(cell) // bits_per_word


class ArchShield(MitigationMechanism):
    """Word-replication fault map held in reserved DRAM.

    Parameters
    ----------
    capacity_bits:
        Total DRAM capacity being protected.
    reserve_fraction:
        Fraction of DRAM set aside for the FaultMap and replicas (paper: 4%).
    bits_per_word:
        Data word granularity of FaultMap entries (64-bit words).
    entry_overhead_bits:
        Reserved-area cost of one faulty word: its replica plus FaultMap
        bookkeeping.
    replica_access_penalty:
        Relative cost of an access that must also touch the replica area
        (an extra DRAM access, i.e. ~2x on that access).
    """

    name = "ArchShield"

    def __init__(
        self,
        capacity_bits: int,
        reserve_fraction: float = 0.04,
        bits_per_word: int = 64,
        entry_overhead_bits: int = 128,
        replica_access_penalty: float = 1.0,
    ) -> None:
        super().__init__()
        if capacity_bits <= 0:
            raise ConfigurationError("capacity_bits must be positive")
        if not (0.0 < reserve_fraction < 1.0):
            raise ConfigurationError("reserve_fraction must lie in (0, 1)")
        self.capacity_bits = capacity_bits
        self.reserve_fraction = reserve_fraction
        self.bits_per_word = bits_per_word
        self.entry_overhead_bits = entry_overhead_bits
        self.replica_access_penalty = replica_access_penalty
        self._entries: Dict[Hashable, int] = {}  # word -> faulty-cell count

    # ------------------------------------------------------------------
    @property
    def max_entries(self) -> int:
        """Faulty words the reserved area can hold."""
        return int(self.capacity_bits * self.reserve_fraction) // self.entry_overhead_bits

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def utilization(self) -> float:
        """Fraction of the reserved area in use."""
        return self.entry_count / self.max_entries if self.max_entries else 1.0

    @property
    def capacity_overhead_fraction(self) -> float:
        """DRAM given up for the mechanism (fixed by the reservation)."""
        return self.reserve_fraction

    def _absorb(self, new_cells: Iterable[Hashable]) -> None:
        for cell in new_cells:
            word = word_key(cell, self.bits_per_word)
            if word not in self._entries:
                if len(self._entries) >= self.max_entries:
                    raise CapacityError(
                        f"ArchShield FaultMap full ({self.max_entries} entries); "
                        "the reach conditions produce more (true + false positive) "
                        "failures than the reserved area can replicate"
                    )
                self._entries[word] = 0
            self._entries[word] += 1

    def word_is_faulty(self, word: Hashable) -> bool:
        return word in self._entries

    def expected_slowdown(self, faulty_access_fraction: float) -> float:
        """Average access-cost multiplier given a faulty-word access rate.

        The paper reports ~1% overall performance cost at a 1024 ms refresh
        interval; this corresponds to a small ``faulty_access_fraction``
        because faulty words are rare and caching filters most accesses.
        """
        if not (0.0 <= faulty_access_fraction <= 1.0):
            raise ConfigurationError("faulty_access_fraction must lie in [0, 1]")
        return 1.0 + faulty_access_fraction * self.replica_access_penalty
