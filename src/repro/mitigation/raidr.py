"""RAIDR-style multi-rate refresh (Liu et al., ISCA 2012; Section 7.1.2).

RAIDR bins DRAM rows by the retention time of their weakest cell and
refreshes each bin at its own rate: rows containing cells that fail at the
relaxed target interval stay at a conservative rate, everything else is
refreshed at the (much longer) target interval.  Bin membership lives in
Bloom filters -- false positives only ever move rows to *more* conservative
bins, preserving correctness.

REAPER integration: after each profiling round, every row containing a
discovered failing cell is inserted into the conservative bin
(:meth:`RAIDR.ingest` via the base-class interface).
"""

from __future__ import annotations

from typing import Hashable, Iterable, List, Sequence, Tuple

from ..errors import ConfigurationError
from .base import MitigationMechanism, row_key
from .bloom import BloomFilter


class RAIDR(MitigationMechanism):
    """Multi-rate refresh with Bloom-filter row bins.

    Parameters
    ----------
    total_rows:
        Number of refreshable rows in the protected DRAM.
    bits_per_row:
        Row size, for mapping failing cells to rows.
    bin_intervals_s:
        Refresh interval of each conservative bin, ascending (e.g. the
        classic RAIDR uses 64 ms and 128 ms bins).  Rows not in any bin are
        refreshed at ``relaxed_interval_s``.
    relaxed_interval_s:
        The target refresh interval for strong rows.
    expected_weak_rows / bloom_fp_target:
        Sizing of each bin's Bloom filter.
    """

    name = "RAIDR"

    def __init__(
        self,
        total_rows: int,
        bits_per_row: int,
        relaxed_interval_s: float,
        bin_intervals_s: Sequence[float] = (0.064,),
        expected_weak_rows: int = 4096,
        bloom_fp_target: float = 0.01,
    ) -> None:
        super().__init__()
        if total_rows <= 0 or bits_per_row <= 0:
            raise ConfigurationError("row geometry must be positive")
        if not bin_intervals_s or list(bin_intervals_s) != sorted(bin_intervals_s):
            raise ConfigurationError("bin intervals must be non-empty and ascending")
        if relaxed_interval_s <= bin_intervals_s[-1]:
            raise ConfigurationError(
                "the relaxed interval must exceed every conservative bin interval"
            )
        self.total_rows = total_rows
        self.bits_per_row = bits_per_row
        self.relaxed_interval_s = relaxed_interval_s
        self.bin_intervals_s = tuple(bin_intervals_s)
        self._bins: List[BloomFilter] = [
            BloomFilter.for_capacity(expected_weak_rows, bloom_fp_target)
            for _ in bin_intervals_s
        ]
        self._bin_rows: List[set] = [set() for _ in bin_intervals_s]

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _absorb(self, new_cells: Iterable[Hashable]) -> None:
        # Cells discovered at the target interval go into the *most
        # conservative* bin: all we know is that they cannot sustain the
        # relaxed interval.
        for cell in new_cells:
            self.assign_row(row_key(cell, self.bits_per_row), bin_index=0)

    def assign_row(self, row: Hashable, bin_index: int) -> None:
        """Place a row into a specific conservative bin.

        Systems with per-row retention estimates (e.g. from multi-interval
        profiling) can spread rows across bins; REAPER's single-target
        profiles use bin 0.
        """
        if not (0 <= bin_index < len(self._bins)):
            raise ConfigurationError(f"bin index {bin_index!r} out of range")
        if row not in self._bin_rows[bin_index]:
            self._bin_rows[bin_index].add(row)
            self._bins[bin_index].add(row)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def refresh_interval_for_row(self, row: Hashable) -> float:
        """The rate the memory controller applies to one row.

        Checks bins from most to least conservative; Bloom false positives
        therefore only shorten a row's interval (safe direction).
        """
        for interval, bloom in zip(self.bin_intervals_s, self._bins):
            if row in bloom:
                return interval
        return self.relaxed_interval_s

    def bin_row_count(self, bin_index: int) -> int:
        """Rows actually recorded in a bin (excluding Bloom false positives)."""
        return len(self._bin_rows[bin_index])

    def refreshes_per_second(self, include_bloom_fp: bool = True) -> float:
        """Aggregate row-refresh rate of the binned schedule.

        With ``include_bloom_fp`` the strong-row population is inflated by
        each filter's expected false-positive rate, charging the true cost
        of the Bloom representation.
        """
        rate = 0.0
        binned = 0
        strong_rows = self.total_rows - sum(len(rows) for rows in self._bin_rows)
        for interval, bloom, rows in zip(self.bin_intervals_s, self._bins, self._bin_rows):
            count = float(len(rows))
            if include_bloom_fp:
                count += strong_rows * bloom.expected_fp_rate()
            rate += count / interval
            binned += len(rows)
        remaining = self.total_rows - binned
        if include_bloom_fp:
            fp_total = sum(
                strong_rows * bloom.expected_fp_rate() for bloom in self._bins
            )
            remaining = max(remaining - fp_total, 0.0)
        rate += remaining / self.relaxed_interval_s
        return rate

    def refresh_savings_fraction(self, baseline_interval_s: float = 0.064) -> float:
        """Refresh operations avoided versus refreshing every row at baseline."""
        baseline = self.total_rows / baseline_interval_s
        return 1.0 - self.refreshes_per_second() / baseline
