"""A classic Bloom filter.

RAIDR stores its retention-time bins in Bloom filters so the memory
controller can test row membership in constant space.  The filter never
produces false negatives (a row recorded as weak is always treated as
weak -- the safety-critical direction); false positives merely cause some
strong rows to be refreshed more often than necessary.
"""

from __future__ import annotations

import hashlib
import math
from typing import Hashable

from ..errors import ConfigurationError


def _item_bytes(item: Hashable) -> bytes:
    if isinstance(item, bytes):
        return b"b:" + item
    if isinstance(item, str):
        return b"s:" + item.encode("utf-8")
    if isinstance(item, int):
        return b"i:" + str(item).encode("ascii")
    if isinstance(item, tuple):
        return b"t:" + b"|".join(_item_bytes(part) for part in item)
    raise ConfigurationError(f"unsupported Bloom filter item type {type(item).__name__}")


class BloomFilter:
    """Fixed-size Bloom filter with ``k`` independent hash functions."""

    def __init__(self, size_bits: int, n_hashes: int) -> None:
        if size_bits <= 0:
            raise ConfigurationError(f"size_bits must be positive, got {size_bits!r}")
        if n_hashes <= 0:
            raise ConfigurationError(f"n_hashes must be positive, got {n_hashes!r}")
        self.size_bits = size_bits
        self.n_hashes = n_hashes
        self._bits = bytearray((size_bits + 7) // 8)
        self._count = 0

    @classmethod
    def for_capacity(cls, expected_items: int, target_fp_rate: float = 0.01) -> "BloomFilter":
        """Size a filter for an expected load and false-positive budget."""
        if expected_items <= 0:
            raise ConfigurationError("expected_items must be positive")
        if not (0.0 < target_fp_rate < 1.0):
            raise ConfigurationError("target_fp_rate must lie in (0, 1)")
        size = max(8, int(math.ceil(-expected_items * math.log(target_fp_rate) / (math.log(2) ** 2))))
        hashes = max(1, int(round(size / expected_items * math.log(2))))
        return cls(size_bits=size, n_hashes=hashes)

    # ------------------------------------------------------------------
    def _positions(self, item: Hashable):
        payload = _item_bytes(item)
        for i in range(self.n_hashes):
            digest = hashlib.blake2b(payload, digest_size=8, salt=str(i).encode()[:16]).digest()
            yield int.from_bytes(digest, "big") % self.size_bits

    def add(self, item: Hashable) -> None:
        for pos in self._positions(item):
            self._bits[pos // 8] |= 1 << (pos % 8)
        self._count += 1

    def __contains__(self, item: Hashable) -> bool:
        return all(self._bits[pos // 8] & (1 << (pos % 8)) for pos in self._positions(item))

    # ------------------------------------------------------------------
    @property
    def items_added(self) -> int:
        """Number of adds performed (duplicates counted)."""
        return self._count

    @property
    def fill_ratio(self) -> float:
        """Fraction of filter bits set."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.size_bits

    def expected_fp_rate(self) -> float:
        """Analytic false-positive probability at the current load."""
        if self._count == 0:
            return 0.0
        exponent = -self.n_hashes * self._count / self.size_bits
        return (1.0 - math.exp(exponent)) ** self.n_hashes
