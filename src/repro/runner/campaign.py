"""Campaign driver: decompose a characterization campaign into work units.

The paper's campaign is embarrassingly parallel at the chip: every chip's
measurement sequence (interval sweep at the base temperature, then the
temperature-scaling points at the top interval) touches only that chip's
own thermally controlled environment.  This module makes that explicit:

``build_chip_units``
    One :class:`~repro.runner.units.WorkUnit` per chip, with a stable
    ``chip-NNNNN`` id and a plain-JSON payload describing everything the
    measurement needs.

``measure_chip``
    The picklable worker.  It rebuilds the chip's world from the payload --
    a single-chip :class:`~repro.infra.testbed.TestBed` whose weak-cell
    population, VRT process, and placement offset are all keyed by
    ``(seed, chip_id)`` via :func:`repro.rng.derive` -- so the result is a
    pure function of the payload: independent of which process runs it,
    in what order, or how many times the campaign was resumed.

``aggregate_chip_results``
    Folds ok results (sorted by chip id, so completion order is erased)
    back into the per-vendor failure-count tables the campaign summary is
    computed from.

The driver knows nothing about executors or stores; `analysis.campaign`
composes it with :class:`~repro.runner.engine.RunnerEngine`.
"""

from __future__ import annotations

import time
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs as obs_mod
from .. import rng as rng_mod
from ..conditions import Conditions
from ..core.bruteforce import BruteForceProfiler
from ..core.fleetprof import FleetProfiler
from ..dram.fleet import ChipFleet
from ..dram.geometry import ChipGeometry
from ..dram.shm import SharedPopulationStore
from ..dram.vendor import VENDORS, vendor_by_name
from ..errors import ConfigurationError
from ..infra.testbed import FleetBed, TestBed
from .engine import UnitDispatch
from .units import STATUS_FAILED, STATUS_OK, UnitResult, WorkUnit

#: Kind tag on every per-chip measurement unit.
CHIP_UNIT_KIND = "chip-measurement"

#: Kind tag on every fleet (chunk-of-chips) measurement unit.
FLEET_UNIT_KIND = "fleet-measurement"

#: Kind tag on every (chip-chunk x condition-tile) measurement unit.
TILE_UNIT_KIND = "fleet-tile-measurement"

#: Headroom factor between the largest profiled interval and the chip's
#: supported maximum, matching the legacy in-process campaign.
TREFI_HEADROOM = 1.05

#: vendor -> interval -> failure counts in ascending chip order.
CountTable = Dict[str, Dict[float, List[int]]]


def campaign_fingerprint(
    chips_per_vendor: int,
    geometry: ChipGeometry,
    iterations: int,
    seed: int,
    intervals_s: Sequence[float],
    temperatures_c: Sequence[float],
    vendor_names: Sequence[str],
) -> str:
    """Stable identity of one campaign configuration.

    Guards a run directory: resuming with any changed knob produces a
    different fingerprint and the store refuses the mix.
    """
    return rng_mod.fingerprint(
        seed,
        "campaign",
        chips_per_vendor,
        geometry.banks,
        geometry.rows_per_bank,
        geometry.bits_per_row,
        iterations,
        "intervals",
        *(repr(float(t)) for t in intervals_s),
        "temperatures",
        *(repr(float(t)) for t in temperatures_c),
        "vendors",
        *vendor_names,
    )


def build_chip_units(
    chips_per_vendor: int,
    geometry: ChipGeometry,
    iterations: int,
    seed: int,
    intervals_s: Sequence[float],
    temperatures_c: Sequence[float],
    vendor_names: Optional[Sequence[str]] = None,
    fast_path: Optional[bool] = None,
) -> Tuple[WorkUnit, ...]:
    """One work unit per chip, ids and chip numbering matching a full bed.

    Chip ids run sequentially across vendors in declaration order, exactly
    like :meth:`repro.infra.testbed.TestBed.build`, so a unit's chip is
    statistically identical to the one the legacy shared-bed campaign would
    have racked in the same slot.

    ``fast_path`` selects the failure-evaluation mode for the measurement
    worker (``None`` = worker-process default).  Both modes are
    byte-identical, so the flag is deliberately *not* part of
    :func:`campaign_fingerprint` -- results from either mode can resume
    each other's run directories.
    """
    if chips_per_vendor <= 0:
        raise ConfigurationError("chips_per_vendor must be positive")
    names = tuple(vendor_names) if vendor_names is not None else tuple(VENDORS)
    units: List[WorkUnit] = []
    chip_id = 0
    for vendor_name in names:
        vendor_by_name(vendor_name)  # fail fast on unknown vendors
        for _ in range(chips_per_vendor):
            units.append(
                WorkUnit(
                    unit_id=f"chip-{chip_id:05d}",
                    kind=CHIP_UNIT_KIND,
                    payload={
                        "chip_id": chip_id,
                        "vendor": vendor_name,
                        "seed": int(seed),
                        "iterations": int(iterations),
                        "geometry": {
                            "banks": geometry.banks,
                            "rows_per_bank": geometry.rows_per_bank,
                            "bits_per_row": geometry.bits_per_row,
                        },
                        "intervals_s": [float(t) for t in intervals_s],
                        "temperatures_c": [float(t) for t in temperatures_c],
                        **({} if fast_path is None else {"fast_path": bool(fast_path)}),
                    },
                )
            )
            chip_id += 1
    return tuple(units)


def measure_chip(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Measure one chip's full campaign contribution (worker function).

    Runs the interval sweep at the base temperature, then the remaining
    temperatures at the top interval, inside this chip's own single-chip
    testbed.  Returns plain JSON: ordered ``[condition, failure_count]``
    pairs (pairs, not a mapping, so duplicate temperatures keep their
    legacy append semantics).
    """
    geometry = ChipGeometry(**{k: int(v) for k, v in payload["geometry"].items()})
    intervals = [float(t) for t in payload["intervals_s"]]
    temperatures = [float(t) for t in payload["temperatures_c"]]
    chip_id = int(payload["chip_id"])
    fast_path = payload.get("fast_path")
    bed = TestBed.build_single(
        chip_id=chip_id,
        vendor=vendor_by_name(str(payload["vendor"])),
        geometry=geometry,
        seed=int(payload["seed"]),
        max_trefi_s=max(intervals) * TREFI_HEADROOM,
        fast_path=None if fast_path is None else bool(fast_path),
    )
    chip = bed.chips[0]
    profiler = BruteForceProfiler(iterations=int(payload["iterations"]))

    base_temp = temperatures[0]
    bed.set_ambient(base_temp)
    interval_failures: List[List[float]] = []
    for trefi in intervals:
        profile = profiler.run(chip, Conditions(trefi=trefi, temperature=base_temp))
        interval_failures.append([trefi, float(len(profile))])

    top = max(intervals)
    top_count = next(count for trefi, count in interval_failures if trefi == top)
    temperature_failures: List[List[float]] = [[base_temp, top_count]]
    for temperature in temperatures[1:]:
        bed.set_ambient(temperature)
        profile = profiler.run(chip, Conditions(trefi=top, temperature=temperature))
        temperature_failures.append([temperature, float(len(profile))])

    return {
        "chip_id": chip_id,
        "vendor": str(payload["vendor"]),
        "interval_failures": interval_failures,
        "temperature_failures": temperature_failures,
    }


def build_fleet_units(
    units: Sequence[WorkUnit],
    chips_per_unit: int,
    shm: Optional[Mapping[str, Any]] = None,
    megakernel: Optional[bool] = None,
) -> Tuple[WorkUnit, ...]:
    """Pack consecutive per-chip units into fleet transport chunks.

    Each chunk is a :data:`FLEET_UNIT_KIND` unit whose payload carries the
    member units verbatim (``{"members": [{"unit_id", "payload"}, ...]}``),
    so :func:`expand_fleet_result` can reconstruct exactly the per-chip
    results the per-chip path would have produced.  Chunk ids are derived
    from the member ids but are *transient* -- they never reach the result
    store (the engine expands chunks back to per-chip rows before
    persisting), so any chunk size can resume any run directory.

    ``shm`` is a :meth:`~repro.dram.shm.SharedPopulationStore.descriptor`;
    each chunk gets the descriptor narrowed to its own member chips, so a
    worker attaches to the run's shared segment instead of redrawing (or
    unpickling) weak-cell populations.  ``megakernel`` (when not ``None``)
    rides along as the worker's condition-grid fusion switch.  Both are
    execution knobs only: payload-wise the member units -- and therefore
    the per-chip results and resume fingerprints -- are unchanged.
    """
    if chips_per_unit <= 0:
        raise ConfigurationError(
            f"chips_per_unit must be positive, got {chips_per_unit!r}"
        )
    units = tuple(units)
    for unit in units:
        if unit.kind != CHIP_UNIT_KIND:
            raise ConfigurationError(
                f"fleet chunks are built from {CHIP_UNIT_KIND!r} units; "
                f"got kind {unit.kind!r}"
            )
    shm_chips = dict(shm["chips"]) if shm is not None else None
    chunks: List[WorkUnit] = []
    for start in range(0, len(units), chips_per_unit):
        chunk = units[start : start + chips_per_unit]
        payload: Dict[str, Any] = {
            "members": [
                {"unit_id": u.unit_id, "payload": dict(u.payload)} for u in chunk
            ]
        }
        if shm is not None:
            payload["shm"] = {
                "segment": str(shm["segment"]),
                "total": int(shm["total"]),
                "chips": {
                    str(u.payload["chip_id"]): list(
                        shm_chips[str(u.payload["chip_id"])]
                    )
                    for u in chunk
                },
            }
        if megakernel is not None:
            payload["megakernel"] = bool(megakernel)
        chunks.append(
            WorkUnit(
                unit_id=f"fleet-{chunk[0].unit_id}-{chunk[-1].unit_id}",
                kind=FLEET_UNIT_KIND,
                payload=payload,
            )
        )
    return tuple(chunks)


def _shared_fleet_config(members: Sequence[Mapping[str, Any]]) -> Mapping[str, Any]:
    """The chunk's shared measurement configuration, homogeneity-checked.

    Every key a fleet evaluates *together* (seed, iterations, geometry,
    intervals, temperatures, fast-path mode) must agree across members --
    a mixed chunk would silently measure chips under the wrong schedule.
    """
    first = members[0]["payload"]
    shared_keys = ("seed", "iterations", "geometry", "intervals_s", "temperatures_c")
    for member in members[1:]:
        payload = member["payload"]
        for key in shared_keys:
            if payload.get(key) != first.get(key):
                raise ConfigurationError(
                    f"fleet chunk members disagree on {key!r}: "
                    f"{payload.get(key)!r} vs {first.get(key)!r}"
                )
        if payload.get("fast_path") != first.get("fast_path"):
            raise ConfigurationError(
                "fleet chunk members disagree on 'fast_path'"
            )
    return first


def measure_fleet(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Measure one chunk of chips fleet-fused (worker function).

    Runs exactly :func:`measure_chip`'s schedule -- the interval sweep at
    the base temperature, then the remaining temperatures at the top
    interval -- on every member chip at once through a
    :class:`~repro.infra.testbed.FleetBed` and
    :class:`~repro.core.fleetprof.FleetProfiler`.  Returns
    ``{"chips": [{"unit_id", "value"}, ...]}`` in member order, where each
    ``value`` is byte-identical to the member's :func:`measure_chip`
    return.

    Two optional chunk-level keys change *how*, never *what*:

    ``payload["shm"]``
        Shared-memory descriptor from :func:`build_fleet_units`.  The
        worker attaches to the run's population segment, builds every chip
        on zero-copy views, and (when the chunk's chips are contiguous in
        the segment) hands the stacked arrays to the fleet without
        concatenating.  The segment is attached read-only for the duration
        of the call and never unlinked here -- the campaign owns the
        segment's lifetime.

    ``payload["megakernel"]``
        Condition-grid fusion switch (default on): the base-temperature
        interval sweep collapses into one
        :meth:`~repro.core.fleetprof.FleetProfiler.run_grid` pass, and each
        remaining temperature point into another.
    """
    members = list(payload["members"])
    if not members:
        raise ConfigurationError("a fleet unit needs at least one member chip")
    first = _shared_fleet_config(members)
    geometry = ChipGeometry(**{k: int(v) for k, v in first["geometry"].items()})
    intervals = [float(t) for t in first["intervals_s"]]
    temperatures = [float(t) for t in first["temperatures_c"]]
    fast_path = first.get("fast_path")
    megakernel = bool(payload.get("megakernel", True))
    chip_ids = [int(m["payload"]["chip_id"]) for m in members]

    store: Optional[SharedPopulationStore] = None
    samples = None
    backing = None
    if payload.get("shm") is not None:
        store = SharedPopulationStore.attach(payload["shm"])
        samples = {chip_id: store.sample(chip_id) for chip_id in chip_ids}
        backing = store.fleet_backing(chip_ids)
    try:
        bed = FleetBed.build(
            members=[
                (chip_id, vendor_by_name(str(m["payload"]["vendor"])))
                for chip_id, m in zip(chip_ids, members)
            ],
            geometry=geometry,
            seed=int(first["seed"]),
            max_trefi_s=max(intervals) * TREFI_HEADROOM,
            fast_path=None if fast_path is None else bool(fast_path),
            samples=samples,
        )
        fleet = ChipFleet(bed.chips, backing=backing)
        profiler = FleetProfiler(iterations=int(first["iterations"]))

        base_temp = temperatures[0]
        bed.set_ambient(base_temp)
        interval_failures: List[List[List[float]]] = [[] for _ in members]
        grid = [Conditions(trefi=t, temperature=base_temp) for t in intervals]
        for ci, results in enumerate(
            profiler.run_grid(fleet, grid, megakernel=megakernel)
        ):
            for i, result in enumerate(results):
                interval_failures[i].append([intervals[ci], float(len(result))])

        top = max(intervals)
        temperature_failures: List[List[List[float]]] = []
        for rows in interval_failures:
            top_count = next(count for trefi, count in rows if trefi == top)
            temperature_failures.append([[base_temp, top_count]])
        for temperature in temperatures[1:]:
            bed.set_ambient(temperature)
            (results,) = profiler.run_grid(
                fleet,
                [Conditions(trefi=top, temperature=temperature)],
                megakernel=megakernel,
            )
            for i, result in enumerate(results):
                temperature_failures[i].append([temperature, float(len(result))])

        return {
            "chips": [
                {
                    "unit_id": member["unit_id"],
                    "value": {
                        "chip_id": chip_ids[i],
                        "vendor": str(member["payload"]["vendor"]),
                        "interval_failures": interval_failures[i],
                        "temperature_failures": temperature_failures[i],
                    },
                }
                for i, member in enumerate(members)
            ]
        }
    finally:
        if store is not None:
            # Drop our view-holding locals, then detach (never unlink --
            # the campaign owns the segment).  Detaching is best-effort:
            # any surviving view keeps the mapping alive until collected.
            del samples, backing
            try:
                del bed, fleet
            except UnboundLocalError:
                pass
            store.close()


def expand_fleet_result(
    unit: WorkUnit, result: UnitResult
) -> Tuple[UnitResult, ...]:
    """Convert one fleet chunk's result into per-chip results.

    An ok chunk yields one ok row per member carrying exactly the value
    :func:`measure_chip` would have produced; a failed chunk yields one
    failed row per member sharing the chunk's :class:`UnitFailure` (every
    member chip is unmeasured -- the retry already happened in-worker).
    ``elapsed_s`` is split evenly across members; it is bookkeeping only
    and never participates in aggregation.
    """
    members = list(unit.payload["members"])
    elapsed = result.elapsed_s / len(members) if members else 0.0
    if not result.ok:
        return tuple(
            UnitResult(
                unit_id=str(member["unit_id"]),
                status=STATUS_FAILED,
                error=result.error,
                attempts=result.attempts,
                elapsed_s=elapsed,
            )
            for member in members
        )
    chips = list(result.value["chips"]) if isinstance(result.value, Mapping) else None
    if chips is None or [str(c["unit_id"]) for c in chips] != [
        str(m["unit_id"]) for m in members
    ]:
        raise ConfigurationError(
            f"fleet result for {unit.unit_id!r} does not cover its members "
            "exactly; the worker and the chunk payload disagree"
        )
    return tuple(
        UnitResult(
            unit_id=str(chip["unit_id"]),
            status=STATUS_OK,
            value=chip["value"],
            attempts=result.attempts,
            elapsed_s=elapsed,
        )
        for chip in chips
    )


def fleet_dispatch(
    chips_per_unit: int,
    shm: Optional[Mapping[str, Any]] = None,
    megakernel: Optional[bool] = None,
) -> UnitDispatch:
    """A :class:`~repro.runner.engine.UnitDispatch` that ships chips to
    workers in fleet chunks of ``chips_per_unit``.

    ``shm`` (a shared-population segment descriptor) and ``megakernel``
    propagate to every chunk payload -- see :func:`build_fleet_units`.
    """
    if chips_per_unit <= 0:
        raise ConfigurationError(
            f"chips_per_unit must be positive, got {chips_per_unit!r}"
        )

    def group(pending: Tuple[WorkUnit, ...]) -> Tuple[WorkUnit, ...]:
        return build_fleet_units(
            pending, chips_per_unit, shm=shm, megakernel=megakernel
        )

    return UnitDispatch(worker=measure_fleet, group=group, expand=expand_fleet_result)


# ----------------------------------------------------------------------
# Two-dimensional work-plane sharding: (chip-chunk x condition-tile).
# ----------------------------------------------------------------------


def condition_plan(
    intervals_s: Sequence[float], temperatures_c: Sequence[float]
) -> Tuple[Tuple[float, float], ...]:
    """The campaign's per-chip condition sequence, in schedule order.

    ``(trefi, temperature)`` pairs: index ``i < len(intervals)`` is the
    interval sweep at the base temperature, index ``len(intervals) + j``
    is the top interval at ``temperatures[1 + j]`` -- exactly the order
    :func:`measure_chip` and :func:`measure_fleet` walk.  Condition tiles
    are contiguous ``[start, stop)`` slices of this sequence.
    """
    intervals = [float(t) for t in intervals_s]
    temperatures = [float(t) for t in temperatures_c]
    if not intervals or not temperatures:
        raise ConfigurationError("a condition plan needs intervals and temperatures")
    top = max(intervals)
    plan = [(trefi, temperatures[0]) for trefi in intervals]
    plan.extend((top, temperature) for temperature in temperatures[1:])
    return tuple(plan)


def tile_bounds(n_conditions: int, tiles: int) -> Tuple[Tuple[int, int], ...]:
    """Near-even contiguous partition of ``range(n_conditions)`` into
    ``tiles`` half-open ``[start, stop)`` slices (never empty: the tile
    count is clamped to the condition count)."""
    if n_conditions <= 0:
        raise ConfigurationError("n_conditions must be positive")
    if tiles <= 0:
        raise ConfigurationError(f"tiles must be positive, got {tiles!r}")
    tiles = min(int(tiles), int(n_conditions))
    base, extra = divmod(int(n_conditions), tiles)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for k in range(tiles):
        stop = start + base + (1 if k < extra else 0)
        bounds.append((start, stop))
        start = stop
    return tuple(bounds)


def auto_condition_tiles(n_conditions: int, n_chunks: int, workers: int) -> int:
    """Tiles per chunk that keep roughly 8 schedulable units per worker.

    Capped at 8 per chunk regardless of pool size: every tile pays a
    fixed cost (bed construction, segment attach, prefix seek)
    proportional to the chunk's chip count, so over-tiling trades real
    work for replay.  One worker gets one tile -- the chunk path's exact
    shape, minus reasons to pay the tile machinery at all.
    """
    if n_conditions <= 0:
        raise ConfigurationError("n_conditions must be positive")
    target = 8 * max(1, int(workers))
    tiles = -(-target // max(1, int(n_chunks)))
    return max(1, min(int(n_conditions), 8, tiles))


def build_tile_units(
    units: Sequence[WorkUnit],
    chips_per_unit: int,
    condition_tiles: int,
    shm: Optional[Mapping[str, Any]] = None,
    megakernel: Optional[bool] = None,
) -> Tuple[WorkUnit, ...]:
    """Cross fleet chunks with condition tiles into schedulable units.

    Chips chunk exactly like :func:`build_fleet_units`; each chunk's
    condition plan (see :func:`condition_plan`) splits into
    ``condition_tiles`` contiguous tiles, and every ``(chunk, tile)``
    pair becomes one :data:`TILE_UNIT_KIND` unit whose payload is the
    chunk payload plus ``"tile": [start, stop)``.  Units are ordered by
    descending :attr:`~repro.runner.units.WorkUnit.cost` -- the tile's
    exposure-dominated weight, so the largest-interval tiles launch
    first and the long poles never land last on a draining pool
    (unit id breaks ties, keeping the order deterministic).
    """
    if condition_tiles <= 0:
        raise ConfigurationError(
            f"condition_tiles must be positive, got {condition_tiles!r}"
        )
    chunks = build_fleet_units(units, chips_per_unit, shm=shm, megakernel=megakernel)
    if not chunks:
        return ()
    first = chunks[0].payload["members"][0]["payload"]
    plan = condition_plan(first["intervals_s"], first["temperatures_c"])
    top = max(trefi for trefi, _temperature in plan)
    # Per-condition relative weight: one unit of fixed overhead plus the
    # exposure itself (normalized by the top interval).  Seeked prefix
    # conditions cost a few percent of an evaluated one.
    weights = [1.0 + trefi / top for trefi, _temperature in plan]
    bounds = tile_bounds(len(plan), condition_tiles)
    tiles: List[WorkUnit] = []
    for chunk in chunks:
        n_members = len(chunk.payload["members"])
        for start, stop in bounds:
            cost = n_members * (
                sum(weights[start:stop]) + 0.05 * sum(weights[:start]) + 1.0
            )
            tiles.append(
                WorkUnit(
                    unit_id=f"tile-{chunk.unit_id}-c{start:04d}-{stop:04d}",
                    kind=TILE_UNIT_KIND,
                    payload={**chunk.payload, "tile": [start, stop]},
                    cost=cost,
                )
            )
    tiles.sort(key=lambda unit: (-unit.cost, unit.unit_id))
    return tuple(tiles)


def measure_fleet_tile(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Measure one (chip-chunk x condition-tile) unit (worker function).

    Builds the chunk's fleet exactly like :func:`measure_fleet`, then
    walks the condition plan replaying every chamber set-point in order:
    conditions before the tile are *seeked* past
    (:meth:`~repro.core.fleetprof.FleetProfiler.seek_grid` -- the
    deterministic entry-state replay: scalar clock schedule, O(1) RNG
    stream advances, no read evaluation), conditions inside
    ``payload["tile"] = [start, stop)`` are evaluated, and the walk stops
    at the tile's end.  Returns partial per-chip accumulators::

        {"chips": [{"unit_id": ..., "counts": [[cond_index, count], ...]},
                   ...]}

    keyed by plan index, which :func:`merge_tile_counts` folds -- exactly
    and order-independently -- back into :func:`measure_chip` values.
    """
    members = list(payload["members"])
    if not members:
        raise ConfigurationError("a tile unit needs at least one member chip")
    first = _shared_fleet_config(members)
    geometry = ChipGeometry(**{k: int(v) for k, v in first["geometry"].items()})
    intervals = [float(t) for t in first["intervals_s"]]
    temperatures = [float(t) for t in first["temperatures_c"]]
    fast_path = first.get("fast_path")
    megakernel = bool(payload.get("megakernel", True))
    n_intervals = len(intervals)
    n_conditions = n_intervals + len(temperatures) - 1
    tile = payload.get("tile", (0, n_conditions))
    start, stop = int(tile[0]), int(tile[1])
    if not 0 <= start < stop <= n_conditions:
        raise ConfigurationError(
            f"tile {tile!r} out of range for a {n_conditions}-condition plan"
        )
    chip_ids = [int(m["payload"]["chip_id"]) for m in members]

    store: Optional[SharedPopulationStore] = None
    samples = None
    backing = None
    if payload.get("shm") is not None:
        store = SharedPopulationStore.attach(payload["shm"])
        samples = {chip_id: store.sample(chip_id) for chip_id in chip_ids}
        backing = store.fleet_backing(chip_ids)
    try:
        with obs_mod.span(
            "kernel.tile.execute",
            chips=len(members),
            tile_start=start,
            tile_stop=stop,
            conditions=stop - start,
        ):
            bed = FleetBed.build(
                members=[
                    (chip_id, vendor_by_name(str(m["payload"]["vendor"])))
                    for chip_id, m in zip(chip_ids, members)
                ],
                geometry=geometry,
                seed=int(first["seed"]),
                max_trefi_s=max(intervals) * TREFI_HEADROOM,
                fast_path=None if fast_path is None else bool(fast_path),
                samples=samples,
            )
            fleet = ChipFleet(bed.chips, backing=backing)
            profiler = FleetProfiler(iterations=int(first["iterations"]))

            counts: List[Tuple[int, List[float]]] = []
            base_temp = temperatures[0]
            bed.set_ambient(base_temp)
            grid = [Conditions(trefi=t, temperature=base_temp) for t in intervals]
            base_stop = min(stop, n_intervals)
            if start < n_intervals:
                for k, results in enumerate(
                    profiler.run_grid(
                        fleet, grid, megakernel=megakernel, tile=(start, base_stop)
                    )
                ):
                    counts.append(
                        (start + k, [float(len(r)) for r in results])
                    )
            else:
                profiler.seek_grid(fleet, grid)

            top = max(intervals)
            for j, temperature in enumerate(temperatures[1:]):
                cond_index = n_intervals + j
                if cond_index >= stop:
                    break
                bed.set_ambient(temperature)
                point = [Conditions(trefi=top, temperature=temperature)]
                if cond_index < start:
                    profiler.seek_grid(fleet, point)
                else:
                    (results,) = profiler.run_grid(
                        fleet, point, megakernel=megakernel
                    )
                    counts.append(
                        (cond_index, [float(len(r)) for r in results])
                    )

            return {
                "chips": [
                    {
                        "unit_id": member["unit_id"],
                        "counts": [
                            [cond_index, per_chip[i]]
                            for cond_index, per_chip in counts
                        ],
                    }
                    for i, member in enumerate(members)
                ]
            }
    finally:
        if store is not None:
            # Same detach discipline as measure_fleet: drop view-holding
            # locals first, never unlink (the campaign owns the segment).
            del samples, backing
            try:
                del bed, fleet
            except UnboundLocalError:
                pass
            store.close()


def merge_tile_counts(
    members: Sequence[Mapping[str, Any]],
    tile_values: Iterable[Any],
) -> Dict[str, Dict[int, float]]:
    """Fold tile workers' partial counts into per-chip count vectors.

    The reduction is exact and order-independent: each ``(chip,
    condition)`` count is *assigned*, never summed, so any arrival order
    produces the same table, and a gap or an overlap -- a condition
    measured by zero or by two tiles -- is a hard
    :class:`~repro.errors.ConfigurationError` instead of a silently
    wrong total.  Returns ``{member unit_id: {plan index: count}}``
    covering every plan position.
    """
    first = _shared_fleet_config(members)
    n_conditions = len(first["intervals_s"]) + len(first["temperatures_c"]) - 1
    member_ids = [str(m["unit_id"]) for m in members]
    merged: Dict[str, Dict[int, float]] = {uid: {} for uid in member_ids}
    for value in tile_values:
        chips = list(value["chips"]) if isinstance(value, Mapping) else None
        if chips is None or [str(c["unit_id"]) for c in chips] != member_ids:
            raise ConfigurationError(
                "tile result does not cover its chunk's members exactly; "
                "the worker and the chunk payload disagree"
            )
        for chip in chips:
            table = merged[str(chip["unit_id"])]
            for cond_index, count in chip["counts"]:
                cond_index = int(cond_index)
                if cond_index in table:
                    raise ConfigurationError(
                        f"condition {cond_index} of {chip['unit_id']!r} was "
                        "measured by two tiles; the tile partition overlaps"
                    )
                table[cond_index] = float(count)
    for unit_id, table in merged.items():
        if len(table) != n_conditions:
            missing = sorted(set(range(n_conditions)) - set(table))
            raise ConfigurationError(
                f"tile results for {unit_id!r} leave conditions "
                f"{missing[:5]} unmeasured; the tile partition has gaps"
            )
    return merged


def _assemble_chip_value(
    member: Mapping[str, Any], counts: Mapping[int, float]
) -> Dict[str, Any]:
    """Reassemble one chip's :func:`measure_chip` value from merged
    per-condition counts (same expressions, same pair order, same
    first-match top-interval lookup -- byte-identical)."""
    payload = member["payload"]
    intervals = [float(t) for t in payload["intervals_s"]]
    temperatures = [float(t) for t in payload["temperatures_c"]]
    interval_failures = [
        [trefi, counts[i]] for i, trefi in enumerate(intervals)
    ]
    top = max(intervals)
    top_count = next(count for trefi, count in interval_failures if trefi == top)
    temperature_failures = [[temperatures[0], top_count]]
    for j, temperature in enumerate(temperatures[1:]):
        temperature_failures.append([temperature, counts[len(intervals) + j]])
    return {
        "chip_id": int(payload["chip_id"]),
        "vendor": str(payload["vendor"]),
        "interval_failures": interval_failures,
        "temperature_failures": temperature_failures,
    }


def fleet_tile_dispatch(
    chips_per_unit: int,
    condition_tiles: int,
    shm: Optional[Mapping[str, Any]] = None,
    megakernel: Optional[bool] = None,
    on_tile: Optional[Callable[[Mapping[str, Any]], None]] = None,
    observability: Optional["obs_mod.Observability"] = None,
) -> UnitDispatch:
    """A :class:`~repro.runner.engine.UnitDispatch` that shards the
    (chips x conditions) work plane in two dimensions.

    ``group`` crosses the pending chips' fleet chunks with
    ``condition_tiles`` contiguous condition tiles
    (:func:`build_tile_units`, largest-cost tiles first); ``expand``
    holds each chunk's partial results until its last tile reports, then
    folds them with the exact order-independent reduction
    (:func:`merge_tile_counts`) into per-chip rows byte-identical to the
    chunk and per-chip paths.  The engine's currency -- store rows,
    resume keys, progress -- stays the per-chip unit, so tile runs,
    chunk runs, and per-chip runs all resume each other's run
    directories.

    Every completed tile is observable twice over: the ``kernel.tile.*``
    metric family (completed counter, duration histogram, open-tiles and
    oldest-open-age gauges) lands on ``observability`` (default: the
    process-wide layer when enabled), and ``on_tile`` -- when given --
    receives a live ``{"done", "total", "open_groups", "oldest_open_s"}``
    progress mapping (the service feeds ``repro top`` from it).  A
    cooperative stop can leave chunks with only some tiles done; their
    per-chip results are withheld (a partial merge would be wrong), the
    dispatch's ``finalize`` emits a ``runner.tile.dropped`` diagnostic
    per partial chunk, and a resume re-runs those chunks' tiles.
    """
    if chips_per_unit <= 0:
        raise ConfigurationError(
            f"chips_per_unit must be positive, got {chips_per_unit!r}"
        )
    if condition_tiles <= 0:
        raise ConfigurationError(
            f"condition_tiles must be positive, got {condition_tiles!r}"
        )

    state: Dict[str, Dict[str, Any]] = {}
    progress = {"done": 0, "total": 0}

    def layer() -> Optional["obs_mod.Observability"]:
        if observability is not None:
            return observability
        return obs_mod.get() if obs_mod.enabled() else None

    def group_key(unit: WorkUnit) -> str:
        members = unit.payload["members"]
        return f"{members[0]['unit_id']}-{members[-1]['unit_id']}"

    def open_groups() -> List[Dict[str, Any]]:
        return [
            entry
            for entry in state.values()
            if set(entry["results"]) != entry["expected"]
        ]

    def group(pending: Tuple[WorkUnit, ...]) -> Tuple[WorkUnit, ...]:
        state.clear()
        tiles = build_tile_units(
            pending, chips_per_unit, condition_tiles, shm=shm, megakernel=megakernel
        )
        now = time.monotonic()
        progress["done"], progress["total"] = 0, len(tiles)
        for unit in tiles:
            entry = state.setdefault(
                group_key(unit),
                {"expected": set(), "results": {}, "members": None, "last": now},
            )
            entry["expected"].add(unit.unit_id)
            entry["members"] = unit.payload["members"]
        active = layer()
        if active is not None and tiles:
            active.gauge("kernel.tile.plan", len(tiles))
            active.gauge("kernel.tile.open", len(tiles))
        return tiles

    def expand(
        chunk_unit: WorkUnit, result: UnitResult
    ) -> Tuple[UnitResult, ...]:
        entry = state[group_key(chunk_unit)]
        entry["results"][result.unit_id] = result
        now = time.monotonic()
        entry["last"] = now
        progress["done"] += 1
        complete = set(entry["results"]) == entry["expected"]
        pending_entries = open_groups()
        oldest = max((now - e["last"] for e in pending_entries), default=0.0)
        active = layer()
        if active is not None:
            active.counter("kernel.tile.completed", status=result.status)
            active.observe(
                "kernel.tile.seconds", result.elapsed_s, status=result.status
            )
            active.gauge("kernel.tile.open", progress["total"] - progress["done"])
            active.gauge("kernel.tile.oldest_open_s", oldest)
            active.emit(
                "runner.tile",
                unit_id=result.unit_id,
                tile=list(chunk_unit.payload.get("tile", ())),
                status=result.status,
                done=progress["done"],
                total=progress["total"],
            )
        if on_tile is not None:
            on_tile(
                {
                    "done": progress["done"],
                    "total": progress["total"],
                    "open_groups": len(pending_entries),
                    "oldest_open_s": oldest,
                }
            )
        if not complete:
            return ()
        members = list(entry["members"])
        rows = [entry["results"][uid] for uid in sorted(entry["expected"])]
        attempts = max(r.attempts for r in rows)
        elapsed = sum(r.elapsed_s for r in rows) / len(members)
        failed = next((r for r in rows if not r.ok), None)
        if failed is not None:
            return tuple(
                UnitResult(
                    unit_id=str(member["unit_id"]),
                    status=STATUS_FAILED,
                    error=failed.error,
                    attempts=attempts,
                    elapsed_s=elapsed,
                )
                for member in members
            )
        merged = merge_tile_counts(members, [r.value for r in rows])
        return tuple(
            UnitResult(
                unit_id=str(member["unit_id"]),
                status=STATUS_OK,
                value=_assemble_chip_value(member, merged[str(member["unit_id"])]),
                attempts=attempts,
                elapsed_s=elapsed,
            )
            for member in members
        )

    def finalize() -> Tuple[UnitResult, ...]:
        active = layer()
        for key, entry in sorted(state.items()):
            got = len(entry["results"])
            if got and got < len(entry["expected"]):
                if active is not None:
                    active.emit(
                        "runner.tile.dropped",
                        group=key,
                        completed=got,
                        expected=len(entry["expected"]),
                    )
        state.clear()
        return ()

    return UnitDispatch(
        worker=measure_fleet_tile, group=group, expand=expand, finalize=finalize
    )


def aggregate_chip_results(
    results: Iterable[UnitResult],
) -> Tuple[CountTable, CountTable]:
    """Fold ok unit results into (interval, temperature) count tables.

    Results are sorted by chip id first, so the tables -- and everything
    derived from them -- are identical for any completion order and for any
    serial/parallel/resumed execution mix.
    """
    ordered = sorted(
        (r.value for r in results if r.ok), key=lambda value: int(value["chip_id"])
    )
    interval_counts: CountTable = {}
    temperature_counts: CountTable = {}
    for value in ordered:
        vendor = str(value["vendor"])
        for trefi, count in value["interval_failures"]:
            interval_counts.setdefault(vendor, {}).setdefault(float(trefi), []).append(
                int(count)
            )
        for temperature, count in value["temperature_failures"]:
            temperature_counts.setdefault(vendor, {}).setdefault(
                float(temperature), []
            ).append(int(count))
    return interval_counts, temperature_counts
