"""Campaign driver: decompose a characterization campaign into work units.

The paper's campaign is embarrassingly parallel at the chip: every chip's
measurement sequence (interval sweep at the base temperature, then the
temperature-scaling points at the top interval) touches only that chip's
own thermally controlled environment.  This module makes that explicit:

``build_chip_units``
    One :class:`~repro.runner.units.WorkUnit` per chip, with a stable
    ``chip-NNNNN`` id and a plain-JSON payload describing everything the
    measurement needs.

``measure_chip``
    The picklable worker.  It rebuilds the chip's world from the payload --
    a single-chip :class:`~repro.infra.testbed.TestBed` whose weak-cell
    population, VRT process, and placement offset are all keyed by
    ``(seed, chip_id)`` via :func:`repro.rng.derive` -- so the result is a
    pure function of the payload: independent of which process runs it,
    in what order, or how many times the campaign was resumed.

``aggregate_chip_results``
    Folds ok results (sorted by chip id, so completion order is erased)
    back into the per-vendor failure-count tables the campaign summary is
    computed from.

The driver knows nothing about executors or stores; `analysis.campaign`
composes it with :class:`~repro.runner.engine.RunnerEngine`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .. import rng as rng_mod
from ..conditions import Conditions
from ..core.bruteforce import BruteForceProfiler
from ..dram.geometry import ChipGeometry
from ..dram.vendor import VENDORS, vendor_by_name
from ..errors import ConfigurationError
from ..infra.testbed import TestBed
from .units import UnitResult, WorkUnit

#: Kind tag on every per-chip measurement unit.
CHIP_UNIT_KIND = "chip-measurement"

#: Headroom factor between the largest profiled interval and the chip's
#: supported maximum, matching the legacy in-process campaign.
TREFI_HEADROOM = 1.05

#: vendor -> interval -> failure counts in ascending chip order.
CountTable = Dict[str, Dict[float, List[int]]]


def campaign_fingerprint(
    chips_per_vendor: int,
    geometry: ChipGeometry,
    iterations: int,
    seed: int,
    intervals_s: Sequence[float],
    temperatures_c: Sequence[float],
    vendor_names: Sequence[str],
) -> str:
    """Stable identity of one campaign configuration.

    Guards a run directory: resuming with any changed knob produces a
    different fingerprint and the store refuses the mix.
    """
    return rng_mod.fingerprint(
        seed,
        "campaign",
        chips_per_vendor,
        geometry.banks,
        geometry.rows_per_bank,
        geometry.bits_per_row,
        iterations,
        "intervals",
        *(repr(float(t)) for t in intervals_s),
        "temperatures",
        *(repr(float(t)) for t in temperatures_c),
        "vendors",
        *vendor_names,
    )


def build_chip_units(
    chips_per_vendor: int,
    geometry: ChipGeometry,
    iterations: int,
    seed: int,
    intervals_s: Sequence[float],
    temperatures_c: Sequence[float],
    vendor_names: Optional[Sequence[str]] = None,
    fast_path: Optional[bool] = None,
) -> Tuple[WorkUnit, ...]:
    """One work unit per chip, ids and chip numbering matching a full bed.

    Chip ids run sequentially across vendors in declaration order, exactly
    like :meth:`repro.infra.testbed.TestBed.build`, so a unit's chip is
    statistically identical to the one the legacy shared-bed campaign would
    have racked in the same slot.

    ``fast_path`` selects the failure-evaluation mode for the measurement
    worker (``None`` = worker-process default).  Both modes are
    byte-identical, so the flag is deliberately *not* part of
    :func:`campaign_fingerprint` -- results from either mode can resume
    each other's run directories.
    """
    if chips_per_vendor <= 0:
        raise ConfigurationError("chips_per_vendor must be positive")
    names = tuple(vendor_names) if vendor_names is not None else tuple(VENDORS)
    units: List[WorkUnit] = []
    chip_id = 0
    for vendor_name in names:
        vendor_by_name(vendor_name)  # fail fast on unknown vendors
        for _ in range(chips_per_vendor):
            units.append(
                WorkUnit(
                    unit_id=f"chip-{chip_id:05d}",
                    kind=CHIP_UNIT_KIND,
                    payload={
                        "chip_id": chip_id,
                        "vendor": vendor_name,
                        "seed": int(seed),
                        "iterations": int(iterations),
                        "geometry": {
                            "banks": geometry.banks,
                            "rows_per_bank": geometry.rows_per_bank,
                            "bits_per_row": geometry.bits_per_row,
                        },
                        "intervals_s": [float(t) for t in intervals_s],
                        "temperatures_c": [float(t) for t in temperatures_c],
                        **({} if fast_path is None else {"fast_path": bool(fast_path)}),
                    },
                )
            )
            chip_id += 1
    return tuple(units)


def measure_chip(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Measure one chip's full campaign contribution (worker function).

    Runs the interval sweep at the base temperature, then the remaining
    temperatures at the top interval, inside this chip's own single-chip
    testbed.  Returns plain JSON: ordered ``[condition, failure_count]``
    pairs (pairs, not a mapping, so duplicate temperatures keep their
    legacy append semantics).
    """
    geometry = ChipGeometry(**{k: int(v) for k, v in payload["geometry"].items()})
    intervals = [float(t) for t in payload["intervals_s"]]
    temperatures = [float(t) for t in payload["temperatures_c"]]
    chip_id = int(payload["chip_id"])
    fast_path = payload.get("fast_path")
    bed = TestBed.build_single(
        chip_id=chip_id,
        vendor=vendor_by_name(str(payload["vendor"])),
        geometry=geometry,
        seed=int(payload["seed"]),
        max_trefi_s=max(intervals) * TREFI_HEADROOM,
        fast_path=None if fast_path is None else bool(fast_path),
    )
    chip = bed.chips[0]
    profiler = BruteForceProfiler(iterations=int(payload["iterations"]))

    base_temp = temperatures[0]
    bed.set_ambient(base_temp)
    interval_failures: List[List[float]] = []
    for trefi in intervals:
        profile = profiler.run(chip, Conditions(trefi=trefi, temperature=base_temp))
        interval_failures.append([trefi, float(len(profile))])

    top = max(intervals)
    top_count = next(count for trefi, count in interval_failures if trefi == top)
    temperature_failures: List[List[float]] = [[base_temp, top_count]]
    for temperature in temperatures[1:]:
        bed.set_ambient(temperature)
        profile = profiler.run(chip, Conditions(trefi=top, temperature=temperature))
        temperature_failures.append([temperature, float(len(profile))])

    return {
        "chip_id": chip_id,
        "vendor": str(payload["vendor"]),
        "interval_failures": interval_failures,
        "temperature_failures": temperature_failures,
    }


def aggregate_chip_results(
    results: Iterable[UnitResult],
) -> Tuple[CountTable, CountTable]:
    """Fold ok unit results into (interval, temperature) count tables.

    Results are sorted by chip id first, so the tables -- and everything
    derived from them -- are identical for any completion order and for any
    serial/parallel/resumed execution mix.
    """
    ordered = sorted(
        (r.value for r in results if r.ok), key=lambda value: int(value["chip_id"])
    )
    interval_counts: CountTable = {}
    temperature_counts: CountTable = {}
    for value in ordered:
        vendor = str(value["vendor"])
        for trefi, count in value["interval_failures"]:
            interval_counts.setdefault(vendor, {}).setdefault(float(trefi), []).append(
                int(count)
            )
        for temperature, count in value["temperature_failures"]:
            temperature_counts.setdefault(vendor, {}).setdefault(
                float(temperature), []
            ).append(int(count))
    return interval_counts, temperature_counts
