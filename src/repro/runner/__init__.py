"""Parallel campaign execution engine with checkpoint/resume.

The subsystem behind population-scale characterization runs:

``units``
    Work-unit and result schema (JSON round-trippable).
``store``
    Durable JSONL result store under a run directory; manifest-guarded
    resume.
``executors``
    Serial and process-pool backends with in-worker bounded retry.
``progress``
    EWMA throughput / ETA tracking over the completion stream.
``engine``
    :class:`RunnerEngine`: skip persisted units, dispatch the rest, stream
    rows to the store, report keyed results.
``campaign``
    The characterization-campaign driver: per-chip decomposition, the
    picklable ``measure_chip`` worker, and order-erasing aggregation.

Determinism contract: a unit's value is a pure function of its payload
(all randomness is keyed via :func:`repro.rng.derive`), and aggregation
sorts by unit identity -- so serial, N-worker, and interrupted-then-resumed
executions of the same campaign produce byte-identical summaries.
"""

from .campaign import (
    CHIP_UNIT_KIND,
    FLEET_UNIT_KIND,
    TILE_UNIT_KIND,
    aggregate_chip_results,
    auto_condition_tiles,
    build_chip_units,
    build_fleet_units,
    build_tile_units,
    campaign_fingerprint,
    condition_plan,
    expand_fleet_result,
    fleet_dispatch,
    fleet_tile_dispatch,
    measure_chip,
    measure_fleet,
    measure_fleet_tile,
    merge_tile_counts,
    tile_bounds,
)
from .engine import (
    ProgressCallback,
    RunnerEngine,
    RunReport,
    RunStats,
    UnitDispatch,
)
from .executors import (
    BACKEND_NAMES,
    Backend,
    CostWindow,
    ProcessPoolBackend,
    SerialBackend,
    backend_from_spec,
    default_worker_count,
    execute_unit,
    unit_cost,
)
from .interrupt import GracefulStop, graceful_stop
from .progress import ProgressTracker
from .store import (
    EVENTS_NAME,
    MANIFEST_NAME,
    METRICS_NAME,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    NullStore,
    RESULTS_NAME,
    ResultStore,
    manifest_spec_diff,
)
from .units import UnitFailure, UnitResult, WorkUnit

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "CHIP_UNIT_KIND",
    "CostWindow",
    "EVENTS_NAME",
    "FLEET_UNIT_KIND",
    "TILE_UNIT_KIND",
    "GracefulStop",
    "MANIFEST_NAME",
    "METRICS_NAME",
    "NullStore",
    "STATUS_COMPLETE",
    "STATUS_INTERRUPTED",
    "STATUS_RUNNING",
    "RESULTS_NAME",
    "ProcessPoolBackend",
    "ProgressCallback",
    "ProgressTracker",
    "ResultStore",
    "RunReport",
    "RunStats",
    "RunnerEngine",
    "SerialBackend",
    "UnitDispatch",
    "UnitFailure",
    "UnitResult",
    "WorkUnit",
    "aggregate_chip_results",
    "auto_condition_tiles",
    "backend_from_spec",
    "build_chip_units",
    "build_fleet_units",
    "build_tile_units",
    "campaign_fingerprint",
    "condition_plan",
    "default_worker_count",
    "execute_unit",
    "expand_fleet_result",
    "fleet_dispatch",
    "fleet_tile_dispatch",
    "graceful_stop",
    "manifest_spec_diff",
    "measure_chip",
    "measure_fleet",
    "measure_fleet_tile",
    "merge_tile_counts",
    "tile_bounds",
    "unit_cost",
]
