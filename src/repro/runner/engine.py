"""The campaign execution engine: skip, dispatch, stream, aggregate.

:class:`RunnerEngine` ties the subsystem together.  Given a worker
function, a tuple of work units, and a run configuration, it

1. opens the result store (a durable JSONL directory, or an in-memory
   stand-in when no ``run_dir`` was requested) and validates the manifest
   fingerprint against any previous occupant,
2. partitions units into *satisfied* (an ``ok`` row already persisted --
   the checkpoint/resume path) and *pending*,
3. streams the pending units through the chosen backend, appending each
   result row as it completes and feeding the progress tracker/callback,
4. returns a :class:`RunReport` with every result keyed by unit id plus
   the run statistics.

Because units are self-contained and results are keyed, the report is
independent of completion order, worker placement, and how many times the
run was interrupted and resumed -- callers aggregate from the report and
get byte-identical answers every way the campaign can be executed.

Statistics are derived from the :class:`ProgressTracker`'s *observed*
completion stream, never from the planned unit count: if an exception
escapes the backend mid-run, every result that streamed in before the
failure is already persisted (rows are appended and flushed per unit) and
the exception propagates after the store is closed -- a relaunch with
``resume=True`` continues from exactly the observed frontier.

When the observability layer (:mod:`repro.obs`) is enabled -- or an
:class:`~repro.obs.Observability` instance is injected -- the engine
records per-unit wall time, retry, and queue-depth metrics and streams a
run event log to ``<run_dir>/events.jsonl`` alongside ``results.jsonl``.
Telemetry survives the process boundary: the backend captures each
unit's worker-side instrumentation (:func:`repro.obs.capture`) and ships
it back on the result, the engine merges the metric snapshots into the
active registry (counters sum, histograms merge exactly, gauges take the
latest observation) and replays the buffered worker events -- tagged
with their ``unit_id`` -- into the run event log.  At run end the merged
snapshot lands durably as ``<run_dir>/metrics.json``, the input to the
``python -m repro obs`` analyzer and exporters.
"""

from __future__ import annotations

import contextlib
import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from .. import obs as obs_mod
from ..errors import ConfigurationError
from ..obs.export import write_metrics_json
from .executors import Backend, WorkerFn, backend_from_spec
from .progress import ProgressTracker
from .store import (
    EVENTS_NAME,
    METRICS_NAME,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    NullStore,
    ResultStore,
)
from .units import UnitResult, WorkUnit, check_unique_ids

#: Called after every completed unit with (result, tracker).
ProgressCallback = Callable[[UnitResult, ProgressTracker], None]


@dataclass(frozen=True)
class UnitDispatch:
    """Chunk-aware transport: regroup pending units for the backend.

    The engine's currency -- planning, the result store, resume
    fingerprints, progress, aggregation -- stays the fine-grained unit
    (one chip).  A dispatch only changes how *pending* units travel to
    workers: ``group`` packs them into transport chunks (each a
    :class:`WorkUnit` of its own kind, e.g. ``fleet-measurement``),
    ``worker`` executes a chunk, and ``expand`` converts each chunk's
    :class:`UnitResult` back into per-member results before anything is
    stored or reported.  Chunk ids are transient: they never reach the
    result store, so a run directory written through any dispatch (or
    none) can be resumed by any other.

    ``expand`` receives ``(chunk_unit, chunk_result)`` and must return one
    result per member, ok or failed, in member order.  A *stateful*
    dispatch (e.g. the tile reduction, which folds several transport
    units into each member's result) may return ``()`` from ``expand``
    until it has seen everything a member needs; ``finalize`` -- when
    set -- is then called once after the backend's result stream ends
    (complete or cooperatively drained) and may return leftover per-unit
    results to persist.  Most finalizers return ``()`` and only emit
    diagnostics for work dropped by an interrupt.
    """

    worker: WorkerFn
    group: Callable[[Tuple[WorkUnit, ...]], Tuple[WorkUnit, ...]]
    expand: Callable[[WorkUnit, UnitResult], Tuple[UnitResult, ...]]
    finalize: Optional[Callable[[], Tuple[UnitResult, ...]]] = None


@dataclass(frozen=True)
class RunStats:
    """How a run went, operationally.

    ``executed`` counts units whose results were actually observed from
    the backend this run (``succeeded + failed``); ``skipped`` counts
    units satisfied from the result store.  On an uninterrupted run
    ``executed + skipped == total``; after a mid-run crash the shortfall
    is exactly the work that never happened.
    """

    total: int
    executed: int
    succeeded: int
    skipped: int
    failed: int
    elapsed_s: float
    #: A cooperative stop (``should_stop``) drained the run before every
    #: pending unit executed; the persisted frontier resumes it.
    interrupted: bool = False


@dataclass(frozen=True)
class RunReport:
    """Everything a run produced."""

    results: Dict[str, UnitResult] = field(default_factory=dict)
    stats: RunStats = RunStats(0, 0, 0, 0, 0, 0.0)

    def ok_results(self) -> Dict[str, UnitResult]:
        return {uid: r for uid, r in self.results.items() if r.ok}

    def failed_results(self) -> Dict[str, UnitResult]:
        return {uid: r for uid, r in self.results.items() if not r.ok}


class RunnerEngine:
    """Executes work units through a backend with persistence and progress.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process"``, a backend instance, or ``None``
        (auto: process pool when ``workers > 1``, else serial).
    workers:
        Pool size for the process backend; ignored by the serial one.
    run_dir:
        Durable run directory; ``None`` keeps results in memory only.
    resume:
        Allow appending to a run directory that already has results.
    max_retries:
        Re-attempts per unit before a failure row is recorded.
    progress:
        Optional callback invoked after every completed unit.
    observability:
        Explicit :class:`repro.obs.Observability` instance to record
        into.  ``None`` (the default) uses the process-wide layer when
        :func:`repro.obs.enabled` says it is on, else records nothing.
    store:
        Explicit result-store instance (anything implementing the
        :class:`~repro.runner.store.ResultStore` interface, e.g.
        :class:`repro.lake.LakeStore` to persist straight into a columnar
        lake).  When given, ``run_dir``/``resume`` construction is
        bypassed -- the engine opens, appends to, and closes the injected
        store instead.
    should_stop:
        Cooperative-cancellation probe (``() -> bool``).  Once it reads
        ``True`` the backend stops dispatching new units but *drains*
        the ones already in flight -- every drained result is persisted
        and reported, the manifest is marked ``interrupted``, and the run
        returns normally with ``stats.interrupted`` set.  This is the hook
        behind graceful SIGINT/SIGTERM shutdown and the service's
        ``DELETE /v1/jobs/{id}`` cancel: no torn tail, no lost work, and
        a straight ``resume=True`` relaunch finishes the remainder.
    """

    def __init__(
        self,
        backend: Union[str, Backend, None] = "serial",
        workers: Optional[int] = None,
        run_dir: Optional[str] = None,
        resume: bool = False,
        max_retries: int = 1,
        progress: Optional[ProgressCallback] = None,
        observability: Optional["obs_mod.Observability"] = None,
        should_stop: Optional[Callable[[], bool]] = None,
        store: Optional[Any] = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if store is not None and run_dir is not None:
            raise ConfigurationError(
                "pass either run_dir or an explicit store, not both"
            )
        self.backend = backend_from_spec(backend, workers=workers)
        self.run_dir = run_dir
        self.store = store
        self.resume = bool(resume)
        self.max_retries = int(max_retries)
        self.progress = progress
        self.observability = observability
        self.should_stop = should_stop

    def _active_obs(self) -> Optional["obs_mod.Observability"]:
        """The instance to record into, or ``None`` when instrumentation
        is off (explicit injection wins over the process-wide flag)."""
        if self.observability is not None:
            return self.observability
        return obs_mod.get() if obs_mod.enabled() else None

    # ------------------------------------------------------------------
    def run(
        self,
        worker: WorkerFn,
        units: Sequence[WorkUnit],
        manifest: Mapping[str, Any],
        dispatch: Optional[UnitDispatch] = None,
    ) -> RunReport:
        """Execute ``units`` through the backend; returns the full report.

        ``manifest`` must carry a ``"fingerprint"`` identifying the campaign
        configuration; it guards the run directory against cross-campaign
        contamination on resume.

        With ``dispatch``, pending units are regrouped into transport
        chunks executed by ``dispatch.worker`` and expanded back to
        per-unit results as each chunk completes -- ``worker`` is unused
        for execution but keeps the per-unit contract documented at the
        call site.  Everything persisted, tracked, and reported stays
        per-unit, so dispatched and plain runs of the same campaign share
        run directories freely.
        """
        units = tuple(units)
        check_unique_ids(units)
        store: Any
        if self.store is not None:
            store = self.store
        elif self.run_dir is not None:
            store = ResultStore(self.run_dir)
        else:
            store = NullStore()
        store.open(manifest, resume=self.resume)
        # A crash (or kill -9) leaves the manifest saying "running" -- the
        # truthful signal that the directory holds a resumable frontier.
        store.mark_status(STATUS_RUNNING)
        active = self._active_obs()
        with contextlib.ExitStack() as stack:
            stack.callback(store.close)
            if active is not None and store.run_dir is not None:
                stack.enter_context(active.sink_to(store.run_dir / EVENTS_NAME))

            persisted = store.load_results()
            satisfied = {
                unit.unit_id: persisted[unit.unit_id]
                for unit in units
                if unit.unit_id in persisted and persisted[unit.unit_id].ok
            }
            pending = tuple(u for u in units if u.unit_id not in satisfied)

            # The tracker sees the *full plan*: resume-skipped units enter
            # via note_skipped, so the rendered denominator is stable
            # across relaunches while remaining/ETA cover only real work.
            tracker = ProgressTracker(total=len(units))
            tracker.note_skipped(len(satisfied))
            tracker.start()
            if active is not None:
                if satisfied:
                    active.counter("runner.units", len(satisfied), status="skipped")
                active.gauge("runner.queue_depth", len(pending))
                active.emit(
                    "runner.start",
                    backend=self.backend.name,
                    total=len(units),
                    pending=len(pending),
                    skipped=len(satisfied),
                    run_dir=str(store.run_dir) if store.run_dir is not None else None,
                )

            if dispatch is None:
                exec_worker, exec_units = worker, pending
                chunk_by_id: Dict[str, WorkUnit] = {}
            else:
                exec_worker = dispatch.worker
                exec_units = tuple(dispatch.group(pending))
                check_unique_ids(exec_units)
                chunk_by_id = {unit.unit_id: unit for unit in exec_units}

            results: Dict[str, UnitResult] = dict(satisfied)
            # Root a trace for this run when no caller (e.g. a service
            # request) handed one down, so spans correlate end-to-end on
            # plain CLI runs too.  A self-rooted context is removed again
            # at run end -- traces never bleed across runs sharing a layer.
            if active is not None and active.tracer.context is None:
                active.tracer.context = obs_mod.TraceContext.new()
                stack.callback(setattr, active.tracer, "context", None)
            span = (
                active.span("runner.run", backend=self.backend.name)
                if active is not None
                else contextlib.nullcontext()
            )
            # Custom backends predating cooperative cancellation may not
            # take ``should_stop``; only pass it when a probe is installed.
            backend_kwargs: Dict[str, Any] = {
                "capture_telemetry": active is not None
            }
            if self.should_stop is not None:
                backend_kwargs["should_stop"] = self.should_stop
            try:
                with span as run_span:
                    if run_span is not None and exec_units:
                        # Stamp every dispatched unit with the run span's
                        # context: worker-side spans parent to this run.
                        trace_wire = run_span.context().to_json_dict()
                        exec_units = tuple(
                            dataclasses.replace(u, trace=trace_wire)
                            for u in exec_units
                        )
                    for raw in self.backend.run(
                        exec_worker,
                        exec_units,
                        self.max_retries,
                        **backend_kwargs,
                    ):
                        if dispatch is None:
                            batch: Tuple[UnitResult, ...] = (raw,)
                        else:
                            # Telemetry was captured once for the whole
                            # chunk; merge it before expansion so worker
                            # events keep their chunk's unit id.
                            if active is not None:
                                self._merge_telemetry(active, raw)
                            batch = tuple(
                                dispatch.expand(chunk_by_id[raw.unit_id], raw)
                            )
                        for result in batch:
                            results[result.unit_id] = result
                            store.append(result)
                            tracker.update(result)
                            if active is not None:
                                if dispatch is None:
                                    self._merge_telemetry(active, result)
                                self._record_unit(active, result, tracker)
                            if self.progress is not None:
                                self.progress(result, tracker)
                    if dispatch is not None and dispatch.finalize is not None:
                        for result in dispatch.finalize():
                            results[result.unit_id] = result
                            store.append(result)
                            tracker.update(result)
                            if active is not None:
                                self._record_unit(active, result, tracker)
                            if self.progress is not None:
                                self.progress(result, tracker)
            except BaseException as exc:
                # Every result observed so far is already appended and
                # flushed; surface the abort, close the store (ExitStack),
                # and let the caller resume from the persisted frontier.
                if active is not None:
                    active.emit(
                        "runner.aborted",
                        error=type(exc).__name__,
                        executed=tracker.completed,
                        succeeded=tracker.succeeded,
                        failed=tracker.failed,
                        remaining=tracker.remaining,
                    )
                raise

            interrupted = (
                self.should_stop is not None
                and self.should_stop()
                and tracker.remaining > 0
            )
            stats = RunStats(
                total=len(units),
                executed=tracker.completed,
                succeeded=tracker.succeeded,
                skipped=tracker.skipped,
                failed=tracker.failed,
                elapsed_s=tracker.elapsed_seconds,
                interrupted=interrupted,
            )
            store.mark_status(
                STATUS_INTERRUPTED if interrupted else STATUS_COMPLETE
            )
            if active is not None:
                if interrupted:
                    active.emit(
                        "runner.interrupted",
                        executed=tracker.completed,
                        remaining=tracker.remaining,
                    )
                active.observe("runner.run_seconds", stats.elapsed_s)
                active.emit(
                    "runner.finish",
                    total=stats.total,
                    executed=stats.executed,
                    succeeded=stats.succeeded,
                    skipped=stats.skipped,
                    failed=stats.failed,
                    elapsed_s=stats.elapsed_s,
                )
                if store.run_dir is not None:
                    write_metrics_json(
                        active.snapshot(),
                        store.run_dir / METRICS_NAME,
                        meta={
                            "backend": self.backend.name,
                            "total": stats.total,
                            "executed": stats.executed,
                            "succeeded": stats.succeeded,
                            "skipped": stats.skipped,
                            "failed": stats.failed,
                            "elapsed_s": stats.elapsed_s,
                            "interrupted": stats.interrupted,
                        },
                    )
            return RunReport(results=results, stats=stats)

    @staticmethod
    def _merge_telemetry(
        active: "obs_mod.Observability", result: UnitResult
    ) -> None:
        """Fold one unit's worker-side capture into the parent layer.

        Metric snapshots merge with the registry's deterministic algebra;
        buffered worker events replay into the parent sink tagged with the
        unit id and the worker's ``pid`` -- ``worker_pid`` is what the
        Chrome-trace exporter keys its per-worker lanes on (their
        worker-side ``ts`` is preserved; the sink only stamps fields the
        replay does not provide).
        """
        telemetry = result.telemetry
        if not telemetry:
            return
        active.metrics.merge_snapshot(telemetry.get("metrics", []))
        worker_pid = telemetry.get("pid")
        for row in telemetry.get("events", []):
            fields = {k: v for k, v in row.items() if k not in ("event", "seq")}
            fields.setdefault("unit_id", result.unit_id)
            if worker_pid is not None:
                fields.setdefault("worker_pid", worker_pid)
            active.emit(str(row.get("event", "worker.event")), **fields)

    @staticmethod
    def _record_unit(
        active: "obs_mod.Observability", result: UnitResult, tracker: ProgressTracker
    ) -> None:
        active.counter("runner.units", status=result.status)
        active.observe("runner.unit_seconds", result.elapsed_s, status=result.status)
        if result.attempts > 1:
            active.counter("runner.retries", result.attempts - 1)
        active.gauge("runner.queue_depth", tracker.remaining)
        active.emit(
            "runner.unit",
            unit_id=result.unit_id,
            status=result.status,
            attempts=result.attempts,
            elapsed_s=result.elapsed_s,
        )
