"""The campaign execution engine: skip, dispatch, stream, aggregate.

:class:`RunnerEngine` ties the subsystem together.  Given a worker
function, a tuple of work units, and a run configuration, it

1. opens the result store (a durable JSONL directory, or an in-memory
   stand-in when no ``run_dir`` was requested) and validates the manifest
   fingerprint against any previous occupant,
2. partitions units into *satisfied* (an ``ok`` row already persisted --
   the checkpoint/resume path) and *pending*,
3. streams the pending units through the chosen backend, appending each
   result row as it completes and feeding the progress tracker/callback,
4. returns a :class:`RunReport` with every result keyed by unit id plus
   the run statistics.

Because units are self-contained and results are keyed, the report is
independent of completion order, worker placement, and how many times the
run was interrupted and resumed -- callers aggregate from the report and
get byte-identical answers every way the campaign can be executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .executors import Backend, WorkerFn, backend_from_spec
from .progress import ProgressTracker
from .store import NullStore, ResultStore
from .units import UnitResult, WorkUnit, check_unique_ids

#: Called after every completed unit with (result, tracker).
ProgressCallback = Callable[[UnitResult, ProgressTracker], None]


@dataclass(frozen=True)
class RunStats:
    """How a run went, operationally."""

    total: int
    executed: int
    skipped: int
    failed: int
    elapsed_s: float


@dataclass(frozen=True)
class RunReport:
    """Everything a run produced."""

    results: Dict[str, UnitResult] = field(default_factory=dict)
    stats: RunStats = RunStats(0, 0, 0, 0, 0.0)

    def ok_results(self) -> Dict[str, UnitResult]:
        return {uid: r for uid, r in self.results.items() if r.ok}

    def failed_results(self) -> Dict[str, UnitResult]:
        return {uid: r for uid, r in self.results.items() if not r.ok}


class RunnerEngine:
    """Executes work units through a backend with persistence and progress.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"process"``, a backend instance, or ``None``
        (auto: process pool when ``workers > 1``, else serial).
    workers:
        Pool size for the process backend; ignored by the serial one.
    run_dir:
        Durable run directory; ``None`` keeps results in memory only.
    resume:
        Allow appending to a run directory that already has results.
    max_retries:
        Re-attempts per unit before a failure row is recorded.
    progress:
        Optional callback invoked after every completed unit.
    """

    def __init__(
        self,
        backend: Union[str, Backend, None] = "serial",
        workers: Optional[int] = None,
        run_dir: Optional[str] = None,
        resume: bool = False,
        max_retries: int = 1,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        self.backend = backend_from_spec(backend, workers=workers)
        self.run_dir = run_dir
        self.resume = bool(resume)
        self.max_retries = int(max_retries)
        self.progress = progress

    # ------------------------------------------------------------------
    def run(
        self,
        worker: WorkerFn,
        units: Sequence[WorkUnit],
        manifest: Mapping[str, Any],
    ) -> RunReport:
        """Execute ``units`` through the backend; returns the full report.

        ``manifest`` must carry a ``"fingerprint"`` identifying the campaign
        configuration; it guards the run directory against cross-campaign
        contamination on resume.
        """
        units = tuple(units)
        check_unique_ids(units)
        store: Union[ResultStore, NullStore]
        store = ResultStore(self.run_dir) if self.run_dir is not None else NullStore()
        store.open(manifest, resume=self.resume)
        try:
            persisted = store.load_results()
            satisfied = {
                unit.unit_id: persisted[unit.unit_id]
                for unit in units
                if unit.unit_id in persisted and persisted[unit.unit_id].ok
            }
            pending = tuple(u for u in units if u.unit_id not in satisfied)

            tracker = ProgressTracker(total=len(pending))
            tracker.note_skipped(len(satisfied))
            tracker.start()

            results: Dict[str, UnitResult] = dict(satisfied)
            for result in self.backend.run(worker, pending, self.max_retries):
                results[result.unit_id] = result
                store.append(result)
                tracker.update(result)
                if self.progress is not None:
                    self.progress(result, tracker)

            stats = RunStats(
                total=len(units),
                executed=len(pending),
                skipped=len(satisfied),
                failed=tracker.failed,
                elapsed_s=tracker.elapsed_seconds,
            )
            return RunReport(results=results, stats=stats)
        finally:
            store.close()
