"""Graceful-shutdown signal handling for campaign runs.

The engine's ``should_stop`` hook makes interruption cooperative: once the
probe reads ``True`` the backend stops dispatching, drains the units
already in flight, persists their results and telemetry, and marks the
manifest ``interrupted``.  This module provides the signal-side half for
the CLI (and anything else running an engine in a foreground process):
:func:`graceful_stop` installs SIGINT/SIGTERM handlers that flip a stop
event instead of tearing the process down mid-write.

The first signal requests the graceful drain; a second signal means the
operator is done waiting and raises :class:`KeyboardInterrupt`, falling
back to the engine's abort path (which still persists every result that
streamed in -- rows are appended and flushed per unit).

Signal handlers can only be installed from the main thread; elsewhere
(e.g. the service's job threads, which have their own stop events) the
context manager degrades to a plain event that nothing flips.
"""

from __future__ import annotations

import contextlib
import signal
import threading
from typing import Iterator, Tuple


class GracefulStop:
    """A stop request: ``is_set`` is the engine's ``should_stop`` probe."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.signals_seen = 0

    def request(self) -> None:
        self._event.set()

    def is_set(self) -> bool:
        return self._event.is_set()


@contextlib.contextmanager
def graceful_stop(
    signums: Tuple[int, ...] = (signal.SIGINT, signal.SIGTERM),
) -> Iterator[GracefulStop]:
    """Install drain-on-signal handlers for the with-block.

    Yields a :class:`GracefulStop` whose ``is_set`` method plugs straight
    into ``RunnerEngine(should_stop=...)`` /
    ``CharacterizationCampaign.run(should_stop=...)``.  Previous handlers
    are restored on exit.
    """
    stop = GracefulStop()

    def handler(signum, frame):  # noqa: ARG001 - signal handler signature
        stop.signals_seen += 1
        stop.request()
        if stop.signals_seen >= 2:
            # The operator signalled twice: stop waiting for the drain.
            raise KeyboardInterrupt

    previous = {}
    if threading.current_thread() is threading.main_thread():
        for signum in signums:
            previous[signum] = signal.signal(signum, handler)
    try:
        yield stop
    finally:
        for signum, prior in previous.items():
            signal.signal(signum, prior)
