"""Work-unit schema for the campaign execution engine.

A campaign decomposes into independent, order-free units of work.  Each
:class:`WorkUnit` is a pure description -- a stable id, a kind tag, and a
JSON-serializable payload -- with no behaviour attached, so units can be
pickled to worker processes, fingerprinted into run manifests, and compared
against a durable result store across process restarts.

:class:`UnitResult` is the matching outcome record: either an ``ok`` row
carrying the worker's JSON value, or a ``failed`` row carrying structured
error capture (type, message, traceback) after bounded retries.  Both
round-trip losslessly through JSON, which is what makes checkpoint/resume
byte-identical: a result read back from disk aggregates exactly like one
that never left memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: Result states a unit can end in.
STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass(frozen=True)
class WorkUnit:
    """One independent piece of campaign work.

    Parameters
    ----------
    unit_id:
        Stable identity, unique within a run; the resume key.  Derive it
        from the unit's configuration (e.g. ``chip-0017``) rather than from
        submission order so re-planning a campaign reproduces the same ids.
    kind:
        Dispatch tag naming the worker family (``"chip-measurement"``).
    payload:
        JSON-serializable mapping handed verbatim to the worker function.
    trace:
        Optional trace-context wire dict (``{"trace_id", "span_id"}``)
        stamped by the engine just before dispatch so worker-side spans
        correlate with the submitting request.  Pure observability
        metadata: excluded from equality, never fingerprinted, never
        persisted -- two units differing only in ``trace`` are the same
        unit.
    cost:
        Optional relative execution-cost hint for submission windowing
        (see :func:`repro.runner.executors.unit_cost`); builders that
        know their units' relative weight (e.g. condition tiles spanning
        different interval sums) stamp it so the pool keeps a
        cost-balanced in-flight set.  Pure scheduling metadata: excluded
        from equality, never fingerprinted, never persisted.
    """

    unit_id: str
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    trace: Optional[Mapping[str, Any]] = field(default=None, compare=False, repr=False)
    cost: Optional[float] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.unit_id:
            raise ConfigurationError("work unit needs a non-empty unit_id")
        if not self.kind:
            raise ConfigurationError("work unit needs a non-empty kind")


@dataclass(frozen=True)
class UnitFailure:
    """Structured capture of the exception that exhausted a unit's retries."""

    type: str
    message: str
    traceback: str

    def to_json_dict(self) -> Dict[str, str]:
        return {"type": self.type, "message": self.message, "traceback": self.traceback}

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "UnitFailure":
        return cls(
            type=str(data.get("type", "")),
            message=str(data.get("message", "")),
            traceback=str(data.get("traceback", "")),
        )

    @classmethod
    def from_exception(cls, exc: BaseException, tb_text: str) -> "UnitFailure":
        return cls(type=type(exc).__name__, message=str(exc), traceback=tb_text)


@dataclass(frozen=True)
class UnitResult:
    """Outcome of executing one :class:`WorkUnit`.

    ``value`` holds the worker's JSON-serializable return on success;
    ``error`` holds the :class:`UnitFailure` after retries are exhausted.
    ``elapsed_s`` is wall-clock bookkeeping only -- it never participates
    in aggregation, so resumed runs stay deterministic.

    ``telemetry`` is transient wire data: the worker-side observability
    capture (``{"metrics": snapshot rows, "events": buffered rows}``)
    shipped back for the parent to merge.  It is excluded from equality
    and from :meth:`to_json_dict`, so ``results.jsonl`` stays byte-for-byte
    independent of whether instrumentation was on.
    """

    unit_id: str
    status: str
    value: Optional[Any] = None
    error: Optional[UnitFailure] = None
    attempts: int = 1
    elapsed_s: float = 0.0
    telemetry: Optional[Mapping[str, Any]] = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.status not in (STATUS_OK, STATUS_FAILED):
            raise ConfigurationError(f"unknown unit status {self.status!r}")
        if self.status == STATUS_OK and self.error is not None:
            raise ConfigurationError("an ok result cannot carry an error")
        if self.status == STATUS_FAILED and self.error is None:
            raise ConfigurationError("a failed result must carry an error")

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_json_dict(self) -> Dict[str, Any]:
        row: Dict[str, Any] = {
            "unit_id": self.unit_id,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }
        if self.status == STATUS_OK:
            row["value"] = self.value
        else:
            assert self.error is not None
            row["error"] = self.error.to_json_dict()
        return row

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "UnitResult":
        error = data.get("error")
        return cls(
            unit_id=str(data["unit_id"]),
            status=str(data["status"]),
            value=data.get("value"),
            error=UnitFailure.from_json_dict(error) if error is not None else None,
            attempts=int(data.get("attempts", 1)),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


def check_unique_ids(units: Tuple[WorkUnit, ...]) -> None:
    """Reject a unit list with duplicate ids -- resume keys must be unique."""
    seen: Dict[str, int] = {}
    for unit in units:
        seen[unit.unit_id] = seen.get(unit.unit_id, 0) + 1
    duplicates = sorted(uid for uid, n in seen.items() if n > 1)
    if duplicates:
        raise ConfigurationError(f"duplicate work-unit ids: {', '.join(duplicates[:5])}")
