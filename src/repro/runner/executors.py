"""Execution backends: where campaign work units actually run.

Two interchangeable backends share one contract -- take a picklable worker
function plus a tuple of :class:`~repro.runner.units.WorkUnit` and yield
:class:`~repro.runner.units.UnitResult` objects *in completion order*:

``SerialBackend``
    Runs every unit in-process, in submission order.  The default: zero
    overhead, zero new failure modes, and the reference behaviour the
    parallel backend must reproduce byte-identically.

``ProcessPoolBackend``
    Fans units out across a :class:`concurrent.futures.ProcessPoolExecutor`
    (worker count defaults to the CPU affinity mask via
    :func:`default_worker_count`).  Because every unit is
    self-contained and seeded by key (:func:`repro.rng.derive`), placement
    and completion order cannot change any unit's value -- parallelism is
    pure wall-clock.

Retries happen *inside* the worker via :func:`execute_unit`, so an
exception never crosses the pool boundary as an exception: after
``max_retries`` re-attempts it comes back as a structured ``failed`` row
and the run keeps going.

When the engine runs with observability on, it asks the backend for
``capture_telemetry``: each unit executes under :func:`repro.obs.capture`,
which records the unit's instrumentation (chip commands, profiler
iterations, spans, events) into an isolated per-unit layer, and the
snapshot rides back on ``UnitResult.telemetry`` for the parent to merge.
The same capture runs on the serial backend, so serial and pooled runs
produce merged reports with identical content.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .. import obs as obs_mod
from ..errors import ConfigurationError
from .units import STATUS_FAILED, STATUS_OK, UnitFailure, UnitResult, WorkUnit

#: A worker takes the unit's payload mapping and returns a JSON value.
WorkerFn = Callable[[Any], Any]


def execute_unit(
    worker: WorkerFn,
    unit: WorkUnit,
    max_retries: int = 1,
    capture_telemetry: bool = False,
) -> UnitResult:
    """Run one unit with bounded retry, capturing failure as data.

    ``max_retries`` counts *re*-attempts: 1 means up to two executions.
    Runs in the worker process for pool backends, so a poisoned unit costs
    its own retries without a round-trip through the coordinator.

    With ``capture_telemetry`` the whole execution (retries included)
    records into an isolated observability layer whose snapshot is
    attached to the result as ``telemetry`` -- plain picklable dicts, so
    it crosses the pool boundary intact.  When the unit carries a trace
    context (stamped by the engine), the capture layer's tracer adopts
    it, executes the unit under a ``unit.execute`` span parented to the
    engine's run span, and the telemetry payload records this process's
    ``pid`` so the parent can lay worker spans out on per-worker lanes.
    """
    if not capture_telemetry:
        return _execute_unit(worker, unit, max_retries)
    with obs_mod.capture() as layer:
        context = (
            obs_mod.TraceContext.from_json_dict(unit.trace)
            if unit.trace is not None
            else None
        )
        if context is not None:
            # Traced dispatch: adopt the engine's context and bracket the
            # unit in a span so every unit contributes at least one
            # correlated worker-side span.  Untraced units record exactly
            # as before (no extra event), keeping legacy capture shapes.
            layer.tracer.context = context
            span = layer.span("unit.execute", unit_id=unit.unit_id, kind=unit.kind)
        else:
            span = contextlib.nullcontext()
        with span:
            result = _execute_unit(worker, unit, max_retries)
    return dataclasses.replace(
        result,
        telemetry={
            "metrics": layer.snapshot(),
            "events": list(layer.sink.events),
            "pid": os.getpid(),
        },
    )


def _execute_unit(worker: WorkerFn, unit: WorkUnit, max_retries: int) -> UnitResult:
    if max_retries < 0:
        raise ConfigurationError("max_retries must be non-negative")
    started = time.perf_counter()
    failure: Optional[UnitFailure] = None
    attempts = 0
    for attempt in range(max_retries + 1):
        attempts = attempt + 1
        try:
            value = worker(unit.payload)
        except Exception as exc:  # noqa: BLE001 - capture is the contract
            failure = UnitFailure.from_exception(exc, traceback.format_exc())
            continue
        return UnitResult(
            unit_id=unit.unit_id,
            status=STATUS_OK,
            value=value,
            attempts=attempts,
            elapsed_s=time.perf_counter() - started,
        )
    assert failure is not None
    return UnitResult(
        unit_id=unit.unit_id,
        status=STATUS_FAILED,
        error=failure,
        attempts=attempts,
        elapsed_s=time.perf_counter() - started,
    )


#: Cooperative-cancellation probe: ``True`` means "stop taking new work".
ShouldStop = Callable[[], bool]


class SerialBackend:
    """In-process, in-order execution; the reference backend."""

    name = "serial"

    def run(
        self,
        worker: WorkerFn,
        units: Tuple[WorkUnit, ...],
        max_retries: int = 1,
        capture_telemetry: bool = False,
        should_stop: Optional[ShouldStop] = None,
    ) -> Iterator[UnitResult]:
        for unit in units:
            if should_stop is not None and should_stop():
                return
            yield execute_unit(worker, unit, max_retries, capture_telemetry)


def default_worker_count() -> int:
    """Worker count the pool backend uses when none is requested.

    Respects the process's CPU *affinity* where the platform exposes it
    (``len(os.sched_getaffinity(0))``) -- a containerized CI runner pinned
    to 2 of a host's 64 cores gets 2 workers, not 64 -- falling back to
    ``os.cpu_count()`` on platforms without the call (macOS, Windows), when
    it errors, or when it reports an empty mask.  Always returns a positive
    count: ``os.cpu_count()`` itself may return ``None`` on exotic
    platforms, and a 0/None here would blow up pool construction.
    """
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            count = len(sched_getaffinity(0))
        except (OSError, ValueError):  # pragma: no cover - platform quirk
            count = 0
        if count > 0:
            return count
    return os.cpu_count() or 1


def unit_cost(unit: WorkUnit) -> float:
    """Relative execution cost of one unit, for submission windowing.

    An explicit :attr:`~repro.runner.units.WorkUnit.cost` (stamped by
    cost-aware builders such as ``build_tile_units``) wins.  Otherwise the
    JSON byte size of the payload stands in: transport weight tracks work
    for chunked campaign units (more member chips, bigger payload, more
    work), and for uniform payloads every estimate collapses to the same
    constant -- reproducing the fixed-window behaviour exactly.
    """
    if unit.cost is not None:
        return max(float(unit.cost), 1e-9)
    try:
        nbytes = len(json.dumps(unit.payload, separators=(",", ":"), default=str))
    except (TypeError, ValueError):  # pragma: no cover - non-JSON payload
        nbytes = 4096
    return max(1.0, nbytes / 4096.0)


class CostWindow:
    """Cost-aware in-flight window for the pool backend.

    The old fixed ``4 x pool`` *unit* window misbehaves at both extremes
    of a heterogeneous plan: many tiny units starve the pool (four cheap
    units per worker drain faster than the coordinator's refill round
    trip), while a few huge units hold ``4 x pool`` oversized payloads in
    the coordinator at once.  This window admits units until their
    *outstanding cost* reaches ``inflight_factor x pool x median-cost`` --
    a homogeneous plan therefore gets exactly the old window -- bounded
    below by ``pool + 1`` in-flight units (a worker must never idle
    waiting on the coordinator, however huge the units) and above by
    ``max_factor x pool`` units (absolute cap for degenerate estimates).
    """

    def __init__(
        self,
        pool_size: int,
        costs: Sequence[float],
        inflight_factor: int = 4,
        max_factor: int = 32,
    ) -> None:
        pool_size = max(1, int(pool_size))
        ordered = sorted(costs) or [1.0]
        reference = max(float(ordered[len(ordered) // 2]), 1e-9)
        self.budget = float(inflight_factor) * pool_size * reference
        self.min_inflight = pool_size + 1
        self.max_inflight = max(self.min_inflight, int(max_factor) * pool_size)
        self.inflight = 0
        self.inflight_cost = 0.0

    def admit(self, cost: float) -> bool:
        """Account for one more unit of ``cost`` if the window allows it."""
        if self.inflight >= self.max_inflight:
            return False
        if (
            self.inflight >= self.min_inflight
            and self.inflight_cost + cost > self.budget
        ):
            return False
        self.inflight += 1
        self.inflight_cost += float(cost)
        return True

    def complete(self, cost: float) -> None:
        """Release one unit's accounting as its result drains."""
        self.inflight -= 1
        self.inflight_cost -= float(cost)


class ProcessPoolBackend:
    """Fan units out across worker processes.

    Parameters
    ----------
    workers:
        Pool size; defaults to :func:`default_worker_count` (CPU affinity
        aware).  The worker function and unit payloads must be picklable
        (module-level functions and plain JSON payloads are).

    executor:
        An externally owned :class:`~concurrent.futures.ProcessPoolExecutor`
        to submit into instead of creating (and tearing down) a private
        pool per run.  The caller keeps ownership: the backend never shuts
        a shared executor down, so one pool can serve many concurrent
        campaigns (the ``repro.service`` job manager does exactly this).
        ``workers`` then only sizes this run's submission window -- its
        fair share of the shared pool -- not the pool itself.

    Submission is windowed by *cost* (:class:`CostWindow` over
    :func:`unit_cost`): outstanding submissions are capped at roughly
    ``INFLIGHT_FACTOR * workers`` median-cost units -- exactly the legacy
    fixed window for homogeneous plans -- and the window refills as
    results drain, so a 10k-unit campaign never holds every payload and
    future in the coordinator at once, a plan of oversized chunks never
    over-buffers them, and a plan of tiny tiles keeps enough in flight
    (up to ``MAX_INFLIGHT_FACTOR * workers``) that workers never starve.

    ``should_stop`` makes cancellation cooperative and lossless: once it
    reads ``True`` the backend stops submitting, cancels queued futures
    that have not started, and *drains* the units already executing --
    their results are yielded (and therefore persisted by the engine)
    before iteration ends, so cancelling a campaign never throws away
    finished work.
    """

    name = "process"

    #: Target in-flight cost per pool worker, in median-cost units.
    INFLIGHT_FACTOR = 4

    #: Absolute in-flight *unit* cap per pool worker (guards the window
    #: against degenerate cost estimates on plans of many tiny units).
    MAX_INFLIGHT_FACTOR = 32

    def __init__(
        self,
        workers: Optional[int] = None,
        executor: Optional[ProcessPoolExecutor] = None,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers <= 0:
            raise ConfigurationError(f"workers must be positive, got {workers!r}")
        self.workers = int(workers)
        self.executor = executor

    def run(
        self,
        worker: WorkerFn,
        units: Tuple[WorkUnit, ...],
        max_retries: int = 1,
        capture_telemetry: bool = False,
        should_stop: Optional[ShouldStop] = None,
    ) -> Iterator[UnitResult]:
        if not units:
            return
        if should_stop is not None and should_stop():
            return
        pool_size = min(self.workers, len(units))
        costs: List[float] = [unit_cost(unit) for unit in units]
        window = CostWindow(
            pool_size,
            costs,
            inflight_factor=self.INFLIGHT_FACTOR,
            max_factor=self.MAX_INFLIGHT_FACTOR,
        )
        with contextlib.ExitStack() as stack:
            if self.executor is None:
                pool = stack.enter_context(ProcessPoolExecutor(max_workers=pool_size))
            else:
                pool = self.executor
            next_index = 0
            pending: Dict[Future, float] = {}

            def refill() -> None:
                nonlocal next_index
                while next_index < len(units) and window.admit(costs[next_index]):
                    future = pool.submit(
                        execute_unit,
                        worker,
                        units[next_index],
                        max_retries,
                        capture_telemetry,
                    )
                    pending[future] = costs[next_index]
                    next_index += 1

            refill()
            # as_completed() holds every future to the end; draining with
            # wait() lets finished futures (and their result payloads) be
            # released incrementally, and the bounded window keeps the
            # not-yet-finished set small on large campaigns.
            while pending:
                done, _ = wait(set(pending), return_when=FIRST_COMPLETED)
                for future in done:
                    window.complete(pending.pop(future))
                if should_stop is not None and should_stop():
                    # Stop refilling, shed what never started, drain the
                    # rest.  Successfully cancelled futures leave `pending`
                    # here and never reach a later `done` set, so every
                    # future yielded below carries a real result.
                    for future in list(pending):
                        if future.cancel():
                            window.complete(pending.pop(future))
                else:
                    refill()
                for future in done:
                    yield future.result()


Backend = Union[SerialBackend, ProcessPoolBackend]

#: Backend names accepted by :func:`backend_from_spec` (and the CLI).
BACKEND_NAMES = ("serial", "process")


def backend_from_spec(
    spec: Union[str, Backend, None], workers: Optional[int] = None
) -> Backend:
    """Resolve a backend from a name, an instance, or ``None``.

    ``None`` picks :class:`ProcessPoolBackend` when ``workers`` asks for
    more than one process, else :class:`SerialBackend` -- the conservative
    default that leaves existing single-process behaviour untouched.
    """
    if workers is not None and workers <= 0:
        raise ConfigurationError(f"workers must be positive, got {workers!r}")
    if spec is None:
        spec = "process" if workers is not None and workers > 1 else "serial"
    if not isinstance(spec, str):
        return spec
    if spec == "serial":
        return SerialBackend()
    if spec == "process":
        return ProcessPoolBackend(workers=workers)
    raise ConfigurationError(
        f"unknown backend {spec!r}; expected one of {', '.join(BACKEND_NAMES)}"
    )
