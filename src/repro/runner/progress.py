"""Live progress reporting for campaign runs.

The engine feeds every completed unit into a :class:`ProgressTracker`,
which maintains completed/failed/skipped counts, an exponentially weighted
moving average (EWMA) of the inter-completion gap, and from it a smoothed
throughput and ETA.  The EWMA deliberately weights recent completions: a
campaign's early units include pool warm-up and cold caches, and a stale
average would keep lying about the ETA long after the run reaches steady
state.

The tracker is clock-injected (any ``() -> float`` monotonic source) so
tests can drive it deterministically, and rendering is plain text so it
composes with whatever sink the caller wires up -- the CLI prints lines to
stderr, tests capture them in lists.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..errors import ConfigurationError
from .units import UnitResult


class ProgressTracker:
    """Running statistics over a stream of completed work units.

    Parameters
    ----------
    total:
        Number of units in the *full plan*, including any satisfied from
        the result store on resume (recorded via :meth:`note_skipped`).
        Keeping the plan size stable across resumes is what lets a
        progress consumer (CLI line, service ``progress`` dict) show the
        same denominator on every relaunch; :attr:`remaining` subtracts
        both executed and skipped units, so the ETA covers only work that
        will actually run.
    alpha:
        EWMA weight of the newest inter-completion gap; 0 < alpha <= 1.
    clock:
        Monotonic time source, seconds.
    """

    def __init__(
        self,
        total: int,
        alpha: float = 0.3,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total < 0:
            raise ConfigurationError("total must be non-negative")
        if not (0.0 < alpha <= 1.0):
            raise ConfigurationError("alpha must be in (0, 1]")
        self.total = int(total)
        self.alpha = float(alpha)
        self._clock = clock
        self.completed = 0
        self.failed = 0
        self.skipped = 0
        self._started_at: Optional[float] = None
        self._last_at: Optional[float] = None
        self._ewma_gap_s: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the beginning of live execution (idempotent)."""
        if self._started_at is None:
            self._started_at = self._clock()
            self._last_at = self._started_at

    def note_skipped(self, count: int = 1) -> None:
        """Record units satisfied from the result store instead of executed."""
        self.skipped += int(count)

    def update(self, result: UnitResult) -> None:
        """Fold one completed unit into the statistics."""
        self.start()
        now = self._clock()
        gap = max(0.0, now - (self._last_at if self._last_at is not None else now))
        self._last_at = now
        if self._ewma_gap_s is None:
            self._ewma_gap_s = gap
        else:
            self._ewma_gap_s = self.alpha * gap + (1.0 - self.alpha) * self._ewma_gap_s
        self.completed += 1
        if not result.ok:
            self.failed += 1

    # ------------------------------------------------------------------
    @property
    def succeeded(self) -> int:
        """Units that completed with an ``ok`` result."""
        return self.completed - self.failed

    @property
    def remaining(self) -> int:
        """Units still to execute: the plan minus observed completions
        *and* resume-skipped units.

        Skipped units were satisfied from the result store -- no worker
        will ever run them -- so counting them as pending would inflate
        both ``remaining`` and the ETA on every resumed run.
        """
        return max(0, self.total - self.completed - self.skipped)

    @property
    def throughput_units_per_s(self) -> Optional[float]:
        """Smoothed completion rate; ``None`` until it can be estimated."""
        if self._ewma_gap_s is None:
            return None
        if self._ewma_gap_s <= 0.0:
            # Gaps below clock resolution: fall back to the overall mean.
            if self._started_at is None or self._last_at is None:
                return None
            elapsed = self._last_at - self._started_at
            return self.completed / elapsed if elapsed > 0.0 else None
        return 1.0 / self._ewma_gap_s

    @property
    def eta_seconds(self) -> Optional[float]:
        rate = self.throughput_units_per_s
        if rate is None or rate <= 0.0:
            return None
        return self.remaining / rate

    @property
    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return max(0.0, self._clock() - self._started_at)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """One status line: counts, failures, throughput, ETA.

        The bracketed fraction counts units that need no further work --
        successes plus resume-skipped units, over the full plan -- so a
        resumed run picks up at the fraction it left off at.  A run with
        50 failures must not render as fully completed; failures are
        reported as their own distinct part.
        """
        parts = [f"[{self.succeeded + self.skipped}/{self.total}]"]
        if self.skipped:
            parts.append(f"{self.skipped} resumed")
        if self.failed:
            parts.append(f"{self.failed} failed")
        rate = self.throughput_units_per_s
        if rate is not None:
            parts.append(f"{rate:.2f} units/s")
        # Imported lazily: repro.analysis sits above repro.runner in the
        # layering (analysis.campaign drives the engine), so the runner must
        # not import analysis at module load time.
        from ..analysis.report import format_duration

        parts.append(f"ETA {format_duration(self.eta_seconds)}")
        return " | ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ProgressTracker({self.render()})"
