"""Durable JSONL result store for campaign runs.

A run directory holds everything needed to resume an interrupted campaign::

    <run_dir>/
        manifest.json    # campaign configuration fingerprint + metadata
        results.jsonl    # one UnitResult per line, append-only

Results stream in as workers complete, one ``json.dumps`` line per unit,
flushed after every append so a crash loses at most the line being written.
On re-open the loader tolerates a torn trailing line (the signature of a
mid-write crash) but rejects corruption anywhere else, and the manifest
fingerprint check refuses to mix results from two different campaign
configurations in one directory.

Failed rows are deliberately *not* treated as completed: resuming a run
retries every unit that has no ``ok`` row, so transient infrastructure
failures heal across relaunches.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Any, Dict, Iterable, Mapping, Optional, Set, Union

from ..errors import ConfigurationError
from .units import STATUS_OK, UnitResult

MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
#: Run event log written by the engine when observability is enabled.
EVENTS_NAME = "events.jsonl"
#: Durable merged metric snapshot written by the engine at run end.
METRICS_NAME = "metrics.json"

#: Manifest ``status`` values stamped by the engine.
STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_INTERRUPTED = "interrupted"

#: Manifest keys that are lifecycle bookkeeping, not campaign identity --
#: excluded from the collision-guard spec diff.
_MANIFEST_META_KEYS = ("fingerprint", "status", "kind")


def manifest_spec_diff(
    stored: Mapping[str, Any], requested: Mapping[str, Any], limit: int = 6
) -> str:
    """Human-readable diff of two manifests' configuration knobs.

    Used to make a fingerprint-mismatch refusal *actionable*: instead of
    two opaque hashes, the error names exactly which campaign knobs differ
    between the directory's occupant and the requested run.
    """
    keys = sorted(
        (set(stored) | set(requested)) - set(_MANIFEST_META_KEYS)
    )
    lines = []
    for key in keys:
        a, b = stored.get(key), requested.get(key)
        if a != b:
            lines.append(f"{key}: stored {a!r} != requested {b!r}")
    if not lines:
        return "the stored manifest carries no comparable configuration keys"
    shown = lines[:limit]
    if len(lines) > limit:
        shown.append(f"... and {len(lines) - limit} more differing keys")
    return "; ".join(shown)


class ResultStore:
    """Append-only persistence for one campaign run directory."""

    def __init__(self, run_dir: Union[str, os.PathLike]) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.manifest_path = self.run_dir / MANIFEST_NAME
        self.results_path = self.run_dir / RESULTS_NAME
        self._handle = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, manifest: Mapping[str, Any], resume: bool = False) -> None:
        """Create or re-open the run directory for appending.

        A fresh directory is stamped with ``manifest``.  An existing one is
        accepted only when ``resume`` is set *and* its stored fingerprint
        matches -- otherwise the mismatch (or the missing ``--resume``
        intent) raises :class:`~repro.errors.ConfigurationError` instead of
        silently mixing two campaigns' results.
        """
        if "fingerprint" not in manifest:
            raise ConfigurationError("store manifest must carry a 'fingerprint'")
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if self.manifest_path.exists():
            existing = self._load_manifest()
            if existing.get("fingerprint") != manifest["fingerprint"]:
                raise ConfigurationError(
                    f"run directory {self.run_dir} belongs to a different campaign "
                    f"(manifest fingerprint {existing.get('fingerprint')!r} != "
                    f"{manifest['fingerprint']!r}).  Differing configuration: "
                    f"{manifest_spec_diff(existing, manifest)}.  Use a fresh "
                    "--run-dir, or relaunch with the directory's original "
                    "configuration to resume it"
                )
            if not resume and self.results_path.exists() and self.results_path.stat().st_size:
                raise ConfigurationError(
                    f"run directory {self.run_dir} already holds results; "
                    "pass resume=True (--resume) to continue it"
                )
        else:
            self._stamp_manifest(manifest)
        self._handle = open(self.results_path, "a", encoding="utf-8")

    def _stamp_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Write ``manifest.json`` atomically.

        The payload lands in a sibling temp file first and is moved into
        place with :func:`os.replace`, so a crash mid-stamp leaves either
        no manifest (a fresh directory, restampable on relaunch) or the
        complete one -- never a torn ``manifest.json`` that poisons every
        subsequent ``--resume``.
        """
        tmp_path = self.manifest_path.with_name(MANIFEST_NAME + ".tmp")
        tmp_path.write_text(
            json.dumps(dict(manifest), indent=2, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp_path, self.manifest_path)

    def _load_manifest(self) -> Dict[str, Any]:
        """Load ``manifest.json``, refusing corruption with a clear path out."""
        try:
            existing = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ConfigurationError(
                f"{self.manifest_path} is corrupt ({exc}); the run directory can "
                "no longer prove which campaign it belongs to.  Recover by "
                "deleting the directory and relaunching without --resume (the "
                "campaign re-executes from scratch), or restore manifest.json "
                "from a backup of the same configuration."
            ) from exc
        if not isinstance(existing, dict):
            raise ConfigurationError(
                f"{self.manifest_path} does not hold a manifest object; delete "
                "the run directory and relaunch without --resume"
            )
        return existing

    def mark_status(self, status: str) -> None:
        """Stamp the manifest's lifecycle ``status`` (atomic rewrite).

        The engine marks a run ``running`` on open, ``complete`` on a clean
        finish, and ``interrupted`` when a cooperative stop drained it early
        -- so a run directory always tells an operator whether its tail is
        a finished campaign or a resumable frontier.  The fingerprint and
        every other manifest key are preserved verbatim.
        """
        manifest = self._load_manifest()
        manifest["status"] = str(status)
        self._stamp_manifest(manifest)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load_results(self) -> Dict[str, UnitResult]:
        """All persisted results, keyed by unit id.

        Later rows win (a resumed run re-records units whose earlier row was
        ``failed``).  A torn final line -- no trailing newline and invalid
        JSON -- is skipped as a crash artifact; torn interior lines raise.
        """
        results: Dict[str, UnitResult] = {}
        if not self.results_path.exists():
            return results
        raw = self.results_path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        complete = raw.endswith("\n")
        body = lines[:-1]  # the final element is "" (complete) or a torn tail
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{self.results_path}:{lineno}: corrupt result row: {exc}"
                ) from exc
            result = UnitResult.from_json_dict(row)
            results[result.unit_id] = result
        if not complete and lines[-1].strip():
            try:
                row = json.loads(lines[-1])
            except json.JSONDecodeError:
                pass  # torn tail from a mid-write crash; the unit reruns
            else:
                result = UnitResult.from_json_dict(row)
                results[result.unit_id] = result
        return results

    def completed_ids(self) -> Set[str]:
        """Ids of units with a persisted ``ok`` row (the resume skip-set)."""
        return {
            uid for uid, result in self.load_results().items() if result.status == STATUS_OK
        }

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, result: UnitResult) -> None:
        """Persist one result row and flush it to the OS immediately."""
        if self._handle is None:
            raise ConfigurationError("store is not open for appending")
        self._handle.write(json.dumps(result.to_json_dict(), sort_keys=True) + "\n")
        self._handle.flush()

    def append_all(self, results: Iterable[UnitResult]) -> None:
        for result in results:
            self.append(result)


class NullStore:
    """In-memory stand-in used when no run directory was requested.

    Mirrors the :class:`ResultStore` surface so the engine has one code
    path; nothing survives the process.
    """

    run_dir: Optional[pathlib.Path] = None

    def open(self, manifest: Mapping[str, Any], resume: bool = False) -> None:
        self._results: Dict[str, UnitResult] = {}

    def mark_status(self, status: str) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullStore":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def load_results(self) -> Dict[str, UnitResult]:
        return dict(getattr(self, "_results", {}))

    def completed_ids(self) -> Set[str]:
        return {
            uid
            for uid, result in getattr(self, "_results", {}).items()
            if result.status == STATUS_OK
        }

    def append(self, result: UnitResult) -> None:
        self._results[result.unit_id] = result

    def append_all(self, results: Iterable[UnitResult]) -> None:
        for result in results:
            self.append(result)
