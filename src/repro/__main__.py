"""Command-line interface: quick profiling runs, planning, and longevity.

Examples::

    python -m repro demo
    python -m repro profile --trefi 1.024 --reach 0.25 --iterations 5
    python -m repro plan --trefi 1.024 --max-fpr 0.5
    python -m repro longevity --capacity-gb 2 --ecc SECDED --trefi 1.024
    python -m repro campaign --chips-per-vendor 8 --workers 4 \
        --run-dir runs/campaign --resume --progress --metrics
    python -m repro serve --root runs/service --port 8787
    python -m repro top --port 8787
    python -m repro obs runs/campaign
    python -m repro obs runs/campaign --export prometheus
    python -m repro obs --compare runs/campaign-a runs/campaign-b
    python -m repro obs --compare runs/r1 runs/r2 runs/r3 --export html
    python -m repro lake compact runs/campaign-a runs/campaign-b --lake lake
    python -m repro lake query --lake lake --report trend --vendor A
"""

from __future__ import annotations

import argparse
import os
import sys

from .conditions import Conditions, ReachDelta
from .core import (
    BruteForceProfiler,
    PlannerConstraints,
    ReachProfiler,
    RelaxedRefreshPlanner,
    evaluate,
    longevity_for_system,
)
from .dram import SimulatedDRAMChip, characterize_for_spd, vendor_by_name
from .dram.geometry import ChipGeometry
from .ecc.model import ECC_STRENGTHS


def _build_chip(args) -> SimulatedDRAMChip:
    return SimulatedDRAMChip(
        vendor=vendor_by_name(args.vendor),
        geometry=ChipGeometry.from_capacity_gigabits(args.capacity_gbit),
        seed=args.seed,
        max_trefi_s=max(args.trefi * 2.0, 2.6),
    )


def cmd_demo(args) -> int:
    target = Conditions(trefi=args.trefi, temperature=45.0)
    truth = BruteForceProfiler(iterations=16).run(_build_chip(args), target)
    profile = ReachProfiler(reach=ReachDelta(delta_trefi=0.250), iterations=5).run(
        _build_chip(args), target
    )
    score = evaluate(profile, truth.failing)
    print(f"Target {target} on a {args.capacity_gbit:g} Gbit vendor-{args.vendor} chip")
    print(f"  brute force: {len(truth)} cells in {truth.runtime_seconds:.1f} s")
    print(f"  reach +250ms: {len(profile)} cells in {profile.runtime_seconds:.1f} s")
    print(f"  coverage {score.coverage:.2%}, FPR {score.false_positive_rate:.1%}, "
          f"speedup {truth.runtime_seconds / profile.runtime_seconds:.2f}x")
    return 0


def cmd_profile(args) -> int:
    target = Conditions(trefi=args.trefi, temperature=45.0)
    chip = _build_chip(args)
    if args.reach > 0.0:
        profiler = ReachProfiler(reach=ReachDelta(delta_trefi=args.reach), iterations=args.iterations)
    else:
        profiler = BruteForceProfiler(iterations=args.iterations)
    profile = profiler.run(chip, target)
    oracle = chip.oracle_failing_set(target)
    score = evaluate(profile, set(int(c) for c in oracle))
    print(f"{profile.mechanism} profiling at {profile.profiling_conditions}: "
          f"{len(profile)} cells, runtime {profile.runtime_seconds:.1f} s")
    print(f"vs oracle: {score}")
    return 0


def cmd_plan(args) -> int:
    chip = _build_chip(args)
    spd = characterize_for_spd(
        chip, anchor_intervals_s=(0.256, 0.512, 0.768, 1.024, 1.28, 1.536, 2.048)
    )
    planner = RelaxedRefreshPlanner(spd, ecc=ECC_STRENGTHS[args.ecc])
    plan = planner.plan(
        Conditions(trefi=args.trefi, temperature=45.0),
        PlannerConstraints(max_false_positive_rate=args.max_fpr),
    )
    print(f"Plan for {plan.target} (vendor {args.vendor}, {args.capacity_gbit:g} Gbit):")
    print(f"  reach           : {plan.reach} -> {plan.reach_conditions}")
    print(f"  est. failures   : {plan.expected_failures:.1f} "
          f"({plan.expected_profiled_cells:.1f} profiled, FPR {plan.expected_false_positive_rate:.1%})")
    print(f"  reprofile every : {plan.reprofile_interval_seconds / 3600.0:.1f} h "
          f"({plan.profiling_time_fraction:.3%} of time)")
    print(f"  feasible        : {plan.feasible}"
          + (f" ({plan.infeasibility_reason})" if not plan.feasible else ""))
    return 0 if plan.feasible else 1


def cmd_longevity(args) -> int:
    estimate = longevity_for_system(
        vendor=vendor_by_name(args.vendor),
        capacity_bytes=int(args.capacity_gb * (1 << 30)),
        ecc=ECC_STRENGTHS[args.ecc],
        target=Conditions(trefi=args.trefi, temperature=args.temperature),
        coverage=args.coverage,
    )
    print(f"N={estimate.tolerable_failures:.1f} failures tolerable, "
          f"{estimate.expected_failures:.0f} expected, "
          f"A={estimate.accumulation_per_hour:.3f}/h")
    if estimate.feasible:
        print(f"profile longevity: {estimate.longevity_days:.2f} days")
        return 0
    print("INFEASIBLE: missed failures exceed the ECC budget")
    return 1


def _condition_tiles(text: str) -> int:
    """``--condition-tiles`` value: a tile count, or ``auto`` (= 0) to
    size the tiling from the worker count."""
    if text.strip().lower() == "auto":
        return 0
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("condition tile count must be >= 0")
    return value


def cmd_campaign(args) -> int:
    from .analysis.campaign import CharacterizationCampaign
    from .runner import graceful_stop

    if args.metrics:
        from . import obs

        obs.enable()

    campaign = CharacterizationCampaign(
        chips_per_vendor=args.chips_per_vendor,
        geometry=ChipGeometry.from_capacity_gigabits(args.capacity_gbit),
        seed=args.seed,
    )
    progress = None
    if args.progress:

        def progress(result, tracker):
            print(tracker.render(), file=sys.stderr)

    # SIGINT/SIGTERM drain in-flight units and persist partial results +
    # telemetry before exiting; the run-dir manifest is marked interrupted
    # so `--resume` picks up exactly where this run stopped.
    with graceful_stop() as stop:
        summary = campaign.run(
            backend=None,  # auto: process pool when --workers > 1, else serial
            workers=args.workers,
            run_dir=args.run_dir,
            resume=args.resume,
            progress=progress,
            chips_per_unit=args.chips_per_unit,
            shared_population=False if args.no_shared_population else None,
            megakernel=not args.no_megakernel,
            condition_tiles=args.condition_tiles,
            should_stop=stop.is_set,
        )
    print(summary.to_text())
    if args.metrics:
        print()
        print(obs.report(title="campaign metrics"))
    if stop.is_set():
        print(
            "interrupted: partial results persisted"
            + (f"; rerun with --resume --run-dir {args.run_dir}" if args.run_dir else ""),
            file=sys.stderr,
        )
        return 130
    return 0 if not summary.failed_units else 1


def cmd_serve(args) -> int:
    import asyncio

    from .service import ServiceConfig, run_service

    config = ServiceConfig(
        root=args.root,
        host=args.host,
        port=args.port,
        pool_workers=args.pool_workers,
        max_running=args.max_running,
        max_queued=args.max_queued,
        resume=not args.no_resume,
    )
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:  # pragma: no cover - second Ctrl-C
        return 130
    return 0


def cmd_top(args) -> int:
    from .obs.top import run_top

    return run_top(
        host=args.host,
        port=args.port,
        interval_s=args.interval,
        once=args.once,
    )


def cmd_obs(args) -> int:
    from .obs import analyze
    from pathlib import Path

    if args.compare:
        # Both spellings work: `obs --compare A B [C ...]` and
        # `obs A --compare B [C ...]` (positional dir = baseline).
        dirs = ([args.run_dir] if args.run_dir else []) + list(args.compare)
        if len(dirs) < 2:
            print(
                "error: --compare needs at least two run directories",
                file=sys.stderr,
            )
            return 2
        runs = [analyze.load_run(d) for d in dirs]
        if args.export:
            if args.export != "html":
                print(
                    "error: --compare exports support only --export html",
                    file=sys.stderr,
                )
                return 2
            out = Path(args.out) if args.out else runs[0].run_dir / "compare.html"
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(analyze.comparison_html(runs), encoding="utf-8")
            print(f"wrote {out}")
            return 0
        print(analyze.compare_runs(runs[0], runs[1], *runs[2:]))
        return 0
    if args.run_dir is None:
        print("error: pass a run directory or --compare RUN_A RUN_B ...", file=sys.stderr)
        return 2
    run = analyze.load_run(args.run_dir)
    if args.export:
        default_name, content = analyze.export_run(run, args.export)
        out = Path(args.out) if args.out else run.run_dir / default_name
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(content, encoding="utf-8")
        print(f"wrote {out}")
        return 0
    print(analyze.summarize_run(run))
    return 0


def cmd_lake(args) -> int:
    import json

    from . import lake as lake_mod

    lake = lake_mod.ResultLake(args.lake)
    if args.lake_command == "compact":
        if args.run_id is not None and len(args.run_dirs) != 1:
            print(
                "error: --run-id only applies to a single run directory",
                file=sys.stderr,
            )
            return 2
        for run_dir in args.run_dirs:
            report = lake.compact_run_dir(run_dir, run_id=args.run_id)
            line = (
                f"compacted {run_dir} -> {report.segment} "
                f"({report.units} units, {report.observations} observations, "
                f"{report.events} events"
            )
            if report.skipped_lines:
                line += f", {report.skipped_lines} unparseable lines skipped"
            print(line + ")")
        return 0

    # query
    if args.report == "summary":
        if not args.runs or len(args.runs) != 1:
            print(
                "error: --report summary needs exactly one --runs run id",
                file=sys.stderr,
            )
            return 2
        summary = lake_mod.summary_from_lake(lake, args.runs[0])
        print(json.dumps(summary, sort_keys=True, indent=None if args.json else 2))
        return 0
    kwargs = {"run_ids": args.runs}
    if args.report == "trend":
        kwargs.update(vendor=args.vendor, kind=args.kind or "interval")
    elif args.report == "contour":
        kwargs.update(kind=args.kind or "temperature")
    report = lake_mod.REPORTS[args.report](lake, **kwargs)
    if args.json:
        print(json.dumps({k: v for k, v in report.items() if k != "text"}, sort_keys=True))
    else:
        print(report["text"])
    return 0


def cmd_export(args) -> int:
    from .analysis.export import export_all

    written = export_all(args.outdir, n_mixes=args.mixes)
    for path in written:
        print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--vendor", default="B", choices=["A", "B", "C"])
    parser.add_argument("--seed", type=int, default=0x5EED)
    parser.add_argument("--capacity-gbit", type=float, default=1.0, dest="capacity_gbit")
    sub = parser.add_subparsers(dest="command", required=True)

    p_demo = sub.add_parser("demo", help="run the headline comparison")
    p_demo.add_argument("--trefi", type=float, default=1.024)
    p_demo.set_defaults(func=cmd_demo)

    p_prof = sub.add_parser("profile", help="profile one simulated chip")
    p_prof.add_argument("--trefi", type=float, default=1.024)
    p_prof.add_argument("--reach", type=float, default=0.0, help="reach delta in seconds (0 = brute force)")
    p_prof.add_argument("--iterations", type=int, default=16)
    p_prof.set_defaults(func=cmd_profile)

    p_plan = sub.add_parser("plan", help="plan a deployment from SPD data")
    p_plan.add_argument("--trefi", type=float, default=1.024)
    p_plan.add_argument("--max-fpr", type=float, default=0.50, dest="max_fpr")
    p_plan.add_argument("--ecc", default="SECDED", choices=list(ECC_STRENGTHS))
    p_plan.set_defaults(func=cmd_plan)

    p_lon = sub.add_parser("longevity", help="Eq-7 profile longevity")
    p_lon.add_argument("--capacity-gb", type=float, default=2.0, dest="capacity_gb")
    p_lon.add_argument("--ecc", default="SECDED", choices=list(ECC_STRENGTHS))
    p_lon.add_argument("--trefi", type=float, default=1.024)
    p_lon.add_argument("--temperature", type=float, default=45.0)
    p_lon.add_argument("--coverage", type=float, default=0.99)
    p_lon.set_defaults(func=cmd_longevity)

    p_exp = sub.add_parser("export", help="export analytic figure series as CSVs")
    p_exp.add_argument("--outdir", default="results_csv")
    p_exp.add_argument("--mixes", type=int, default=6)
    p_exp.set_defaults(func=cmd_export)

    p_camp = sub.add_parser("campaign", help="run a multi-vendor characterization campaign")
    p_camp.add_argument("--chips-per-vendor", type=int, default=4, dest="chips_per_vendor")
    p_camp.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (>1 enables parallel execution; default serial)",
    )
    p_camp.add_argument(
        "--run-dir", default=None, dest="run_dir",
        help="durable run directory (JSONL result store, enables --resume)",
    )
    p_camp.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run, skipping chips already measured",
    )
    p_camp.add_argument(
        "--chips-per-unit", type=int, default=None, dest="chips_per_unit",
        help="fleet-batch size: ship chips to workers in chunks of this "
             "many, evaluating each chunk with the fused fleet kernel "
             "(>1 enables batching; results are byte-identical)",
    )
    p_camp.add_argument(
        "--no-shared-population", action="store_true", dest="no_shared_population",
        help="disable the shared-memory population segment on the fleet "
             "path (workers pickle per-chip samples instead; byte-identical)",
    )
    p_camp.add_argument(
        "--no-megakernel", action="store_true", dest="no_megakernel",
        help="disable the fused condition-grid megakernel in fleet workers "
             "and sweep conditions one at a time (byte-identical)",
    )
    p_camp.add_argument(
        "--condition-tiles", type=_condition_tiles, default=None,
        dest="condition_tiles", metavar="N|auto",
        help="shard each fleet chunk's condition grid into N contiguous "
             "tiles and dispatch (chunk x tile) work units ('auto' sizes "
             "the tiling from the worker count; requires --chips-per-unit "
             "> 1; results are byte-identical for any tiling)",
    )
    p_camp.add_argument(
        "--progress", action="store_true",
        help="print per-chip progress (throughput, ETA) to stderr",
    )
    p_camp.add_argument(
        "--metrics", action="store_true",
        help="enable repro.obs instrumentation and print the per-phase metric "
             "summary; with --run-dir, an events.jsonl log lands next to "
             "results.jsonl",
    )
    p_camp.set_defaults(func=cmd_campaign)

    p_srv = sub.add_parser(
        "serve", help="run the multi-tenant campaign service (JSON over HTTP)"
    )
    p_srv.add_argument(
        "--root", default="runs/service",
        help="service root: per-tenant run dirs plus the jobs.jsonl ledger",
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument(
        "--port", type=int, default=8787,
        help="listen port (0 binds an ephemeral port, printed on startup)",
    )
    p_srv.add_argument(
        "--pool-workers", type=int, default=None, dest="pool_workers",
        help="shared process-pool size across all jobs (0 = in-thread serial; "
             "default: CPU count)",
    )
    p_srv.add_argument(
        "--max-running", type=int, default=2, dest="max_running",
        help="jobs executing concurrently on the shared pool",
    )
    p_srv.add_argument(
        "--max-queued", type=int, default=64, dest="max_queued",
        help="bound on queued jobs before submissions get 429",
    )
    p_srv.add_argument(
        "--no-resume", action="store_true", dest="no_resume",
        help="do not re-adopt unfinished jobs from the ledger on startup",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_top = sub.add_parser(
        "top", help="live terminal dashboard over a running campaign service"
    )
    p_top.add_argument("--host", default="127.0.0.1")
    p_top.add_argument("--port", type=int, default=8787)
    p_top.add_argument(
        "--interval", type=float, default=1.0,
        help="seconds between redraws (default 1.0)",
    )
    p_top.add_argument(
        "--once", action="store_true",
        help="print a single frame and exit (scriptable mode)",
    )
    p_top.set_defaults(func=cmd_top)

    p_obs = sub.add_parser(
        "obs", help="analyze a campaign run directory's recorded telemetry"
    )
    p_obs.add_argument(
        "run_dir", nargs="?", default=None,
        help="run directory to summarize (results.jsonl + events.jsonl + metrics.json)",
    )
    p_obs.add_argument(
        "--compare", nargs="+", metavar="RUN_DIR", default=None,
        help="compare two or more run directories (first = baseline) instead "
             "of summarizing one; combine with --export html for the "
             "comparison dashboard",
    )
    p_obs.add_argument(
        "--export", choices=["prometheus", "chrome-trace", "html"], default=None,
        help="write an export instead of the text summary",
    )
    p_obs.add_argument(
        "--out", default=None,
        help="export output path (default: a standard name inside the run dir)",
    )
    p_obs.set_defaults(func=cmd_obs)

    p_lake = sub.add_parser(
        "lake", help="columnar result lake: compact run dirs, query across runs"
    )
    lake_sub = p_lake.add_subparsers(dest="lake_command", required=True)
    p_compact = lake_sub.add_parser(
        "compact", help="stream run directories into columnar lake segments"
    )
    p_compact.add_argument(
        "run_dirs", nargs="+", metavar="RUN_DIR",
        help="run directories (results.jsonl [+ events.jsonl]) to compact",
    )
    p_compact.add_argument(
        "--lake", required=True,
        help="lake directory (catalog lake.json + runs/*.npz segments)",
    )
    p_compact.add_argument(
        "--run-id", default=None, dest="run_id",
        help="catalog id for the run (single RUN_DIR only; default: the "
             "directory name, sanitized)",
    )
    p_compact.set_defaults(func=cmd_lake)
    p_query = lake_sub.add_parser(
        "query", help="cross-run reports over compacted segments"
    )
    p_query.add_argument(
        "--lake", required=True,
        help="lake directory to query",
    )
    p_query.add_argument(
        "--report", default="runs",
        choices=["runs", "trend", "contour", "longevity", "summary"],
        help="runs: catalog inventory; trend: per-(run, vendor, condition) "
             "failure means; contour: vendor x condition grid pooled across "
             "runs; longevity: per-vendor drift across rounds; summary: one "
             "run's canonical JSON summary (byte-identical to the JSONL path)",
    )
    p_query.add_argument(
        "--runs", nargs="+", default=None, metavar="RUN_ID",
        help="restrict to these catalog run ids (default: every run)",
    )
    p_query.add_argument(
        "--vendor", default=None,
        help="trend report: restrict to one vendor",
    )
    p_query.add_argument(
        "--kind", default=None, choices=["interval", "temperature"],
        help="observation axis (default: interval for trend, temperature "
             "for contour)",
    )
    p_query.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of a text table",
    )
    p_query.set_defaults(func=cmd_lake)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `... obs RUN | head`); the
        # truncated output is exactly what the pipe asked for.  Detach so
        # the interpreter's shutdown flush doesn't raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
