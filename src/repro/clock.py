"""Simulated wall-clock time.

Profiling runtime is one of the paper's three key metrics, so every latency
in the system -- retention exposures, full-chip pattern writes and readouts,
thermal settling -- advances a shared :class:`SimClock`.  Profilers report
runtime as the clock delta across a run, exactly the quantity Figure 10 and
Equation 9 of the paper reason about.
"""

from __future__ import annotations

from .errors import ClockError


class SimClock:
    """A monotonically advancing simulated clock, in seconds.

    The clock is deliberately minimal: components call :meth:`advance` with
    the duration of whatever they just simulated, and observers read
    :attr:`now`.  Attempting to move time backwards raises
    :class:`~repro.errors.ClockError`.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds since the epoch of this clock."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0.0:
            raise ClockError(f"cannot advance clock by negative {seconds!r}s")
        self._now += float(seconds)
        return self._now

    def elapsed_since(self, t0: float) -> float:
        """Seconds elapsed between ``t0`` and now (``t0`` must not be in the future)."""
        if t0 > self._now:
            raise ClockError(f"reference time {t0!r} is in the future (now={self._now!r})")
        return self._now - t0

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"SimClock(now={self._now:.6f}s)"


class ClockStopwatch:
    """Measure elapsed simulated time across a region of code.

    Usage::

        watch = ClockStopwatch(clock)
        ... simulate things that advance the clock ...
        runtime = watch.elapsed
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.elapsed_since(self._start)

    def restart(self) -> None:
        self._start = self._clock.now
