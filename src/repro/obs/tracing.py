"""Span-based tracing over wall-clock time.

A *span* brackets one logical operation -- a profiler run, a REAPER round,
an engine dispatch loop -- and records how long it really took (wall time
via ``time.perf_counter``, not simulated time; simulated durations are
already exact and live in the metrics the instrumented components emit).

Usage::

    with tracer.span("profiler.run", mechanism="reach", chip_id=3):
        ...

Closing a span feeds two outputs:

* a histogram series ``span.<name>`` in the metrics registry (one
  observation per completed span, keyed by the span *name only* -- span
  attributes are high-cardinality by design, e.g. one ``chip_id`` per
  chip, and belong in the event log, not as metric label explosions), and
* a ``span`` event on the event sink, carrying name, attributes, nesting
  depth, and elapsed seconds.

Spans nest via a plain stack, so ``depth`` in the event log reconstructs
the call tree.

When the tracer carries a :class:`~repro.obs.context.TraceContext`
(``tracer.context = TraceContext.new()``), every span additionally gets
a ``span_id``, inherits its ``parent_id`` from the enclosing span (or
the context's remote parent for root spans), and stamps all three ids
into the ``span`` event -- the correlation substrate that lets merged
parent+worker event logs render as one tree.  With no context attached
the event shape is exactly the pre-context one (no id fields), so
untraced runs stay byte-for-byte stable.

``span`` yields a :class:`SpanHandle` when a context is active (callers
that need to forward the id across a process boundary read
``handle.span_id``) and ``None`` otherwise.  Tracing reads the clock and
writes observability state only -- it cannot perturb simulation results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Tuple

from .context import TraceContext, new_span_id
from .events import NullEventSink
from .metrics import MetricsRegistry


@dataclass(frozen=True)
class SpanHandle:
    """Identity of one open span, yielded by :meth:`Tracer.span`."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]

    def context(self) -> TraceContext:
        """The trace context a remote callee of this span should adopt."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)


class Tracer:
    """Produces nested spans bound to one registry + event sink pair."""

    def __init__(self, metrics: MetricsRegistry, sink=None) -> None:
        self.metrics = metrics
        self.sink = sink if sink is not None else NullEventSink()
        #: Optional trace identity; set it to stamp span ids onto events.
        self.context: Optional[TraceContext] = None
        # Stack frames are (name, span_id); span_id is None when the
        # frame was opened without a context.
        self._stack: List[Tuple[str, Optional[str]]] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[SpanHandle]]:
        """Time one operation; record it as a histogram sample + event."""
        ctx = self.context
        handle: Optional[SpanHandle] = None
        ids: dict = {}
        if ctx is not None:
            parent_id = self._stack[-1][1] if self._stack else ctx.span_id
            span_id = new_span_id()
            handle = SpanHandle(
                name=name, trace_id=ctx.trace_id, span_id=span_id, parent_id=parent_id
            )
            ids = {"trace_id": ctx.trace_id, "span_id": span_id}
            if parent_id is not None:
                ids["parent_id"] = parent_id
            self._stack.append((name, span_id))
        else:
            self._stack.append((name, None))
        started = time.perf_counter()
        try:
            yield handle
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            self.metrics.histogram(f"span.{name}").observe(elapsed)
            self.sink.emit(
                "span",
                name=name,
                elapsed_s=elapsed,
                depth=len(self._stack),
                **ids,
                **attrs,
            )
