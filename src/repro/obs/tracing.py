"""Span-based tracing over wall-clock time.

A *span* brackets one logical operation -- a profiler run, a REAPER round,
an engine dispatch loop -- and records how long it really took (wall time
via ``time.perf_counter``, not simulated time; simulated durations are
already exact and live in the metrics the instrumented components emit).

Usage::

    with tracer.span("profiler.run", mechanism="reach", chip_id=3):
        ...

Closing a span feeds two outputs:

* a histogram series ``span.<name>`` in the metrics registry (one
  observation per completed span, keyed by the span *name only* -- span
  attributes are high-cardinality by design, e.g. one ``chip_id`` per
  chip, and belong in the event log, not as metric label explosions), and
* a ``span`` event on the event sink, carrying name, attributes, nesting
  depth, and elapsed seconds.

Spans nest via a plain stack, so ``depth`` in the event log reconstructs
the call tree.  Tracing reads the clock and writes observability state
only -- it cannot perturb simulation results.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator, List

from .events import NullEventSink
from .metrics import MetricsRegistry


class Tracer:
    """Produces nested spans bound to one registry + event sink pair."""

    def __init__(self, metrics: MetricsRegistry, sink=None) -> None:
        self.metrics = metrics
        self.sink = sink if sink is not None else NullEventSink()
        self._stack: List[str] = []

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Time one operation; record it as a histogram sample + event."""
        self._stack.append(name)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stack.pop()
            self.metrics.histogram(f"span.{name}").observe(elapsed)
            self.sink.emit(
                "span", name=name, elapsed_s=elapsed, depth=len(self._stack), **attrs
            )
