"""Exporters: turn recorded telemetry into standard interchange formats.

Three consumers of the observability layer's data, all pure functions of
already-recorded state (exporting can never perturb a run):

``to_openmetrics``
    Prometheus / OpenMetrics text exposition of a metrics snapshot
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` rows).  Counters
    render as ``<name>_total``, histograms as cumulative ``_bucket`` series
    plus ``_sum``/``_count``, and metric/label names are sanitized to the
    Prometheus grammar.
``to_chrome_trace``
    Chrome trace-event JSON (loadable in Perfetto / ``chrome://tracing``)
    rendered from event-log rows: ``span`` events become complete ("X")
    slices on one lane per work unit, everything else becomes instant
    events, and worker-side timestamps are preserved so the trace shows
    the real cross-process concurrency of a campaign.
``write_metrics_json`` / ``load_metrics_json``
    The durable ``metrics.json`` the runner engine drops next to
    ``results.jsonl`` at run end -- the merged (parent + all workers)
    snapshot, which the offline analyzer and the Prometheus export read
    back.
"""

from __future__ import annotations

import json
import os
import pathlib
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from ..errors import ConfigurationError

#: Schema stamp inside ``metrics.json`` so future readers can dispatch.
METRICS_JSON_SCHEMA = 1

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_OK = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")


def prometheus_name(name: str) -> str:
    """Sanitize a metric name (``chip.commands`` -> ``chip_commands``)."""
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", str(name))
    if not sanitized or not _NAME_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _label_name(name: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_]", "_", str(name))
    if not sanitized or not _LABEL_OK.match(sanitized):
        sanitized = "_" + sanitized
    return sanitized


def _label_value(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels_text(labels: Mapping[str, Any], extra: Optional[Mapping[str, str]] = None) -> str:
    pairs = [(_label_name(k), _label_value(v)) for k, v in sorted(labels.items())]
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _number(value: Any) -> str:
    value = float(value)
    if value != value:  # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_openmetrics(snapshot: Sequence[Mapping[str, Any]]) -> str:
    """Render snapshot rows as Prometheus/OpenMetrics text exposition.

    The snapshot's deterministic (name, labels) ordering carries straight
    through, so equal snapshots produce byte-equal expositions.  The
    output ends with the OpenMetrics ``# EOF`` terminator, which
    Prometheus' classic text parser also tolerates.
    """
    lines: List[str] = []
    typed: set = set()
    for row in snapshot:
        kind = row["kind"]
        name = prometheus_name(row["name"])
        labels = row.get("labels", {})
        if kind == "counter":
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}_total{_labels_text(labels)} {_number(row['value'])}")
        elif kind == "gauge":
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{_labels_text(labels)} {_number(row['value'])}")
        elif kind == "histogram":
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            bounds = row.get("bucket_le") or []
            buckets = row.get("buckets") or []
            cumulative = 0
            for bound, count in zip(bounds, buckets):
                cumulative += int(count)
                lines.append(
                    f"{name}_bucket"
                    f"{_labels_text(labels, extra={'le': _number(bound)})} {cumulative}"
                )
            lines.append(
                f"{name}_bucket{_labels_text(labels, extra={'le': '+Inf'})} "
                f"{int(row['count'])}"
            )
            lines.append(f"{name}_sum{_labels_text(labels)} {_number(row['total'])}")
            lines.append(f"{name}_count{_labels_text(labels)} {int(row['count'])}")
        else:
            raise ConfigurationError(f"cannot export unknown metric kind {kind!r}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


#: Synthetic process id of the coordinating (parent) process in Chrome
#: traces; worker processes get 2, 3, ... in order of first appearance.
_PARENT_PID = 1


def to_chrome_trace(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Render event-log rows as a Chrome trace-event JSON object.

    ``span`` rows (as emitted by :class:`~repro.obs.tracing.Tracer`) carry
    their *end* wall-clock ``ts`` and ``elapsed_s``; they become complete
    ("X") slices starting at ``ts - elapsed_s``.  Every other row becomes
    an instant ("i") event.

    Lanes mirror the real process topology: rows that carry a
    ``worker_pid`` (stamped by the engine's telemetry replay) land on a
    synthetic per-worker ``pid`` lane -- one process group per pool
    worker, labelled ``worker <os pid>`` -- while parent-side rows stay on
    the coordinator's lane (pid 1).  Within each process group, rows are
    laid out on one thread lane per work unit (``unit_id``), with
    runner-level rows on the ``run`` lane.  Trace-context ids
    (``trace_id`` / ``span_id`` / ``parent_id``) ride through into each
    event's ``args`` untouched, so a correlated tree can be reconstructed
    from the exported file alone.  All timestamps are rebased to the
    earliest start so the trace opens at t=0.  Load the result in
    Perfetto or ``chrome://tracing``.
    """
    rows = [dict(row) for row in events if row.get("event")]
    starts: List[float] = []
    for row in rows:
        ts = float(row.get("ts", 0.0))
        if row["event"] == "span":
            ts -= float(row.get("elapsed_s", 0.0))
        starts.append(ts)
    base = min(starts) if starts else 0.0

    pids: Dict[Any, int] = {}
    lanes: Dict[tuple, int] = {}
    trace_events: List[Dict[str, Any]] = []

    def process(row: Mapping[str, Any]) -> int:
        worker_pid = row.get("worker_pid")
        if worker_pid is None:
            return _PARENT_PID
        if worker_pid not in pids:
            pids[worker_pid] = _PARENT_PID + 1 + len(pids)
            trace_events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pids[worker_pid],
                    "tid": 0,
                    "args": {"name": f"worker {worker_pid}"},
                }
            )
        return pids[worker_pid]

    def lane(pid: int, row: Mapping[str, Any]) -> int:
        key = (pid, str(row.get("unit_id", "run")))
        if key not in lanes:
            lanes[key] = len(lanes)
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lanes[key],
                    "args": {"name": key[1]},
                }
            )
        return lanes[key]

    for row, start in sorted(
        zip(rows, starts), key=lambda pair: (pair[1], str(pair[0].get("event")))
    ):
        args = {
            k: v
            for k, v in row.items()
            if k not in ("event", "ts", "seq", "name", "elapsed_s")
        }
        pid = process(row)
        if row["event"] == "span":
            trace_events.append(
                {
                    "name": str(row.get("name", "span")),
                    "cat": "span",
                    "ph": "X",
                    "ts": (start - base) * 1e6,
                    "dur": float(row.get("elapsed_s", 0.0)) * 1e6,
                    "pid": pid,
                    "tid": lane(pid, row),
                    "args": args,
                }
            )
        else:
            trace_events.append(
                {
                    "name": str(row["event"]),
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": (start - base) * 1e6,
                    "pid": pid,
                    "tid": lane(pid, row),
                    "args": args,
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_metrics_json(
    snapshot: Sequence[Mapping[str, Any]],
    path: Union[str, os.PathLike],
    meta: Optional[Mapping[str, Any]] = None,
) -> pathlib.Path:
    """Write a snapshot durably as ``metrics.json`` (atomic replace).

    The temp-file + :func:`os.replace` dance mirrors the result store's
    manifest stamping: a crash mid-write leaves the previous file (or
    none), never a torn one.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": METRICS_JSON_SCHEMA,
        "meta": dict(meta) if meta else {},
        "series": [dict(row) for row in snapshot],
    }
    tmp_path = path.with_name(path.name + ".tmp")
    tmp_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    os.replace(tmp_path, path)
    return path


def load_metrics_json(path: Union[str, os.PathLike]) -> Dict[str, Any]:
    """Read a ``metrics.json`` back; refuses corruption with a clear error.

    A schema-version mismatch is refused with guidance (rather than a
    downstream ``KeyError``): snapshots written by a different tool
    version must be regenerated, not half-parsed.
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ConfigurationError(f"cannot read metrics snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict) or "series" not in payload:
        raise ConfigurationError(f"{path} does not hold a metrics snapshot")
    schema = payload.get("schema")
    if schema != METRICS_JSON_SCHEMA:
        raise ConfigurationError(
            f"{path} has metrics.json schema {schema!r}, this version reads "
            f"schema {METRICS_JSON_SCHEMA}; re-run the campaign with "
            "--metrics (or `python -m repro serve`) to regenerate it"
        )
    return payload
