"""Run-level observability: metrics, spans, and an event log.

The instrumentation layer behind ``python -m repro campaign --metrics``.
Three cooperating pieces, bundled by :class:`Observability`:

``metrics``
    A :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
    histograms with deterministic snapshot/reset.
``tracing``
    :class:`~repro.obs.tracing.Tracer` spans
    (``with obs.span("profiler.run", chip_id=...)``) that time operations
    in wall-clock terms and feed both the registry and the event log.
``events``
    JSONL event sinks; the runner engine attaches one at
    ``<run_dir>/events.jsonl`` next to ``results.jsonl`` for durable runs.

Design contract -- **zero perturbation, near-zero overhead**:

* Instrumentation only *observes*: it never draws randomness (all
  simulation randomness flows through :func:`repro.rng.derive`), never
  advances simulated time, and never branches simulation behaviour, so a
  campaign summary is byte-identical with observability on or off
  (asserted in ``tests/test_obs.py``).
* The layer is **off by default**.  Every module-level helper starts with
  one boolean check and returns immediately when disabled, and hot
  vectorized paths (``repro.dram.cell``) carry no instrumentation at all
  -- only command-, iteration-, and unit-granularity code does.
* State is **process-wide but injectable**: components call the module
  helpers (which hit the process default), while anything that wants an
  isolated instance -- tests, the runner engine -- constructs its own
  :class:`Observability` and passes it explicitly.

Typical use::

    from repro import obs

    obs.enable()
    summary = CharacterizationCampaign(...).run(...)
    print(obs.report())
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, List, Optional, Union

from .events import (
    BufferedEventSink,
    JsonlEventSink,
    ListEventSink,
    NullEventSink,
    TeeEventSink,
)
from .export import (
    load_metrics_json,
    to_chrome_trace,
    to_openmetrics,
    write_metrics_json,
)
from .context import TraceContext, new_span_id, new_trace_id
from .metrics import DEFAULT_BUCKET_BOUNDS, Counter, Gauge, Histogram, MetricsRegistry
from .report import render_report
from .tracing import SpanHandle, Tracer

__all__ = [
    "BufferedEventSink",
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "ListEventSink",
    "MetricsRegistry",
    "NullEventSink",
    "Observability",
    "SpanHandle",
    "TeeEventSink",
    "TraceContext",
    "Tracer",
    "capture",
    "new_span_id",
    "new_trace_id",
    "load_metrics_json",
    "to_chrome_trace",
    "to_openmetrics",
    "write_metrics_json",
    "counter",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "get",
    "observe",
    "render_report",
    "report",
    "reset",
    "sink_to",
    "snapshot",
    "span",
]


class Observability:
    """One registry + tracer + event sink, usable standalone or as the
    process default."""

    def __init__(self, sink=None) -> None:
        self.metrics = MetricsRegistry()
        self.sink = sink if sink is not None else NullEventSink()
        self.tracer = Tracer(self.metrics, self.sink)

    # -- recording ------------------------------------------------------
    # The ``**labels`` mappings go to ``MetricsRegistry.series`` directly
    # instead of through the kwargs accessors: one dict build per call,
    # which matters at per-command instrumentation granularity.
    def counter(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.metrics.series(Counter, name, labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.series(Gauge, name, labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.series(Histogram, name, labels).observe(value)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def emit(self, event: str, **fields: Any) -> None:
        self.sink.emit(event, **fields)

    # -- sinks ----------------------------------------------------------
    def set_sink(self, sink) -> None:
        """Swap the event sink, closing the one being replaced.

        The close prevents a leaked open file handle per swap (e.g. a
        double ``enable(events_path=...)``).  Re-installing the sink that
        is already active -- as :meth:`sink_to` does when restoring the
        previous sink -- is a no-op close-wise.
        """
        previous = self.sink
        self.sink = sink
        self.tracer.sink = sink
        if previous is not sink:
            previous.close()

    @contextlib.contextmanager
    def sink_to(self, path: Union[str, os.PathLike]) -> Iterator[JsonlEventSink]:
        """Route events to ``path`` (JSONL, append) for the with-block.

        A displaced sink that declares ``tee_through = True`` keeps
        receiving events alongside the file (via :class:`TeeEventSink`):
        the per-job scoping hook the campaign service uses to stream a
        run's events live while the durable ``events.jsonl`` is written.
        Ordinary sinks (the default ``NullEventSink``, a CLI-attached
        JSONL file) are displaced for the block, exactly as before.
        """
        sink = JsonlEventSink(path)
        previous = self.sink
        installed = (
            TeeEventSink(sink, previous)
            if getattr(previous, "tee_through", False)
            else sink
        )
        self.sink = installed
        self.tracer.sink = installed
        try:
            yield sink
        finally:
            # Restore without set_sink's auto-close: `previous` must come
            # back alive; the temporary sink is closed explicitly.
            self.sink = previous
            self.tracer.sink = previous
            sink.close()

    # -- reading --------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        return self.metrics.snapshot()

    def report(self, title: str = "observability report") -> str:
        return render_report(self.snapshot(), title=title)

    def reset(self) -> None:
        self.metrics.reset()


#: Process-wide default instance.  Module-level helpers target it; the
#: ``_ENABLED`` flag gates them so disabled instrumentation costs one
#: boolean check per call site.
_DEFAULT = Observability()
_ENABLED = False

#: Shared no-op context manager handed out by :func:`span` when disabled
#: (``contextlib.nullcontext`` is reusable and reentrant).
_NULL_SPAN = contextlib.nullcontext()

#: Shared no-op sink yielded by :func:`sink_to` when disabled, so
#: ``with obs.sink_to(p) as sink: sink.path`` works either way.
_NULL_SINK = NullEventSink()


def enabled() -> bool:
    """Is the process-wide instrumentation currently recording?"""
    return _ENABLED


def enable(events_path: Optional[Union[str, os.PathLike]] = None) -> Observability:
    """Turn the process-wide layer on (idempotent); returns the instance.

    ``events_path`` optionally routes events to a JSONL file immediately;
    the runner engine attaches its own per-run sink regardless.
    """
    global _ENABLED
    _ENABLED = True
    if events_path is not None:
        sink = JsonlEventSink(events_path)
        previous = _DEFAULT.sink
        if getattr(previous, "tee_through", False):
            # The displaced sink must keep receiving (a capture buffer, a
            # service broadcast): fan out instead of replacing.  No
            # set_sink here -- it would close `previous`, which stays live.
            installed = TeeEventSink(sink, previous)
            _DEFAULT.sink = installed
            _DEFAULT.tracer.sink = installed
        else:
            _DEFAULT.set_sink(sink)
    return _DEFAULT


def disable() -> None:
    """Stop recording.  Accumulated metrics stay readable via report()."""
    global _ENABLED
    _ENABLED = False
    _DEFAULT.set_sink(NullEventSink())  # closes whatever sink was attached


def get() -> Observability:
    """The process-wide instance (whether or not it is enabled)."""
    return _DEFAULT


@contextlib.contextmanager
def capture() -> Iterator[Observability]:
    """Record into a fresh, isolated process-default instance.

    The worker half of cross-process telemetry: for the duration of the
    with-block the process-wide default -- the instance every module-level
    instrumentation call site targets -- is a fresh :class:`Observability`
    with a :class:`BufferedEventSink`, and recording is force-enabled.  On
    exit the previous default and enabled flag come back untouched, so the
    caller can snapshot the yielded instance (``layer.snapshot()``,
    ``layer.sink.events``) and ship it across the process boundary.

    Capture is pure observation -- it swaps observability state only, never
    simulation state -- so it preserves the zero-perturbation contract.

    Nested ``enable(events_path=...)`` inside the capture block targets
    the *fresh* instance (enable hits whatever the process default is --
    here, the capture layer) and tees through the buffer, so events land
    in both the file and ``layer.sink.events``.  On exit the buffer is
    re-installed and any displaced file sink is closed, so the shipment
    read works and the pre-capture sink handle comes back untouched.
    """
    global _DEFAULT, _ENABLED
    previous = (_DEFAULT, _ENABLED)
    buffer = BufferedEventSink()
    fresh = Observability(sink=buffer)
    _DEFAULT, _ENABLED = fresh, True
    try:
        yield fresh
    finally:
        _DEFAULT, _ENABLED = previous
        displaced = fresh.sink
        if displaced is not buffer:
            # A nested enable/set_sink displaced the capture buffer; put
            # it back and close what was installed (tee members too --
            # TeeEventSink.close deliberately closes nothing itself).
            fresh.sink = buffer
            fresh.tracer.sink = buffer
            for member in getattr(displaced, "sinks", (displaced,)):
                if member is not buffer:
                    member.close()


# ----------------------------------------------------------------------
# Module-level recording helpers: the instrumentation call sites.  Each
# starts with the enabled check so a disabled layer is near-free.
# ----------------------------------------------------------------------
def counter(name: str, amount: float = 1.0, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.metrics.series(Counter, name, labels).inc(amount)


def gauge(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.metrics.series(Gauge, name, labels).set(value)


def observe(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.metrics.series(Histogram, name, labels).observe(value)


def span(name: str, **attrs: Any):
    if not _ENABLED:
        return _NULL_SPAN
    return _DEFAULT.span(name, **attrs)


def emit(event: str, **fields: Any) -> None:
    if _ENABLED:
        _DEFAULT.emit(event, **fields)


def sink_to(path: Union[str, os.PathLike]):
    """Route the default instance's events to ``path`` for a with-block.

    When the layer is disabled this is a no-op context that still yields
    a :class:`NullEventSink` (never ``None``), so callers can use the
    yielded sink identically on both paths.
    """
    if not _ENABLED:
        return contextlib.nullcontext(_NULL_SINK)
    return _DEFAULT.sink_to(path)


# ----------------------------------------------------------------------
# Reading helpers (work whether or not recording is enabled).
# ----------------------------------------------------------------------
def snapshot() -> List[Dict[str, Any]]:
    return _DEFAULT.snapshot()


def report(title: str = "observability report") -> str:
    return _DEFAULT.report(title=title)


def reset() -> None:
    _DEFAULT.reset()
