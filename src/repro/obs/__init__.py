"""Run-level observability: metrics, spans, and an event log.

The instrumentation layer behind ``python -m repro campaign --metrics``.
Three cooperating pieces, bundled by :class:`Observability`:

``metrics``
    A :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
    histograms with deterministic snapshot/reset.
``tracing``
    :class:`~repro.obs.tracing.Tracer` spans
    (``with obs.span("profiler.run", chip_id=...)``) that time operations
    in wall-clock terms and feed both the registry and the event log.
``events``
    JSONL event sinks; the runner engine attaches one at
    ``<run_dir>/events.jsonl`` next to ``results.jsonl`` for durable runs.

Design contract -- **zero perturbation, near-zero overhead**:

* Instrumentation only *observes*: it never draws randomness (all
  simulation randomness flows through :func:`repro.rng.derive`), never
  advances simulated time, and never branches simulation behaviour, so a
  campaign summary is byte-identical with observability on or off
  (asserted in ``tests/test_obs.py``).
* The layer is **off by default**.  Every module-level helper starts with
  one boolean check and returns immediately when disabled, and hot
  vectorized paths (``repro.dram.cell``) carry no instrumentation at all
  -- only command-, iteration-, and unit-granularity code does.
* State is **process-wide but injectable**: components call the module
  helpers (which hit the process default), while anything that wants an
  isolated instance -- tests, the runner engine -- constructs its own
  :class:`Observability` and passes it explicitly.

Typical use::

    from repro import obs

    obs.enable()
    summary = CharacterizationCampaign(...).run(...)
    print(obs.report())
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Dict, Iterator, List, Optional, Union

from .events import JsonlEventSink, ListEventSink, NullEventSink
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .report import render_report
from .tracing import Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlEventSink",
    "ListEventSink",
    "MetricsRegistry",
    "NullEventSink",
    "Observability",
    "Tracer",
    "counter",
    "disable",
    "emit",
    "enable",
    "enabled",
    "gauge",
    "get",
    "observe",
    "render_report",
    "report",
    "reset",
    "sink_to",
    "snapshot",
    "span",
]


class Observability:
    """One registry + tracer + event sink, usable standalone or as the
    process default."""

    def __init__(self, sink=None) -> None:
        self.metrics = MetricsRegistry()
        self.sink = sink if sink is not None else NullEventSink()
        self.tracer = Tracer(self.metrics, self.sink)

    # -- recording ------------------------------------------------------
    def counter(self, name: str, amount: float = 1.0, **labels: Any) -> None:
        self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    def emit(self, event: str, **fields: Any) -> None:
        self.sink.emit(event, **fields)

    # -- sinks ----------------------------------------------------------
    def set_sink(self, sink) -> None:
        self.sink = sink
        self.tracer.sink = sink

    @contextlib.contextmanager
    def sink_to(self, path: Union[str, os.PathLike]) -> Iterator[JsonlEventSink]:
        """Route events to ``path`` (JSONL, append) for the with-block."""
        sink = JsonlEventSink(path)
        previous = self.sink
        self.set_sink(sink)
        try:
            yield sink
        finally:
            self.set_sink(previous)
            sink.close()

    # -- reading --------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        return self.metrics.snapshot()

    def report(self, title: str = "observability report") -> str:
        return render_report(self.snapshot(), title=title)

    def reset(self) -> None:
        self.metrics.reset()


#: Process-wide default instance.  Module-level helpers target it; the
#: ``_ENABLED`` flag gates them so disabled instrumentation costs one
#: boolean check per call site.
_DEFAULT = Observability()
_ENABLED = False

#: Shared no-op context manager handed out by :func:`span` when disabled
#: (``contextlib.nullcontext`` is reusable and reentrant).
_NULL_SPAN = contextlib.nullcontext()


def enabled() -> bool:
    """Is the process-wide instrumentation currently recording?"""
    return _ENABLED


def enable(events_path: Optional[Union[str, os.PathLike]] = None) -> Observability:
    """Turn the process-wide layer on (idempotent); returns the instance.

    ``events_path`` optionally routes events to a JSONL file immediately;
    the runner engine attaches its own per-run sink regardless.
    """
    global _ENABLED
    _ENABLED = True
    if events_path is not None:
        _DEFAULT.set_sink(JsonlEventSink(events_path))
    return _DEFAULT


def disable() -> None:
    """Stop recording.  Accumulated metrics stay readable via report()."""
    global _ENABLED
    _ENABLED = False
    _DEFAULT.sink.close()
    _DEFAULT.set_sink(NullEventSink())


def get() -> Observability:
    """The process-wide instance (whether or not it is enabled)."""
    return _DEFAULT


# ----------------------------------------------------------------------
# Module-level recording helpers: the instrumentation call sites.  Each
# starts with the enabled check so a disabled layer is near-free.
# ----------------------------------------------------------------------
def counter(name: str, amount: float = 1.0, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.counter(name, amount, **labels)


def gauge(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.gauge(name, value, **labels)


def observe(name: str, value: float, **labels: Any) -> None:
    if _ENABLED:
        _DEFAULT.observe(name, value, **labels)


def span(name: str, **attrs: Any):
    if not _ENABLED:
        return _NULL_SPAN
    return _DEFAULT.span(name, **attrs)


def emit(event: str, **fields: Any) -> None:
    if _ENABLED:
        _DEFAULT.emit(event, **fields)


def sink_to(path: Union[str, os.PathLike]):
    """Route the default instance's events to ``path`` for a with-block.

    A no-op context when the layer is disabled.
    """
    if not _ENABLED:
        return contextlib.nullcontext()
    return _DEFAULT.sink_to(path)


# ----------------------------------------------------------------------
# Reading helpers (work whether or not recording is enabled).
# ----------------------------------------------------------------------
def snapshot() -> List[Dict[str, Any]]:
    return _DEFAULT.snapshot()


def report(title: str = "observability report") -> str:
    return _DEFAULT.report(title=title)


def reset() -> None:
    _DEFAULT.reset()
