"""The live aggregation plane: watch campaigns *while* they execute.

Everything else in :mod:`repro.obs` is post-hoc -- exporters and the
analyzer read a finished run directory.  :class:`LivePlane` is the
online counterpart the campaign service mounts: one object, owned by the
``JobManager``, that aggregates three feeds --

* **request telemetry** from the HTTP server (:meth:`note_request`):
  per-route/method/status counters and latency histograms;
* **service gauges** pushed by the manager's periodic sampler
  (:meth:`set_service_gauges`): queue depth, running jobs, pool
  saturation, active shared-memory segments/bytes;
* **per-job registries**: each running job's
  :class:`~repro.obs.Observability` layer is registered for the job's
  lifetime (:meth:`register_job` / :meth:`unregister_job`), live-read at
  render time, and folded into a cumulative "completed" registry when
  the job ends -- so fleet-wide counters never go backwards when a job
  finishes; plus **unit deltas** at unit completion (:meth:`note_unit`)
  feeding per-job EWMA throughput and a recent-latency window for
  p50/p99.

Renders:

* :meth:`render_openmetrics` -- the ``GET /metrics`` body: service
  registry + completed registry + every running job's snapshot, merged
  with the registry's exact algebra and rendered through
  :func:`repro.obs.export.to_openmetrics`.
* :meth:`job_metrics` -- the ``GET /v1/jobs/{id}/metrics`` body: one
  job's live snapshot plus EWMA rates, latency percentiles, and the
  sampled ring-buffer time series.

Concurrency: feeds arrive from the HTTP protocol (event loop), the
manager's sampler task, and job executor threads.  A single plane lock
guards plane-level dicts (rings, rates, job table); registry reads are
snapshot-based (atomic list materialization under the GIL), so a sample
racing a job-thread write sees at worst a registry a few observations
behind -- never a torn structure.  The plane never touches simulation
state, preserving the zero-perturbation contract.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Tuple

from . import Observability
from .export import to_openmetrics
from .metrics import MetricsRegistry

__all__ = ["LivePlane", "SeriesRing"]

#: EWMA smoothing for unit-completion rates: ~the last dozen units
#: dominate, old throughput decays quickly when a job stalls.
_EWMA_ALPHA = 0.15

#: Per-job recent-latency window used for live p50/p99 (seconds values,
#: newest-wins).  Bounded so a million-unit job costs O(1) memory.
_LATENCY_WINDOW = 256


class SeriesRing:
    """Lock-cheap bounded time series: a deque of ``(ts, value)`` points.

    Appends are O(1) and evict the oldest point once ``maxlen`` is
    reached; reads copy the (small, bounded) buffer.  One ring per
    sampled series -- cheap enough to sample every second for hours.
    """

    __slots__ = ("_points", "_lock")

    def __init__(self, maxlen: int = 512) -> None:
        self._points: Deque[Tuple[float, float]] = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def push(self, ts: float, value: float) -> None:
        with self._lock:
            self._points.append((float(ts), float(value)))

    def points(self) -> List[Tuple[float, float]]:
        with self._lock:
            return list(self._points)

    def last(self) -> Optional[Tuple[float, float]]:
        with self._lock:
            return self._points[-1] if self._points else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._points)


class _JobFeed:
    """Plane-side state for one registered job."""

    __slots__ = (
        "tenant",
        "layer",
        "rings",
        "units_completed",
        "units_failed",
        "rate_ewma",
        "last_unit_mono",
        "latencies",
    )

    def __init__(self, tenant: str, layer: Observability) -> None:
        self.tenant = tenant
        self.layer = layer
        self.rings: Dict[str, SeriesRing] = {}
        self.units_completed = 0
        self.units_failed = 0
        self.rate_ewma: Optional[float] = None
        self.last_unit_mono: Optional[float] = None
        self.latencies: Deque[float] = deque(maxlen=_LATENCY_WINDOW)


def _window_percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile over a small sorted copy; None when empty."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
    return ordered[rank]


class LivePlane:
    """Aggregates live telemetry across the service and its running jobs."""

    def __init__(
        self,
        clock: Callable[[], float] = time.time,
        monotonic: Callable[[], float] = time.monotonic,
        ring_points: int = 512,
    ) -> None:
        self._clock = clock
        self._monotonic = monotonic
        self._ring_points = int(ring_points)
        self._lock = threading.Lock()
        #: Service-level registry (requests, queue depth, pool gauges).
        #: Recorded directly -- the plane exists only when the service
        #: mounts it, so there is no enabled/disabled gate to check.
        self.service = Observability()
        #: Cumulative fold of finished jobs' final snapshots.
        self._completed = MetricsRegistry()
        self._jobs: Dict[str, _JobFeed] = {}
        self._service_rings: Dict[str, SeriesRing] = {}

    # -- request feed ---------------------------------------------------
    def note_request(
        self, method: str, route: str, status: int, elapsed_s: float
    ) -> None:
        """Record one served HTTP request (called per response)."""
        self.service.counter(
            "service.requests", method=method, route=route, status=int(status)
        )
        self.service.observe(
            "service.request_seconds", elapsed_s, method=method, route=route
        )

    # -- service gauges -------------------------------------------------
    def set_service_gauges(self, **gauges: float) -> None:
        """Set ``service.<name>`` gauges (queue depth, pool saturation, shm
        usage...) and push each onto its sampled ring."""
        ts = self._clock()
        for name, value in gauges.items():
            full = f"service.{name}"
            self.service.gauge(full, float(value))
            self._ring(self._service_rings, full).push(ts, float(value))

    def _ring(self, table: Dict[str, SeriesRing], name: str) -> SeriesRing:
        with self._lock:
            ring = table.get(name)
            if ring is None:
                ring = table[name] = SeriesRing(self._ring_points)
            return ring

    # -- job lifecycle --------------------------------------------------
    def register_job(self, job_id: str, tenant: str, layer: Observability) -> None:
        with self._lock:
            self._jobs[job_id] = _JobFeed(tenant, layer)

    def unregister_job(self, job_id: str) -> None:
        """Drop a finished job's live feed, folding its final snapshot
        into the cumulative completed registry."""
        with self._lock:
            feed = self._jobs.pop(job_id, None)
        if feed is not None:
            self._completed.merge_snapshot(feed.layer.snapshot())

    def job_ids(self) -> List[str]:
        with self._lock:
            return list(self._jobs)

    # -- unit deltas ----------------------------------------------------
    def note_unit(self, job_id: str, elapsed_s: float, status: str) -> None:
        """Record one completed work unit (called from the job's progress
        callback, i.e. the executor thread)."""
        with self._lock:
            feed = self._jobs.get(job_id)
            if feed is None:
                return
            now = self._monotonic()
            feed.units_completed += 1
            if status != "ok":
                feed.units_failed += 1
            feed.latencies.append(float(elapsed_s))
            if feed.last_unit_mono is not None:
                gap = max(now - feed.last_unit_mono, 1e-9)
                rate = 1.0 / gap
                feed.rate_ewma = (
                    rate
                    if feed.rate_ewma is None
                    else _EWMA_ALPHA * rate + (1.0 - _EWMA_ALPHA) * feed.rate_ewma
                )
            feed.last_unit_mono = now

    # -- periodic sampling ----------------------------------------------
    def sample_jobs(self) -> None:
        """Push each running job's completion counters onto its rings;
        called by the manager's sampler task every interval."""
        ts = self._clock()
        with self._lock:
            feeds = list(self._jobs.items())
        for job_id, feed in feeds:
            self._ring(feed.rings, "units_completed").push(ts, feed.units_completed)
            self._ring(feed.rings, "units_failed").push(ts, feed.units_failed)
            if feed.rate_ewma is not None:
                self._ring(feed.rings, "units_per_s").push(ts, feed.rate_ewma)

    # -- renders --------------------------------------------------------
    def merged_snapshot(self) -> List[Dict[str, Any]]:
        """Service + completed + every running job, merged exactly."""
        merged = MetricsRegistry()
        merged.merge_snapshot(self.service.snapshot())
        merged.merge_snapshot(self._completed.snapshot())
        with self._lock:
            feeds = list(self._jobs.values())
        for feed in feeds:
            merged.merge_snapshot(feed.layer.snapshot())
        return merged.snapshot()

    def render_openmetrics(self) -> str:
        """The ``GET /metrics`` exposition body."""
        return to_openmetrics(self.merged_snapshot())

    def job_metrics(self, job_id: str) -> Optional[Dict[str, Any]]:
        """One job's live snapshot + rates, or ``None`` if not running."""
        with self._lock:
            feed = self._jobs.get(job_id)
            if feed is None:
                return None
            latencies = list(feed.latencies)
            rates: Dict[str, Any] = {
                "units_completed": feed.units_completed,
                "units_failed": feed.units_failed,
                "units_per_s_ewma": feed.rate_ewma,
            }
            rings = {name: ring.points() for name, ring in feed.rings.items()}
            tenant = feed.tenant
            layer = feed.layer
        rates["unit_p50_s"] = _window_percentile(latencies, 0.50)
        rates["unit_p99_s"] = _window_percentile(latencies, 0.99)
        return {
            "job_id": job_id,
            "tenant": tenant,
            "snapshot": layer.snapshot(),
            "rates": rates,
            "series": rings,
        }

    def service_series(self) -> Dict[str, List[Tuple[float, float]]]:
        """The sampled service-gauge rings (for dashboards)."""
        with self._lock:
            table = dict(self._service_rings)
        return {name: ring.points() for name, ring in table.items()}
