"""Trace context: correlation identity for spans across process hops.

A :class:`TraceContext` names one causal tree -- typically one service
request / one campaign job -- with a ``trace_id``, plus the ``span_id``
of the remote parent span when the context crosses a boundary (HTTP
request -> job, engine dispatch -> pool worker).  The :class:`Tracer`
carries at most one context; when it is set, every span closed under it
is stamped with ``trace_id`` / ``span_id`` / ``parent_id`` so merged
event logs (parent run + worker telemetry replay) reconstruct a single
correlated tree per trace.

Identifier generation never touches simulation randomness: trace ids
come from :func:`os.urandom` and span ids from a per-process random
prefix plus a monotonically increasing counter (cheap -- no syscall per
span).  Both are opaque hex strings; uniqueness within a trace is all
that is required.
"""

from __future__ import annotations

import itertools
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

__all__ = ["TraceContext", "new_span_id", "new_trace_id"]


def new_trace_id() -> str:
    """A fresh 128-bit trace identifier (32 hex chars)."""
    return os.urandom(16).hex()


#: Span ids are ``<8-hex process prefix><8-hex counter>``.  The prefix is
#: drawn once per process so ids minted in pool workers cannot collide
#: with the parent's; the counter keeps the per-span cost to one
#: ``next()`` call.  After fork the child re-seeds lazily (prefix keyed
#: by pid) so forked workers do not share the parent's prefix.
_PREFIX_LOCK = threading.Lock()
_PREFIX_PID: Optional[int] = None
_PREFIX: str = ""
_COUNTER = itertools.count(1)


def new_span_id() -> str:
    """A fresh 64-bit span identifier (16 hex chars), unique per process."""
    global _PREFIX_PID, _PREFIX, _COUNTER
    pid = os.getpid()
    if pid != _PREFIX_PID:
        with _PREFIX_LOCK:
            if pid != _PREFIX_PID:
                _PREFIX = os.urandom(4).hex()
                _COUNTER = itertools.count(1)
                _PREFIX_PID = pid
    return f"{_PREFIX}{next(_COUNTER):08x}"


@dataclass(frozen=True)
class TraceContext:
    """One trace's identity: ``trace_id`` plus the remote parent span.

    ``span_id`` is the id of the span *on the other side of the boundary
    this context crossed* (the server's request span, the engine's run
    span) -- root spans opened under this context adopt it as their
    ``parent_id``.  ``None`` means the trace has no parent yet: the first
    span opened under the context becomes the root of the tree.
    """

    trace_id: str
    span_id: Optional[str] = None

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id())

    def child(self, span_id: str) -> "TraceContext":
        """The context a callee on the far side of a boundary should adopt."""
        return TraceContext(trace_id=self.trace_id, span_id=span_id)

    # -- wire format ----------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"trace_id": self.trace_id}
        if self.span_id is not None:
            payload["span_id"] = self.span_id
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, Any]) -> Optional["TraceContext"]:
        """Rebuild a context from its wire form; ``None`` when unusable.

        Tolerant by design: a missing or malformed context must never
        fail a work unit -- the unit simply runs untraced.
        """
        if not isinstance(payload, Mapping):
            return None
        trace_id = payload.get("trace_id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span_id = payload.get("span_id")
        if span_id is not None and not isinstance(span_id, str):
            span_id = None
        return cls(trace_id=trace_id, span_id=span_id)
