"""``python -m repro top``: a live terminal dashboard for the service.

Stdlib-only (ANSI escapes, no curses dependency beyond a terminal that
understands ``ESC[2J``): polls the service's ``/v1/healthz``,
``/v1/jobs``, ``/v1/jobs/{id}/metrics``, and ``/metrics`` endpoints and
redraws one composite frame per interval --

* service header: queue depth, running jobs, pool saturation, shared
  -memory segment usage, ledger lag;
* per-tenant job table: state, progress, tile completion (done/total
  plus the oldest open tile group's age, for straggler spotting on
  tile-dispatched runs), EWMA throughput and ETA from the job record,
  live p50/p99 unit latency from the per-job metrics;
* kernel-phase breakdown: mean duration and call count of the
  megakernel's ``span.kernel.*`` phase histograms, aggregated across
  every running (and completed) job from the OpenMetrics exposition;
* request table: per-route request counts and mean latency.

Everything below :func:`run_top` is a pure function of fetched payloads,
so tests render frames without a terminal; ``--once`` prints a single
frame and exits (the scriptable / CI mode).
"""

from __future__ import annotations

import re
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple

__all__ = ["parse_openmetrics", "render_frame", "run_top"]

#: One exposition sample: ``(metric_name, labels, value)``.
Sample = Tuple[str, Dict[str, str], float]

_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)(?:\s+\S+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_CLEAR = "\x1b[2J\x1b[H"
_BOLD = "\x1b[1m"
_RESET = "\x1b[0m"


def parse_openmetrics(text: str) -> List[Sample]:
    """Parse a text exposition into samples; tolerant of anything it
    does not understand (comments, ``# EOF``, exotic lines are skipped)."""
    samples: List[Sample] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            continue
        name, label_text, raw_value = match.groups()
        try:
            value = float(raw_value)
        except ValueError:
            continue
        labels: Dict[str, str] = {}
        if label_text:
            for pair in _LABEL_RE.finditer(label_text):
                labels[pair.group(1)] = (
                    pair.group(2)
                    .replace('\\"', '"')
                    .replace("\\n", "\n")
                    .replace("\\\\", "\\")
                )
        samples.append((name, labels, value))
    return samples


def _histogram_means(
    samples: Sequence[Sample], prefix: str, label: Optional[str] = None
) -> List[Tuple[str, int, float]]:
    """``(key, count, mean_seconds)`` rows for every ``<prefix>*`` histogram,
    keyed by the name remainder (or by ``label``'s value when given)."""
    sums: Dict[str, float] = {}
    counts: Dict[str, float] = {}
    for name, labels, value in samples:
        if not name.startswith(prefix):
            continue
        if name.endswith("_sum"):
            table, key = sums, name[len(prefix) : -len("_sum")]
        elif name.endswith("_count"):
            table, key = counts, name[len(prefix) : -len("_count")]
        else:
            continue
        if label is not None:
            key = labels.get(label, key)
        table[key] = table.get(key, 0.0) + value
    rows: List[Tuple[str, int, float]] = []
    for key in sorted(counts):
        count = counts[key]
        mean = (sums.get(key, 0.0) / count) if count else 0.0
        rows.append((key, int(count), mean))
    return rows


def _gauge(samples: Sequence[Sample], name: str) -> Optional[float]:
    for sample_name, _labels, value in samples:
        if sample_name == name:
            return value
    return None


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.0f}{unit}" if unit == "B" else f"{value:.1f}{unit}"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - loop always returns


def render_frame(
    health: Mapping[str, Any],
    jobs: Sequence[Mapping[str, Any]],
    job_metrics: Mapping[str, Mapping[str, Any]],
    samples: Sequence[Sample],
    now: Optional[float] = None,
    color: bool = False,
) -> str:
    """One dashboard frame as plain text (pure function of the payloads)."""
    bold, reset = (_BOLD, _RESET) if color else ("", "")
    pool = health.get("pool") or {}
    shm = health.get("shm") or {}
    lag = health.get("ledger_lag_s")
    lines = [
        f"{bold}repro top{reset} - status {health.get('status', '?')}"
        + (f" - {time.strftime('%H:%M:%S', time.localtime(now))}" if now else ""),
        (
            f"queued {health.get('queued', 0)}  running {health.get('running', 0)}  "
            f"pool {pool.get('workers_busy', 0)}/{pool.get('workers_total', 0)}  "
            f"shm {shm.get('segments', 0)} seg / {_fmt_bytes(float(shm.get('bytes', 0)))}  "
            f"ledger lag {_fmt_seconds(lag)}"
        ),
        "",
        f"{bold}{'TENANT':<12} {'JOB':<12} {'STATE':<12} {'PROGRESS':<12} "
        f"{'TILES':<12} {'STRAGGLE':>9} {'UNITS/S':>8} {'P50':>8} {'P99':>8}{reset}",
    ]
    for record in sorted(jobs, key=lambda r: (r.get("tenant", ""), r.get("job_id", ""))):
        job_id = str(record.get("job_id", "?"))
        progress = record.get("progress") or {}
        done = progress.get("completed")
        total = progress.get("total")
        progress_text = f"{done}/{total}" if done is not None else "-"
        tiles = progress.get("tiles") or {}
        tiles_done = tiles.get("done")
        tiles_text = (
            f"{tiles_done}/{tiles.get('total', '?')}" if tiles_done is not None else "-"
        )
        oldest = tiles.get("oldest_open_s")
        straggle_text = _fmt_seconds(float(oldest)) if oldest else "-"
        live = job_metrics.get(job_id) or {}
        rates = live.get("rates") or {}
        rate = rates.get("units_per_s_ewma")
        lines.append(
            f"{str(record.get('tenant', '?')):<12} {job_id:<12} "
            f"{str(record.get('state', '?')):<12} {progress_text:<12} "
            f"{tiles_text:<12} {straggle_text:>9} "
            f"{(f'{rate:.2f}' if rate is not None else '-'):>8} "
            f"{_fmt_seconds(rates.get('unit_p50_s')):>8} "
            f"{_fmt_seconds(rates.get('unit_p99_s')):>8}"
        )
    if not jobs:
        lines.append("(no jobs)")
    phases = _histogram_means(samples, "span_kernel_")
    if phases:
        lines += ["", f"{bold}{'KERNEL PHASE':<20} {'CALLS':>8} {'MEAN':>10}{reset}"]
        for phase, count, mean in phases:
            lines.append(f"{phase:<20} {count:>8} {_fmt_seconds(mean):>10}")
    requests = _histogram_means(samples, "service_request_seconds", label="route")
    if requests:
        lines += ["", f"{bold}{'ROUTE':<28} {'REQS':>8} {'MEAN':>10}{reset}"]
        for route, count, mean in requests:
            lines.append(f"{route:<28} {count:>8} {_fmt_seconds(mean):>10}")
    depth = _gauge(samples, "service_queue_depth")
    if depth is not None:
        lines += ["", f"sampled queue depth: {depth:.0f}"]
    return "\n".join(lines) + "\n"


def _fetch_frame(client) -> str:
    health = client.healthz()
    jobs = client.jobs()
    live: Dict[str, Mapping[str, Any]] = {}
    for record in jobs:
        if record.get("state") == "running":
            try:
                live[str(record["job_id"])] = client.job_metrics(record["job_id"])
            except Exception:  # noqa: BLE001 - job may finish mid-poll
                continue
    samples = parse_openmetrics(client.metrics_text())
    return render_frame(health, jobs, live, samples, now=time.time(), color=True)


def run_top(
    host: str = "127.0.0.1",
    port: int = 8787,
    interval_s: float = 1.0,
    once: bool = False,
    stream: Optional[TextIO] = None,
) -> int:
    """Poll the service and redraw until interrupted (0 on clean exit)."""
    from ..service.client import ServiceClient

    out = stream if stream is not None else sys.stdout
    client = ServiceClient(host, port)
    while True:
        try:
            frame = _fetch_frame(client)
        except Exception as exc:  # noqa: BLE001 - keep polling
            if once:
                print(f"error: cannot reach {host}:{port}: {exc}", file=sys.stderr)
                return 1
            frame = f"repro top - waiting for {host}:{port} ({exc})\n"
        if once:
            out.write(frame)
            return 0
        out.write(_CLEAR + frame)
        out.flush()
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            return 0
