"""Event sinks: the streaming half of the observability layer.

Where metrics aggregate, events narrate: one JSON object per noteworthy
occurrence (a profiler iteration, a completed work unit, a span closing),
appended to a ``.jsonl`` file and flushed per line -- the same durability
contract as the runner's ``results.jsonl``, so a crash loses at most the
event being written.  The runner engine attaches a sink at
``<run_dir>/events.jsonl`` for the duration of a durable run.

Event payloads must be JSON-serializable; the sink stamps each with a
wall-clock ``ts`` and a monotonically increasing ``seq``.  Timestamps make
the event log *non*-deterministic by design -- it records when things
really happened -- which is why campaign results are never derived from it.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Optional, TextIO, Union


class NullEventSink:
    """Swallows events; the default when no event log was requested."""

    path: Optional[pathlib.Path] = None

    def emit(self, event: str, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


class JsonlEventSink:
    """Appends one JSON line per event to ``path``, flushed immediately.

    Reopening an existing file (the checkpoint/resume path) continues the
    ``seq`` sequence where the previous attach left off, so ordering-by-seq
    consumers see one monotone stream across resumes instead of duplicate
    sequence numbers.
    """

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._seq = self._next_seq(self.path)
        self._handle: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    @staticmethod
    def _next_seq(path: pathlib.Path) -> int:
        """First unused ``seq`` in an existing event log (0 when fresh).

        Scans for the largest recorded ``seq``; unparseable lines (a torn
        tail from a crash) fall back to the line count so the sequence
        still moves strictly forward.
        """
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return 0
        next_seq = 0
        for lineno, line in enumerate(raw.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                seq = json.loads(line).get("seq")
            except json.JSONDecodeError:
                seq = None
            if isinstance(seq, int):
                next_seq = max(next_seq, seq + 1)
            else:
                next_seq = max(next_seq, lineno)
        return next_seq

    def emit(self, event: str, **fields: Any) -> None:
        if self._handle is None:
            return
        row = {"event": event, "ts": time.time(), "seq": self._seq}
        row.update(fields)
        self._seq += 1
        self._handle.write(json.dumps(row, sort_keys=True, default=str) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TeeEventSink:
    """Fans every event out to multiple member sinks.

    Installed by :meth:`repro.obs.Observability.sink_to` when the sink
    being displaced declares ``tee_through = True`` -- the run-dir JSONL
    log *and* the displaced sink (e.g. the service's per-job broadcast
    sink feeding live HTTP event streams) both see the stream.  The tee
    owns none of its members: closing it closes nothing, the installer
    remains responsible for each member's lifecycle.
    """

    path: Optional[pathlib.Path] = None

    def __init__(self, *sinks: Any) -> None:
        self.sinks = tuple(sinks)

    def emit(self, event: str, **fields: Any) -> None:
        for sink in self.sinks:
            sink.emit(event, **fields)

    def close(self) -> None:
        pass


class ListEventSink:
    """Collects events in memory; the test double."""

    path: Optional[pathlib.Path] = None

    def __init__(self) -> None:
        self.events = []

    def emit(self, event: str, **fields: Any) -> None:
        row = {"event": event}
        row.update(fields)
        self.events.append(row)

    def close(self) -> None:
        pass


class BufferedEventSink(ListEventSink):
    """In-memory sink that stamps wall-clock ``ts`` like the JSONL sink.

    Used for worker-side telemetry capture: a pool worker buffers its
    events here, ships the rows back attached to the unit result, and the
    parent replays them into its own sink -- the preserved ``ts`` keeps
    the merged event log truthful about when things really happened in
    the worker.

    ``tee_through`` marks the buffer as a sink that must keep receiving
    when displaced (by ``sink_to`` or a nested ``enable(events_path=...)``
    inside ``obs.capture``): the telemetry shipment reads the buffer at
    capture exit, so silently diverting its stream would lose events.
    """

    tee_through = True

    def emit(self, event: str, **fields: Any) -> None:
        row: dict = {"event": event, "ts": time.time()}
        row.update(fields)
        self.events.append(row)
