"""Offline run-directory analyzer: make recorded telemetry usable.

The consumer half of cross-process telemetry (``python -m repro obs``).
Where the live layer records, this module *reads*: given a run directory
produced by the runner engine --

::

    <run_dir>/
        manifest.json    # campaign fingerprint + configuration
        results.jsonl    # one UnitResult row per completion (append-only)
        events.jsonl     # run event log (spans, unit rows, iterations)
        metrics.json     # merged metric snapshot written at run end

-- it produces a run summary (unit throughput and latency percentiles,
retry and failure breakdown, slowest spans, per-chip profiling timeline),
run-over-run comparison for regression checks, and Prometheus /
Chrome-trace / HTML exports.

Everything here is tolerant of partial runs: ``events.jsonl`` and
``metrics.json`` only exist when the run recorded with ``--metrics``, a
torn trailing line is the signature of a mid-write crash and is skipped,
and resumed runs -- which append a second ``runner.start`` and re-record
units whose earlier row was ``failed`` -- analyze with later-row-wins
semantics, exactly like the result store's resume path.
"""

from __future__ import annotations

import html as html_mod
import json
import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .export import load_metrics_json, to_chrome_trace, to_openmetrics

#: Run-directory file names (mirrors ``repro.runner.store``; kept literal
#: here so the offline analyzer does not import the execution stack).
MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.json"

#: ``--export`` format -> default output file name inside the run dir.
EXPORT_FORMATS = {
    "prometheus": "metrics.prom",
    "chrome-trace": "trace.json",
    "html": "summary.html",
}


@dataclass
class RunData:
    """Everything read back from one run directory."""

    run_dir: pathlib.Path
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: Raw result rows in append order (re-recorded units appear twice).
    result_rows: List[Dict[str, Any]] = field(default_factory=list)
    #: unit_id -> final row (later rows win, matching resume semantics).
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Parsed ``metrics.json`` payload, or ``None`` when the run did not
    #: record metrics.
    metrics: Optional[Dict[str, Any]] = None
    #: Unparseable JSONL lines skipped while loading (crash artifacts).
    skipped_lines: int = 0


def _read_jsonl(path: pathlib.Path) -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL file, skipping unparseable lines (returns rows, skips)."""
    rows: List[Dict[str, Any]] = []
    skipped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if isinstance(row, dict):
            rows.append(row)
        else:
            skipped += 1
    return rows, skipped


def load_run(run_dir: Union[str, os.PathLike]) -> RunData:
    """Load a run directory for analysis.

    Requires ``results.jsonl`` (the one file every durable run has); the
    manifest, event log, and metric snapshot are picked up when present.
    """
    run_dir = pathlib.Path(run_dir)
    results_path = run_dir / RESULTS_NAME
    if not results_path.exists():
        raise ConfigurationError(
            f"{run_dir} is not a run directory (no {RESULTS_NAME}); point the "
            "analyzer at a --run-dir produced by `python -m repro campaign`"
        )
    run = RunData(run_dir=run_dir)
    run.result_rows, run.skipped_lines = _read_jsonl(results_path)
    for row in run.result_rows:
        unit_id = str(row.get("unit_id", ""))
        if unit_id:
            run.results[unit_id] = row

    manifest_path = run_dir / MANIFEST_NAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if isinstance(manifest, dict):
                run.manifest = manifest
        except (json.JSONDecodeError, UnicodeDecodeError):
            run.skipped_lines += 1

    events_path = run_dir / EVENTS_NAME
    if events_path.exists():
        events, skipped = _read_jsonl(events_path)
        run.events = events
        run.skipped_lines += skipped

    metrics_path = run_dir / METRICS_NAME
    if metrics_path.exists():
        run.metrics = load_metrics_json(metrics_path)
    return run


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact linear-interpolated percentile of a small sample (q in [0,1])."""
    if not values:
        return None
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100.0:
        return f"{value:.0f}s"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _fmt_delta(a: Optional[float], b: Optional[float]) -> str:
    if a is None or b is None:
        return "-"
    if a == 0.0:
        return "-" if b == 0.0 else "+inf"
    change = (b - a) / a * 100.0
    return f"{change:+.1f}%"


# ----------------------------------------------------------------------
# Derived views
# ----------------------------------------------------------------------
def unit_latency_stats(run: RunData) -> Dict[str, Optional[float]]:
    """Latency distribution over the final row of every unit."""
    elapsed = [float(r.get("elapsed_s", 0.0)) for r in run.results.values()]
    if not elapsed:
        return {"count": 0}
    return {
        "count": len(elapsed),
        "mean": sum(elapsed) / len(elapsed),
        "p50": percentile(elapsed, 0.50),
        "p95": percentile(elapsed, 0.95),
        "p99": percentile(elapsed, 0.99),
        "max": max(elapsed),
    }


def failure_breakdown(run: RunData) -> Dict[str, List[str]]:
    """error type -> sorted unit ids still failed at their final row."""
    breakdown: Dict[str, List[str]] = {}
    for unit_id, row in sorted(run.results.items()):
        if row.get("status") == "failed":
            error = row.get("error") or {}
            breakdown.setdefault(str(error.get("type", "unknown")), []).append(unit_id)
    return breakdown


def throughput_units_per_s(run: RunData) -> Optional[float]:
    """Completion rate over the observed ``runner.unit`` event window."""
    stamps = sorted(
        float(e["ts"]) for e in run.events if e.get("event") == "runner.unit" and "ts" in e
    )
    if len(stamps) < 2 or stamps[-1] <= stamps[0]:
        return None
    return (len(stamps) - 1) / (stamps[-1] - stamps[0])


def slowest_spans(run: RunData, top: int = 5) -> List[Dict[str, Any]]:
    spans = [e for e in run.events if e.get("event") == "span" and "elapsed_s" in e]
    spans.sort(key=lambda e: (-float(e["elapsed_s"]), str(e.get("name"))))
    return spans[:top]


def chip_timelines(run: RunData) -> List[Dict[str, Any]]:
    """Per-chip profiling progress from ``profiler.iteration`` events."""
    by_chip: Dict[Any, Dict[str, Any]] = {}
    for event in run.events:
        if event.get("event") != "profiler.iteration":
            continue
        chip = event.get("chip_id")
        entry = by_chip.setdefault(
            chip,
            {"chip_id": chip, "iterations": 0, "new_cells": 0, "first_ts": None, "last_ts": None},
        )
        entry["iterations"] += 1
        entry["new_cells"] += int(event.get("new_cells", 0))
        ts = event.get("ts")
        if ts is not None:
            ts = float(ts)
            entry["first_ts"] = ts if entry["first_ts"] is None else min(entry["first_ts"], ts)
            entry["last_ts"] = ts if entry["last_ts"] is None else max(entry["last_ts"], ts)
    return sorted(by_chip.values(), key=lambda e: (e["chip_id"] is None, e["chip_id"]))


def counter_totals(run: RunData) -> Dict[str, float]:
    """metric name -> total across label sets, for counters in metrics.json."""
    totals: Dict[str, float] = {}
    for row in (run.metrics or {}).get("series", []):
        if row.get("kind") == "counter":
            name = str(row.get("name"))
            totals[name] = totals.get(name, 0.0) + float(row.get("value", 0.0))
    return totals


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def summarize_run(run: RunData, timeline_limit: int = 20) -> str:
    """Render the run summary the ``python -m repro obs <run_dir>`` prints."""
    lines: List[str] = [f"== run summary: {run.run_dir} =="]

    manifest = run.manifest
    if manifest:
        fingerprint = str(manifest.get("fingerprint", ""))[:12]
        lines.append(
            f"campaign     : {manifest.get('kind', 'unknown')}"
            + (f" (fingerprint {fingerprint}...)" if fingerprint else "")
        )
        if "n_units" in manifest:
            lines.append(f"planned      : {manifest['n_units']} units")

    ok = sum(1 for r in run.results.values() if r.get("status") == "ok")
    failed = len(run.results) - ok
    rerecorded = len(run.result_rows) - len(run.results)
    executions = sum(int(r.get("attempts", 1)) for r in run.result_rows)
    retries = executions - len(run.result_rows)
    lines.append(
        f"units        : {len(run.results)} recorded | {ok} ok | {failed} failed"
        + (f" | {rerecorded} re-recorded across resumes" if rerecorded else "")
    )
    lines.append(
        f"attempts     : {executions} executions | {retries} in-worker retries"
    )

    stats = unit_latency_stats(run)
    if stats.get("count"):
        lines.append(
            "unit latency : "
            f"mean {_fmt_seconds(stats['mean'])} | p50 {_fmt_seconds(stats['p50'])} | "
            f"p95 {_fmt_seconds(stats['p95'])} | p99 {_fmt_seconds(stats['p99'])} | "
            f"max {_fmt_seconds(stats['max'])}"
        )
    rate = throughput_units_per_s(run)
    if rate is not None:
        lines.append(f"throughput   : {rate:.2f} units/s (over runner.unit events)")

    breakdown = failure_breakdown(run)
    if breakdown:
        lines.append("failures     :")
        for error_type, unit_ids in sorted(breakdown.items()):
            shown = ", ".join(unit_ids[:5]) + (", ..." if len(unit_ids) > 5 else "")
            lines.append(f"  {error_type}: {len(unit_ids)} units ({shown})")

    spans = slowest_spans(run)
    if spans:
        lines.append("slowest spans:")
        for span in spans:
            attrs = [
                f"{k}={span[k]}"
                for k in ("unit_id", "chip_id", "mechanism", "backend")
                if span.get(k) is not None
            ]
            suffix = f" ({', '.join(attrs)})" if attrs else ""
            lines.append(
                f"  {span.get('name')}: {_fmt_seconds(float(span['elapsed_s']))}{suffix}"
            )

    timelines = chip_timelines(run)
    if timelines:
        lines.append(f"chip timeline ({len(timelines)} chips):")
        for entry in timelines[:timeline_limit]:
            window = (
                _fmt_seconds(entry["last_ts"] - entry["first_ts"])
                if entry["first_ts"] is not None and entry["last_ts"] is not None
                else "-"
            )
            lines.append(
                f"  chip {entry['chip_id']}: {entry['iterations']} iterations, "
                f"{entry['new_cells']} cells discovered, {window} window"
            )
        if len(timelines) > timeline_limit:
            lines.append(f"  ... {len(timelines) - timeline_limit} more chips")

    if run.metrics is not None:
        series = run.metrics.get("series", [])
        totals = counter_totals(run)
        highlights = [
            f"{name} {totals[name]:g}"
            for name in ("chip.commands", "profiler.iterations", "runner.units")
            if name in totals
        ]
        lines.append(
            f"metrics      : {len(series)} series in {METRICS_NAME}"
            + (f" ({'; '.join(highlights)})" if highlights else "")
        )
    else:
        lines.append(
            f"metrics      : no {METRICS_NAME} (run with --metrics to record one)"
        )
    if run.skipped_lines:
        lines.append(f"warnings     : skipped {run.skipped_lines} unparseable lines")
    return "\n".join(lines)


def compare_runs(run_a: RunData, run_b: RunData) -> str:
    """Run-over-run comparison for regression checks (A = baseline)."""
    lines = [
        "== run comparison ==",
        f"A: {run_a.run_dir}",
        f"B: {run_b.run_dir}",
    ]
    fp_a = str(run_a.manifest.get("fingerprint", ""))
    fp_b = str(run_b.manifest.get("fingerprint", ""))
    if fp_a and fp_b:
        verdict = "identical" if fp_a == fp_b else "DIFFERENT"
        lines.append(f"campaign fingerprints: {verdict}")

    ok_a = sum(1 for r in run_a.results.values() if r.get("status") == "ok")
    ok_b = sum(1 for r in run_b.results.values() if r.get("status") == "ok")
    lines.append(
        f"units ok     : A {ok_a}/{len(run_a.results)} | B {ok_b}/{len(run_b.results)}"
    )

    stats_a, stats_b = unit_latency_stats(run_a), unit_latency_stats(run_b)
    if stats_a.get("count") and stats_b.get("count"):
        lines.append("unit latency : A -> B (delta)")
        for key in ("mean", "p50", "p95", "p99", "max"):
            lines.append(
                f"  {key:<4}: {_fmt_seconds(stats_a[key])} -> {_fmt_seconds(stats_b[key])} "
                f"({_fmt_delta(stats_a[key], stats_b[key])})"
            )
    rate_a, rate_b = throughput_units_per_s(run_a), throughput_units_per_s(run_b)
    if rate_a is not None and rate_b is not None:
        lines.append(
            f"throughput   : {rate_a:.2f} -> {rate_b:.2f} units/s "
            f"({_fmt_delta(rate_a, rate_b)})"
        )

    totals_a, totals_b = counter_totals(run_a), counter_totals(run_b)
    shared = sorted(set(totals_a) & set(totals_b))
    if shared:
        lines.append("counters     : A -> B (delta)")
        for name in shared:
            lines.append(
                f"  {name}: {totals_a[name]:g} -> {totals_b[name]:g} "
                f"({_fmt_delta(totals_a[name], totals_b[name])})"
            )
    only_a = sorted(set(totals_a) - set(totals_b))
    only_b = sorted(set(totals_b) - set(totals_a))
    if only_a:
        lines.append(f"counters only in A: {', '.join(only_a)}")
    if only_b:
        lines.append(f"counters only in B: {', '.join(only_b)}")
    return "\n".join(lines)


def to_html(run: RunData) -> str:
    """Self-contained HTML rendering of the run summary + metric series."""
    summary = html_mod.escape(summarize_run(run))
    rows: List[str] = []
    for series in (run.metrics or {}).get("series", []):
        labels = ",".join(f"{k}={v}" for k, v in sorted(series.get("labels", {}).items()))
        if series.get("kind") == "histogram":
            value = (
                f"count={series.get('count')} total={series.get('total'):g} "
                f"p50={series.get('p50')} p95={series.get('p95')} p99={series.get('p99')}"
            )
        else:
            value = f"{series.get('value'):g}"
        rows.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>".format(
                html_mod.escape(str(series.get("kind"))),
                html_mod.escape(str(series.get("name"))),
                html_mod.escape(labels or "-"),
                html_mod.escape(value),
            )
        )
    metrics_table = (
        "<table><thead><tr><th>kind</th><th>name</th><th>labels</th>"
        "<th>value</th></tr></thead><tbody>" + "\n".join(rows) + "</tbody></table>"
        if rows
        else "<p>No metrics.json recorded for this run.</p>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro run summary: {html_mod.escape(str(run.run_dir))}</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem; }}
pre {{ background: #f6f8fa; padding: 1rem; border-radius: 6px; }}
table {{ border-collapse: collapse; margin-top: 1rem; }}
th, td {{ border: 1px solid #d0d7de; padding: 0.25rem 0.6rem; text-align: left; }}
th {{ background: #f6f8fa; }}
</style>
</head>
<body>
<h1>Run summary</h1>
<pre>{summary}</pre>
<h2>Metric series</h2>
{metrics_table}
</body>
</html>
"""


def export_run(run: RunData, fmt: str) -> Tuple[str, str]:
    """Produce one export: returns (default file name, file contents)."""
    if fmt == "prometheus":
        if run.metrics is None:
            raise ConfigurationError(
                f"{run.run_dir} has no {METRICS_NAME}; re-run the campaign with "
                "--metrics to record a metric snapshot"
            )
        return EXPORT_FORMATS[fmt], to_openmetrics(run.metrics.get("series", []))
    if fmt == "chrome-trace":
        if not run.events:
            raise ConfigurationError(
                f"{run.run_dir} has no {EVENTS_NAME}; re-run the campaign with "
                "--metrics to record the event log"
            )
        trace = to_chrome_trace(run.events)
        return EXPORT_FORMATS[fmt], json.dumps(trace, indent=2, sort_keys=True) + "\n"
    if fmt == "html":
        return EXPORT_FORMATS[fmt], to_html(run)
    raise ConfigurationError(
        f"unknown export format {fmt!r}; expected one of {', '.join(EXPORT_FORMATS)}"
    )
