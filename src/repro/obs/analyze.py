"""Offline run-directory analyzer: make recorded telemetry usable.

The consumer half of cross-process telemetry (``python -m repro obs``).
Where the live layer records, this module *reads*: given a run directory
produced by the runner engine --

::

    <run_dir>/
        manifest.json    # campaign fingerprint + configuration
        results.jsonl    # one UnitResult row per completion (append-only)
        events.jsonl     # run event log (spans, unit rows, iterations)
        metrics.json     # merged metric snapshot written at run end

-- it produces a run summary (unit throughput and latency percentiles,
retry and failure breakdown, slowest spans, per-chip profiling timeline),
run-over-run comparison for regression checks, and Prometheus /
Chrome-trace / HTML exports.

Everything here is tolerant of partial runs: ``events.jsonl`` and
``metrics.json`` only exist when the run recorded with ``--metrics``, a
torn trailing line is the signature of a mid-write crash and is skipped,
and resumed runs -- which append a second ``runner.start`` and re-record
units whose earlier row was ``failed`` -- analyze with later-row-wins
semantics, exactly like the result store's resume path.
"""

from __future__ import annotations

import html as html_mod
import json
import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .export import load_metrics_json, to_chrome_trace, to_openmetrics

#: Run-directory file names (mirrors ``repro.runner.store``; kept literal
#: here so the offline analyzer does not import the execution stack).
MANIFEST_NAME = "manifest.json"
RESULTS_NAME = "results.jsonl"
EVENTS_NAME = "events.jsonl"
METRICS_NAME = "metrics.json"

#: ``--export`` format -> default output file name inside the run dir.
EXPORT_FORMATS = {
    "prometheus": "metrics.prom",
    "chrome-trace": "trace.json",
    "html": "summary.html",
}


@dataclass
class RunData:
    """Everything read back from one run directory."""

    run_dir: pathlib.Path
    manifest: Dict[str, Any] = field(default_factory=dict)
    #: Raw result rows in append order (re-recorded units appear twice).
    result_rows: List[Dict[str, Any]] = field(default_factory=list)
    #: unit_id -> final row (later rows win, matching resume semantics).
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Parsed ``metrics.json`` payload, or ``None`` when the run did not
    #: record metrics.
    metrics: Optional[Dict[str, Any]] = None
    #: Unparseable JSONL lines skipped while loading (crash artifacts).
    skipped_lines: int = 0


def _read_jsonl(path: pathlib.Path) -> Tuple[List[Dict[str, Any]], int]:
    """Read a JSONL file, skipping unparseable lines (returns rows, skips)."""
    rows: List[Dict[str, Any]] = []
    skipped = 0
    for line in path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if isinstance(row, dict):
            rows.append(row)
        else:
            skipped += 1
    return rows, skipped


def load_run(run_dir: Union[str, os.PathLike]) -> RunData:
    """Load a run directory for analysis.

    Requires ``results.jsonl`` (the one file every durable run has); the
    manifest, event log, and metric snapshot are picked up when present.
    """
    run_dir = pathlib.Path(run_dir)
    results_path = run_dir / RESULTS_NAME
    if not results_path.exists():
        raise ConfigurationError(
            f"{run_dir} is not a run directory (no {RESULTS_NAME}); point the "
            "analyzer at a --run-dir produced by `python -m repro campaign`"
        )
    run = RunData(run_dir=run_dir)
    run.result_rows, run.skipped_lines = _read_jsonl(results_path)
    for row in run.result_rows:
        unit_id = str(row.get("unit_id", ""))
        if unit_id:
            run.results[unit_id] = row

    manifest_path = run_dir / MANIFEST_NAME
    if manifest_path.exists():
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            if isinstance(manifest, dict):
                run.manifest = manifest
        except (json.JSONDecodeError, UnicodeDecodeError):
            run.skipped_lines += 1

    events_path = run_dir / EVENTS_NAME
    if events_path.exists():
        events, skipped = _read_jsonl(events_path)
        run.events = events
        run.skipped_lines += skipped

    metrics_path = run_dir / METRICS_NAME
    if metrics_path.exists():
        run.metrics = load_metrics_json(metrics_path)
    return run


# ----------------------------------------------------------------------
# Statistics helpers
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> Optional[float]:
    """Exact linear-interpolated percentile of a small sample (q in [0,1])."""
    if not values:
        return None
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 100.0:
        return f"{value:.0f}s"
    if value >= 1.0:
        return f"{value:.2f}s"
    return f"{value * 1e3:.1f}ms"


def _fmt_delta(a: Optional[float], b: Optional[float]) -> str:
    if a is None or b is None:
        return "-"
    if a == 0.0:
        return "-" if b == 0.0 else "+inf"
    # Normalize by |baseline| so the sign always means "b grew" / "b
    # shrank": with a plain ``/ a`` a negative baseline flips the sign
    # (a=-10 -> b=-5 is an increase, but (b-a)/a reads -50%).
    change = (b - a) / abs(a) * 100.0
    return f"{change:+.1f}%"


# ----------------------------------------------------------------------
# Derived views
# ----------------------------------------------------------------------
def unit_latency_stats(run: RunData) -> Dict[str, Optional[float]]:
    """Latency distribution over the final row of every *timed* unit.

    Rows without an ``elapsed_s`` field (hand-written fixtures, foreign
    producers) are excluded and counted under ``untimed`` -- folding them
    in as ``0.0`` would silently drag every percentile and the mean
    toward zero.
    """
    elapsed: List[float] = []
    untimed = 0
    for row in run.results.values():
        value = row.get("elapsed_s")
        if value is None:
            untimed += 1
        else:
            elapsed.append(float(value))
    if not elapsed:
        return {"count": 0, "untimed": untimed}
    return {
        "count": len(elapsed),
        "untimed": untimed,
        "mean": sum(elapsed) / len(elapsed),
        "p50": percentile(elapsed, 0.50),
        "p95": percentile(elapsed, 0.95),
        "p99": percentile(elapsed, 0.99),
        "max": max(elapsed),
    }


def failure_breakdown(run: RunData) -> Dict[str, List[str]]:
    """error type -> sorted unit ids still failed at their final row."""
    breakdown: Dict[str, List[str]] = {}
    for unit_id, row in sorted(run.results.items()):
        if row.get("status") == "failed":
            error = row.get("error") or {}
            breakdown.setdefault(str(error.get("type", "unknown")), []).append(unit_id)
    return breakdown


def throughput_units_per_s(run: RunData) -> Optional[float]:
    """Completion rate over the observed ``runner.unit`` event window."""
    stamps = sorted(
        float(e["ts"]) for e in run.events if e.get("event") == "runner.unit" and "ts" in e
    )
    if len(stamps) < 2 or stamps[-1] <= stamps[0]:
        return None
    return (len(stamps) - 1) / (stamps[-1] - stamps[0])


def slowest_spans(run: RunData, top: int = 5) -> List[Dict[str, Any]]:
    spans = [e for e in run.events if e.get("event") == "span" and "elapsed_s" in e]
    spans.sort(key=lambda e: (-float(e["elapsed_s"]), str(e.get("name"))))
    return spans[:top]


def chip_timelines(run: RunData) -> List[Dict[str, Any]]:
    """Per-chip profiling progress from ``profiler.iteration`` events."""
    by_chip: Dict[Any, Dict[str, Any]] = {}
    for event in run.events:
        if event.get("event") != "profiler.iteration":
            continue
        chip = event.get("chip_id")
        entry = by_chip.setdefault(
            chip,
            {"chip_id": chip, "iterations": 0, "new_cells": 0, "first_ts": None, "last_ts": None},
        )
        entry["iterations"] += 1
        entry["new_cells"] += int(event.get("new_cells", 0))
        ts = event.get("ts")
        if ts is not None:
            ts = float(ts)
            entry["first_ts"] = ts if entry["first_ts"] is None else min(entry["first_ts"], ts)
            entry["last_ts"] = ts if entry["last_ts"] is None else max(entry["last_ts"], ts)
    return sorted(by_chip.values(), key=lambda e: (e["chip_id"] is None, e["chip_id"]))


def counter_totals(run: RunData) -> Dict[str, float]:
    """metric name -> total across label sets, for counters in metrics.json."""
    totals: Dict[str, float] = {}
    for row in (run.metrics or {}).get("series", []):
        if row.get("kind") == "counter":
            name = str(row.get("name"))
            totals[name] = totals.get(name, 0.0) + float(row.get("value", 0.0))
    return totals


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def summarize_run(run: RunData, timeline_limit: int = 20) -> str:
    """Render the run summary the ``python -m repro obs <run_dir>`` prints."""
    lines: List[str] = [f"== run summary: {run.run_dir} =="]

    manifest = run.manifest
    if manifest:
        fingerprint = str(manifest.get("fingerprint", ""))[:12]
        lines.append(
            f"campaign     : {manifest.get('kind', 'unknown')}"
            + (f" (fingerprint {fingerprint}...)" if fingerprint else "")
        )
        if "n_units" in manifest:
            lines.append(f"planned      : {manifest['n_units']} units")

    ok = sum(1 for r in run.results.values() if r.get("status") == "ok")
    failed = len(run.results) - ok
    rerecorded = len(run.result_rows) - len(run.results)
    executions = sum(int(r.get("attempts", 1)) for r in run.result_rows)
    retries = executions - len(run.result_rows)
    lines.append(
        f"units        : {len(run.results)} recorded | {ok} ok | {failed} failed"
        + (f" | {rerecorded} re-recorded across resumes" if rerecorded else "")
    )
    lines.append(
        f"attempts     : {executions} executions | {retries} in-worker retries"
    )

    stats = unit_latency_stats(run)
    if stats.get("count"):
        untimed = stats.get("untimed") or 0
        lines.append(
            "unit latency : "
            f"mean {_fmt_seconds(stats['mean'])} | p50 {_fmt_seconds(stats['p50'])} | "
            f"p95 {_fmt_seconds(stats['p95'])} | p99 {_fmt_seconds(stats['p99'])} | "
            f"max {_fmt_seconds(stats['max'])}"
            + (f" | {untimed} untimed rows skipped" if untimed else "")
        )
    rate = throughput_units_per_s(run)
    if rate is not None:
        lines.append(f"throughput   : {rate:.2f} units/s (over runner.unit events)")

    breakdown = failure_breakdown(run)
    if breakdown:
        lines.append("failures     :")
        for error_type, unit_ids in sorted(breakdown.items()):
            shown = ", ".join(unit_ids[:5]) + (", ..." if len(unit_ids) > 5 else "")
            lines.append(f"  {error_type}: {len(unit_ids)} units ({shown})")

    spans = slowest_spans(run)
    if spans:
        lines.append("slowest spans:")
        for span in spans:
            attrs = [
                f"{k}={span[k]}"
                for k in ("unit_id", "chip_id", "mechanism", "backend")
                if span.get(k) is not None
            ]
            suffix = f" ({', '.join(attrs)})" if attrs else ""
            lines.append(
                f"  {span.get('name')}: {_fmt_seconds(float(span['elapsed_s']))}{suffix}"
            )

    timelines = chip_timelines(run)
    if timelines:
        lines.append(f"chip timeline ({len(timelines)} chips):")
        for entry in timelines[:timeline_limit]:
            window = (
                _fmt_seconds(entry["last_ts"] - entry["first_ts"])
                if entry["first_ts"] is not None and entry["last_ts"] is not None
                else "-"
            )
            lines.append(
                f"  chip {entry['chip_id']}: {entry['iterations']} iterations, "
                f"{entry['new_cells']} cells discovered, {window} window"
            )
        if len(timelines) > timeline_limit:
            lines.append(f"  ... {len(timelines) - timeline_limit} more chips")

    if run.metrics is not None:
        series = run.metrics.get("series", [])
        totals = counter_totals(run)
        highlights = [
            f"{name} {totals[name]:g}"
            for name in ("chip.commands", "profiler.iterations", "runner.units")
            if name in totals
        ]
        lines.append(
            f"metrics      : {len(series)} series in {METRICS_NAME}"
            + (f" ({'; '.join(highlights)})" if highlights else "")
        )
    else:
        lines.append(
            f"metrics      : no {METRICS_NAME} (run with --metrics to record one)"
        )
    if run.skipped_lines:
        lines.append(f"warnings     : skipped {run.skipped_lines} unparseable lines")
    return "\n".join(lines)


def _run_labels(count: int) -> List[str]:
    """Short run labels: A, B, C, ... then R26, R27, ... past the alphabet."""
    alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return [alphabet[i] if i < len(alphabet) else f"R{i}" for i in range(count)]


def compare_runs(run_a: RunData, run_b: RunData, *more: RunData) -> str:
    """Run-over-run comparison for regression checks (A = baseline).

    Accepts any number of runs beyond the first two; every delta is
    reported against run A, so a longitudinal sweep reads as "how far has
    each later round drifted from the baseline round".  With exactly two
    runs the output is the classic A-vs-B report.
    """
    runs = [run_a, run_b, *more]
    labels = _run_labels(len(runs))
    lines = ["== run comparison =="]
    lines.extend(f"{label}: {run.run_dir}" for label, run in zip(labels, runs))

    fingerprints = [str(run.manifest.get("fingerprint", "")) for run in runs]
    if all(fingerprints):
        verdict = "identical" if len(set(fingerprints)) == 1 else "DIFFERENT"
        lines.append(f"campaign fingerprints: {verdict}")

    ok_counts = [
        sum(1 for r in run.results.values() if r.get("status") == "ok")
        for run in runs
    ]
    lines.append(
        "units ok     : "
        + " | ".join(
            f"{label} {ok}/{len(run.results)}"
            for label, ok, run in zip(labels, ok_counts, runs)
        )
    )

    stats = [unit_latency_stats(run) for run in runs]
    if all(s.get("count") for s in stats):
        lines.append(f"unit latency : {' -> '.join(labels)} (delta)")
        for key in ("mean", "p50", "p95", "p99", "max"):
            values = [s[key] for s in stats]
            deltas = ", ".join(_fmt_delta(values[0], v) for v in values[1:])
            lines.append(
                f"  {key:<4}: {' -> '.join(_fmt_seconds(v) for v in values)} "
                f"({deltas})"
            )
    rates = [throughput_units_per_s(run) for run in runs]
    if all(rate is not None for rate in rates):
        deltas = ", ".join(_fmt_delta(rates[0], rate) for rate in rates[1:])
        lines.append(
            f"throughput   : {' -> '.join(f'{rate:.2f}' for rate in rates)} "
            f"units/s ({deltas})"
        )

    totals = [counter_totals(run) for run in runs]
    shared = sorted(set.intersection(*(set(t) for t in totals)))
    if shared:
        lines.append(f"counters     : {' -> '.join(labels)} (delta)")
        for name in shared:
            values = [t[name] for t in totals]
            deltas = ", ".join(_fmt_delta(values[0], v) for v in values[1:])
            lines.append(
                f"  {name}: {' -> '.join(f'{v:g}' for v in values)} ({deltas})"
            )
    for label, own in zip(labels, totals):
        others = set().union(*(set(t) for t in totals if t is not own))
        only = sorted(set(own) - others)
        if only:
            lines.append(f"counters only in {label}: {', '.join(only)}")
    return "\n".join(lines)


def _fmt_series_number(value: Any) -> str:
    """``%g`` for numbers, ``-`` for a missing field in a partial series.

    A hand-edited or truncated ``metrics.json`` can carry series rows
    without ``value``/``total``; the HTML export must render them as
    gaps, not crash on ``f"{None:g}"``.
    """
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{value:g}"
    return "-"


def to_html(run: RunData) -> str:
    """Self-contained HTML rendering of the run summary + metric series."""
    summary = html_mod.escape(summarize_run(run))
    rows: List[str] = []
    for series in (run.metrics or {}).get("series", []):
        labels = ",".join(f"{k}={v}" for k, v in sorted(series.get("labels", {}).items()))
        if series.get("kind") == "histogram":
            value = (
                f"count={series.get('count')} "
                f"total={_fmt_series_number(series.get('total'))} "
                f"p50={series.get('p50')} p95={series.get('p95')} p99={series.get('p99')}"
            )
        else:
            value = _fmt_series_number(series.get("value"))
        rows.append(
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>".format(
                html_mod.escape(str(series.get("kind"))),
                html_mod.escape(str(series.get("name"))),
                html_mod.escape(labels or "-"),
                html_mod.escape(value),
            )
        )
    metrics_table = (
        "<table><thead><tr><th>kind</th><th>name</th><th>labels</th>"
        "<th>value</th></tr></thead><tbody>" + "\n".join(rows) + "</tbody></table>"
        if rows
        else "<p>No metrics.json recorded for this run.</p>"
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro run summary: {html_mod.escape(str(run.run_dir))}</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem; }}
pre {{ background: #f6f8fa; padding: 1rem; border-radius: 6px; }}
table {{ border-collapse: collapse; margin-top: 1rem; }}
th, td {{ border: 1px solid #d0d7de; padding: 0.25rem 0.6rem; text-align: left; }}
th {{ background: #f6f8fa; }}
</style>
</head>
<body>
<h1>Run summary</h1>
<pre>{summary}</pre>
<h2>Metric series</h2>
{metrics_table}
</body>
</html>
"""


def comparison_html(runs: Sequence[RunData]) -> str:
    """Self-contained HTML rendering of an N-run comparison.

    The text report from :func:`compare_runs` is embedded verbatim, and
    the shared counters get a proper table -- one column per run plus a
    delta-vs-baseline column -- so a longitudinal sweep across many
    compacted rounds reads at a glance.
    """
    if len(runs) < 2:
        raise ConfigurationError("comparison_html needs at least two runs")
    labels = _run_labels(len(runs))
    report = html_mod.escape(compare_runs(runs[0], runs[1], *runs[2:]))
    totals = [counter_totals(run) for run in runs]
    names = sorted(set().union(*(set(t) for t in totals)))
    rows: List[str] = []
    for name in names:
        values = [t.get(name) for t in totals]
        cells = "".join(
            f"<td>{html_mod.escape(_fmt_series_number(v))}</td>" for v in values
        )
        delta = _fmt_delta(values[0], values[-1])
        rows.append(
            f"<tr><td>{html_mod.escape(name)}</td>{cells}"
            f"<td>{html_mod.escape(delta)}</td></tr>"
        )
    header = "".join(f"<th>{label}</th>" for label in labels)
    counters_table = (
        f"<table><thead><tr><th>counter</th>{header}"
        f"<th>{labels[0]}&rarr;{labels[-1]}</th></tr></thead><tbody>"
        + "\n".join(rows)
        + "</tbody></table>"
        if rows
        else "<p>No shared counters recorded across these runs.</p>"
    )
    run_list = "".join(
        f"<li><code>{html_mod.escape(label)}</code>: "
        f"{html_mod.escape(str(run.run_dir))}</li>"
        for label, run in zip(labels, runs)
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro run comparison ({len(runs)} runs)</title>
<style>
body {{ font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2rem; }}
pre {{ background: #f6f8fa; padding: 1rem; border-radius: 6px; }}
table {{ border-collapse: collapse; margin-top: 1rem; }}
th, td {{ border: 1px solid #d0d7de; padding: 0.25rem 0.6rem; text-align: left; }}
th {{ background: #f6f8fa; }}
</style>
</head>
<body>
<h1>Run comparison</h1>
<ul>{run_list}</ul>
<pre>{report}</pre>
<h2>Counters</h2>
{counters_table}
</body>
</html>
"""


def export_run(run: RunData, fmt: str) -> Tuple[str, str]:
    """Produce one export: returns (default file name, file contents)."""
    if fmt == "prometheus":
        if run.metrics is None:
            raise ConfigurationError(
                f"{run.run_dir} has no {METRICS_NAME}; re-run the campaign with "
                "--metrics to record a metric snapshot"
            )
        return EXPORT_FORMATS[fmt], to_openmetrics(run.metrics.get("series", []))
    if fmt == "chrome-trace":
        if not run.events:
            raise ConfigurationError(
                f"{run.run_dir} has no {EVENTS_NAME}; re-run the campaign with "
                "--metrics to record the event log"
            )
        trace = to_chrome_trace(run.events)
        return EXPORT_FORMATS[fmt], json.dumps(trace, indent=2, sort_keys=True) + "\n"
    if fmt == "html":
        return EXPORT_FORMATS[fmt], to_html(run)
    raise ConfigurationError(
        f"unknown export format {fmt!r}; expected one of {', '.join(EXPORT_FORMATS)}"
    )
