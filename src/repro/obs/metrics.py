"""Metric primitives: counters, gauges, and histograms in a registry.

The registry is the accumulation half of the observability layer
(:mod:`repro.obs`): instrumentation points increment counters, set gauges,
and feed histograms; reporting reads a deterministic snapshot.  Three
properties drive the design:

* **Observation only.**  Metrics never feed back into the simulation --
  no randomness, no simulated time, no control flow -- so enabling them
  cannot perturb a campaign's results.
* **Bounded memory.**  Histograms keep running aggregates (count, sum,
  sum of squares, min, max) plus a fixed set of bucket counts, never
  sample lists, so a six-day campaign's instrumentation stays
  O(#distinct metric series).
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` orders
  series by (name, sorted labels), so two runs that perform the same
  operations produce identical snapshots regardless of dict insertion
  order or thread interleaving at read time.
* **Exact mergeability.**  Every primitive folds a peer's state into its
  own without loss: counters sum, gauges take the incoming (latest)
  observation, and histograms merge their aggregates and bucket counts
  exactly -- merging per-worker registries equals observing the
  concatenated stream.  :meth:`MetricsRegistry.merge_snapshot` consumes
  the snapshot rows shipped back from pool workers, which is what makes
  ``--metrics`` reports identical in content for 1 or 16 workers.

Series are keyed by metric name plus a frozen label set, Prometheus-style::

    registry.counter("chip.commands", command="wait").inc()
    registry.histogram("runner.unit_seconds", status="ok").observe(0.21)
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Default histogram bucket upper bounds (seconds-oriented log scale; the
#: final implicit bucket is +Inf).  Shared by every histogram so bucket
#: counts from different processes always merge exactly.
DEFAULT_BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    60.0,
    300.0,
    1800.0,
)

#: A series key: (metric name, ((label, value), ...) sorted by label).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Mapping[str, Any]) -> SeriesKey:
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count of events (or event weight)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ConfigurationError("counters only increase; use a gauge")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        """Fold a peer counter in: totals sum."""
        self.value += other.value


class Gauge:
    """A value that can move both ways (queue depth, pool size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        """Fold a peer gauge in: the incoming (latest) observation wins."""
        self.value = other.value


class Histogram:
    """Running aggregates plus bucket counts over an observed stream.

    Keeps count/sum/sum-of-squares/min/max -- enough for mean and standard
    deviation -- and one count per bucket of :data:`DEFAULT_BUCKET_BOUNDS`
    (last bucket +Inf), enough for p50/p95/p99 estimation and Prometheus
    exposition.  All of it merges exactly: combining two histograms is
    indistinguishable from observing both value streams on one.
    """

    __slots__ = ("count", "total", "sum_sq", "min", "max", "bounds", "bucket_counts")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ConfigurationError("histogram bucket bounds must be strictly ascending")
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        # Bucket i holds values <= bounds[i]; the final bucket is +Inf.
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def stddev(self) -> Optional[float]:
        if not self.count:
            return None
        mean = self.total / self.count
        variance = max(0.0, self.sum_sq / self.count - mean * mean)
        return math.sqrt(variance)

    def percentile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0 <= q <= 1) from the buckets.

        Linear interpolation inside the bucket holding the target rank
        (Prometheus ``histogram_quantile`` semantics), clamped to the
        exact observed ``[min, max]`` so single-bucket streams still
        report sane tails.  ``None`` on an empty histogram.
        """
        if not (0.0 <= q <= 1.0):
            raise ConfigurationError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return None
        assert self.min is not None and self.max is not None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else min(0.0, self.min)
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self.min, min(self.max, estimate))
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable (counts sum to count)

    def merge(self, other: "Histogram") -> None:
        """Fold a peer histogram in, exactly, via the running aggregates."""
        if other.bounds != self.bounds:
            raise ConfigurationError(
                "cannot merge histograms with different bucket bounds"
            )
        self.count += other.count
        self.total += other.total
        self.sum_sq += other.sum_sq
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)
        for i, bucket_count in enumerate(other.bucket_counts):
            self.bucket_counts[i] += bucket_count


class MetricsRegistry:
    """Get-or-create store of metric series, keyed by name + labels.

    A series' kind is fixed by its first use; asking for the same series
    as a different kind raises :class:`~repro.errors.ConfigurationError`
    instead of silently aliasing counters onto gauges.
    """

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, Any] = {}
        #: Hot-path memo: (kind, name, raw insertion-ordered label items)
        #: -> series.  Skips the canonical key's sort/str work on every
        #: call after a series' first touch from a given call site, which
        #: keeps per-command instrumentation in the low-microsecond range.
        self._lookup: Dict[Any, Any] = {}
        #: Bumped by :meth:`reset` so instrumentation sites that cache
        #: series objects (e.g. the DRAM command trace) can detect that
        #: their handles went stale and refetch.
        self.generation = 0

    def series(self, cls, name: str, labels: Mapping[str, Any]):
        """Hot-path get-or-create: takes the labels mapping directly.

        The kwargs-flavoured accessors below re-pack ``**labels`` on every
        call; instrumentation hot paths (one counter + one histogram per
        simulated DRAM command) call this with an already-built mapping
        instead, paying one dict build per call site rather than three.
        """
        try:
            raw_key = (cls, name, tuple(labels.items()))
            series = self._lookup.get(raw_key)
        except TypeError:  # unhashable label value: take the slow path
            raw_key = None
            series = None
        if series is not None:
            return series
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = cls()
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(series).__name__}, "
                f"not {cls.__name__}"
            )
        if raw_key is not None:
            self._lookup[raw_key] = series
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.series(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.series(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self.series(Histogram, name, labels)

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """All series as plain dicts, deterministically ordered.

        Each entry carries ``kind``, ``name``, ``labels`` and the series'
        aggregate fields; the list is sorted by (name, labels) so equal
        instrumentation streams yield byte-equal JSON dumps.
        """
        rows: List[Dict[str, Any]] = []
        for (name, labels), series in sorted(self._series.items()):
            row: Dict[str, Any] = {
                "kind": type(series).__name__.lower(),
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(series, (Counter, Gauge)):
                row["value"] = series.value
            else:
                row.update(
                    count=series.count,
                    total=series.total,
                    sum_sq=series.sum_sq,
                    mean=series.mean,
                    stddev=series.stddev,
                    min=series.min,
                    max=series.max,
                    p50=series.percentile(0.50),
                    p95=series.percentile(0.95),
                    p99=series.percentile(0.99),
                    bucket_le=list(series.bounds),
                    buckets=list(series.bucket_counts),
                )
            rows.append(row)
        return rows

    def merge_snapshot(self, rows: List[Dict[str, Any]]) -> None:
        """Fold snapshot rows (e.g. shipped back from a pool worker) in.

        Merge semantics match the primitives: counters sum, gauges take
        the incoming observation, histograms merge exactly through their
        ``(count, total, sum_sq, min, max)`` aggregates and bucket counts
        -- so a parent registry that merges N worker snapshots reports the
        same content as one process observing everything itself.
        """
        for row in rows:
            kind = row.get("kind")
            name = str(row.get("name", ""))
            labels = {str(k): str(v) for k, v in dict(row.get("labels", {})).items()}
            if kind == "counter":
                self.counter(name, **labels).merge(_counter_from_row(row))
            elif kind == "gauge":
                self.gauge(name, **labels).merge(_gauge_from_row(row))
            elif kind == "histogram":
                self.histogram(name, **labels).merge(_histogram_from_row(row))
            else:
                raise ConfigurationError(f"cannot merge unknown metric kind {kind!r}")

    def reset(self) -> None:
        """Drop every series (a fresh registry without re-plumbing it)."""
        self._series.clear()
        self._lookup.clear()
        self.generation += 1

    def __len__(self) -> int:
        return len(self._series)


def _counter_from_row(row: Mapping[str, Any]) -> Counter:
    counter = Counter()
    counter.inc(float(row["value"]))
    return counter


def _gauge_from_row(row: Mapping[str, Any]) -> Gauge:
    gauge = Gauge()
    gauge.set(float(row["value"]))
    return gauge


def _histogram_from_row(row: Mapping[str, Any]) -> Histogram:
    """Rehydrate a histogram from its snapshot row (exact, not lossy)."""
    bounds = tuple(float(b) for b in row.get("bucket_le", DEFAULT_BUCKET_BOUNDS))
    hist = Histogram(bounds=bounds)
    hist.count = int(row["count"])
    hist.total = float(row["total"])
    hist.sum_sq = float(row.get("sum_sq", 0.0))
    hist.min = None if row.get("min") is None else float(row["min"])
    hist.max = None if row.get("max") is None else float(row["max"])
    buckets = row.get("buckets")
    if buckets is not None:
        if len(buckets) != len(hist.bucket_counts):
            raise ConfigurationError(
                "histogram snapshot bucket count does not match its bounds"
            )
        hist.bucket_counts = [int(c) for c in buckets]
    return hist
