"""Metric primitives: counters, gauges, and histograms in a registry.

The registry is the accumulation half of the observability layer
(:mod:`repro.obs`): instrumentation points increment counters, set gauges,
and feed histograms; reporting reads a deterministic snapshot.  Three
properties drive the design:

* **Observation only.**  Metrics never feed back into the simulation --
  no randomness, no simulated time, no control flow -- so enabling them
  cannot perturb a campaign's results.
* **Bounded memory.**  Histograms keep running aggregates (count, sum,
  sum of squares, min, max), never sample lists, so a six-day campaign's
  instrumentation stays O(#distinct metric series).
* **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot` orders
  series by (name, sorted labels), so two runs that perform the same
  operations produce identical snapshots regardless of dict insertion
  order or thread interleaving at read time.

Series are keyed by metric name plus a frozen label set, Prometheus-style::

    registry.counter("chip.commands", command="wait").inc()
    registry.histogram("runner.unit_seconds", status="ok").observe(0.21)
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError

#: A series key: (metric name, ((label, value), ...) sorted by label).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Mapping[str, Any]) -> SeriesKey:
    if not name:
        raise ConfigurationError("metric name must be non-empty")
    return name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count of events (or event weight)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0.0:
            raise ConfigurationError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, pool size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Running aggregates over an observed value stream.

    Keeps count/sum/sum-of-squares/min/max -- enough for mean and
    standard deviation in the report without unbounded storage.
    """

    __slots__ = ("count", "total", "sum_sq", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sum_sq = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sum_sq += value * value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def stddev(self) -> Optional[float]:
        if not self.count:
            return None
        mean = self.total / self.count
        variance = max(0.0, self.sum_sq / self.count - mean * mean)
        return math.sqrt(variance)


class MetricsRegistry:
    """Get-or-create store of metric series, keyed by name + labels.

    A series' kind is fixed by its first use; asking for the same series
    as a different kind raises :class:`~repro.errors.ConfigurationError`
    instead of silently aliasing counters onto gauges.
    """

    def __init__(self) -> None:
        self._series: Dict[SeriesKey, Any] = {}

    def _get_or_create(self, cls, name: str, labels: Mapping[str, Any]):
        key = _series_key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = cls()
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ConfigurationError(
                f"metric {name!r} already registered as {type(series).__name__}, "
                f"not {cls.__name__}"
            )
        return series

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """All series as plain dicts, deterministically ordered.

        Each entry carries ``kind``, ``name``, ``labels`` and the series'
        aggregate fields; the list is sorted by (name, labels) so equal
        instrumentation streams yield byte-equal JSON dumps.
        """
        rows: List[Dict[str, Any]] = []
        for (name, labels), series in sorted(self._series.items()):
            row: Dict[str, Any] = {
                "kind": type(series).__name__.lower(),
                "name": name,
                "labels": dict(labels),
            }
            if isinstance(series, (Counter, Gauge)):
                row["value"] = series.value
            else:
                row.update(
                    count=series.count,
                    total=series.total,
                    mean=series.mean,
                    stddev=series.stddev,
                    min=series.min,
                    max=series.max,
                )
            rows.append(row)
        return rows

    def reset(self) -> None:
        """Drop every series (a fresh registry without re-plumbing it)."""
        self._series.clear()

    def __len__(self) -> int:
        return len(self._series)
