"""Plain-text rendering of a metrics snapshot.

:func:`render_report` turns :meth:`MetricsRegistry.snapshot` rows into the
summary table behind ``python -m repro campaign --metrics`` and
``repro.obs.report()``: counters, gauges, then histograms, each section a
fixed-width table sorted the way the snapshot already is (by name, then
labels), so the rendering is as deterministic as the data.

This module deliberately does not reuse :func:`repro.analysis.report`
helpers: ``repro.obs`` sits below every instrumented layer (dram, core,
runner, analysis) and must not import upward.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _fmt_value(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return "-"
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return lines


def render_report(snapshot: List[Dict[str, Any]], title: str = "observability report") -> str:
    """Render one snapshot (see :meth:`MetricsRegistry.snapshot`) as text."""
    counters = [r for r in snapshot if r["kind"] == "counter"]
    gauges = [r for r in snapshot if r["kind"] == "gauge"]
    histograms = [r for r in snapshot if r["kind"] == "histogram"]

    lines: List[str] = [f"== {title} =="]
    if not snapshot:
        lines.append("(no metrics recorded; is observability enabled?)")
        return "\n".join(lines)

    for section, rows in (("counters", counters), ("gauges", gauges)):
        if not rows:
            continue
        lines.append("")
        lines.append(f"-- {section} --")
        lines.extend(
            _table(
                ["name", "labels", "value"],
                [
                    [r["name"], _fmt_labels(r["labels"]), _fmt_value(r["value"])]
                    for r in rows
                ],
            )
        )
    if histograms:
        lines.append("")
        lines.append("-- histograms --")
        lines.extend(
            _table(
                ["name", "labels", "count", "total", "mean", "p50", "p95", "p99", "min", "max"],
                [
                    [
                        r["name"],
                        _fmt_labels(r["labels"]),
                        _fmt_value(r["count"]),
                        _fmt_value(r["total"]),
                        _fmt_value(r["mean"]),
                        _fmt_value(r.get("p50")),
                        _fmt_value(r.get("p95")),
                        _fmt_value(r.get("p99")),
                        _fmt_value(r["min"]),
                        _fmt_value(r["max"]),
                    ]
                    for r in histograms
                ],
            )
        )
    return "\n".join(lines)
