"""Durable job ledger: ``<root>/jobs.jsonl``, the service's source of truth.

Every job state transition is appended as one JSON line and flushed
immediately -- the same crash contract as the runner's ``results.jsonl``:
a kill -9 loses at most the line being written, and a torn trailing line
is skipped on replay as a crash artifact (torn *interior* lines raise,
because they mean something other than a mid-write crash corrupted the
file).

Replay folds the append-only stream into the latest state per job.  A
restarted :class:`~repro.service.manager.JobManager` re-adopts every job
whose folded state is resumable (``queued``/``running``/``interrupted``):
the run directory's manifest-guarded result store already holds whatever
the crashed process persisted, so resuming is just re-running the job
with ``resume=True``.

Row schema (``spec`` rides only on the first row of each job)::

    {"ts": ..., "job_id": "job-000001", "tenant": "acme",
     "state": "queued", "spec": {...}, "error": null}
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from typing import Any, Dict, Optional, TextIO, Union

from ..errors import ConfigurationError

#: Ledger file name inside the service root.
LEDGER_NAME = "jobs.jsonl"


class JobLedger:
    """Append-only JSONL ledger of job state transitions."""

    def __init__(self, path: Union[str, os.PathLike]) -> None:
        self.path = pathlib.Path(path)
        self._handle: Optional[TextIO] = None
        #: Wall-clock time of the last flushed append (``None`` before the
        #: first write).  The service's healthz derives its *ledger lag*
        #: -- seconds since the last durable transition -- from this.
        self.last_append_ts: Optional[float] = None

    # ------------------------------------------------------------------
    def append(
        self,
        job_id: str,
        tenant: str,
        state: str,
        spec: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        **extra: Any,
    ) -> None:
        """Record one transition, flushed to the OS before returning."""
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        row: Dict[str, Any] = {
            "ts": time.time(),
            "job_id": job_id,
            "tenant": tenant,
            "state": state,
        }
        if spec is not None:
            row["spec"] = spec
        if error is not None:
            row["error"] = error
        row.update(extra)
        self._handle.write(json.dumps(row, sort_keys=True) + "\n")
        self._handle.flush()
        self.last_append_ts = row["ts"]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobLedger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def replay(self) -> Dict[str, Dict[str, Any]]:
        """Fold the stream into ``{job_id: latest row (+ first-seen spec)}``.

        Insertion order is submission order -- the order a restarted
        manager re-queues adopted jobs in, which keeps per-tenant FIFO
        fairness stable across restarts.
        """
        folded: Dict[str, Dict[str, Any]] = {}
        if not self.path.exists():
            return folded
        raw = self.path.read_text(encoding="utf-8")
        lines = raw.split("\n")
        complete = raw.endswith("\n")
        body = lines[:-1]
        for lineno, line in enumerate(body, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{self.path}:{lineno}: corrupt ledger row: {exc}"
                ) from exc
            self._fold(folded, row)
        if not complete and lines[-1].strip():
            try:
                row = json.loads(lines[-1])
            except json.JSONDecodeError:
                pass  # torn tail from a mid-write crash
            else:
                self._fold(folded, row)
        return folded

    @staticmethod
    def _fold(folded: Dict[str, Dict[str, Any]], row: Dict[str, Any]) -> None:
        job_id = str(row.get("job_id", ""))
        if not job_id:
            return
        previous = folded.get(job_id)
        if previous is not None and "spec" not in row and "spec" in previous:
            row = dict(row)
            row["spec"] = previous["spec"]
        if previous is not None and "trace_id" not in row and "trace_id" in previous:
            row = dict(row)
            row["trace_id"] = previous["trace_id"]
        if previous is not None and "created_ts" in previous:
            row.setdefault("created_ts", previous["created_ts"])
        elif previous is None:
            row = dict(row)
            row.setdefault("created_ts", row.get("ts"))
        folded[job_id] = row
