"""Job schema for the campaign service: specs, records, states, errors.

A *job* is one characterization campaign owned by a tenant.  The
submission payload is a :class:`CampaignJobSpec` -- the same knobs
``python -m repro campaign`` exposes, as plain JSON -- and the service
tracks each job as a :class:`JobRecord` that round-trips losslessly
through the durable ``jobs.jsonl`` ledger and the HTTP API.

State machine::

    queued -> running -> done
                      -> failed        (worker raised / config rejected)
                      -> cancelled     (DELETE; partial results persisted)
                      -> interrupted   (service shut down mid-run; the job
                                        is re-adopted and resumed on restart)
    queued -> cancelled                (cancelled before it ever started)

``queued``, ``running``, and ``interrupted`` are *resumable*: a restarted
:class:`~repro.service.manager.JobManager` re-queues them, and the
manifest-guarded result store means re-running a partially measured job
executes only the missing chips.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from .. import rng as rng_mod
from ..dram.geometry import ChipGeometry
from ..errors import ConfigurationError, ReproError

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

ALL_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED)
#: States a restarted manager re-adopts into its queue.
RESUMABLE_STATES = (QUEUED, RUNNING, INTERRUPTED)
#: States a job can never leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Tenant names become path components (``<root>/<tenant>/<job_id>``), so
#: they are restricted to a filesystem- and URL-safe alphabet.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


class ServiceError(ReproError):
    """Base class for campaign-service failures."""


class QueueFullError(ServiceError):
    """The manager's bounded queue rejected a submission (HTTP 429)."""


class UnknownJobError(ServiceError, KeyError):
    """A job id the manager has never seen (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep the message
        return self.args[0] if self.args else ""


def validate_tenant(tenant: str) -> str:
    if not _TENANT_RE.match(tenant or ""):
        raise ConfigurationError(
            f"invalid tenant {tenant!r}: expected 1-64 chars of "
            "[A-Za-z0-9._-] starting with an alphanumeric"
        )
    return tenant


@dataclass(frozen=True)
class CampaignJobSpec:
    """One campaign submission: the CLI's knobs as a JSON document.

    Defaults mirror ``python -m repro campaign`` exactly, so a spec that
    only says ``{"chips_per_vendor": 8}`` measures the same population the
    CLI would -- the byte-identity contract between the service path and
    the blocking path rests on this.
    """

    chips_per_vendor: int = 4
    capacity_gbit: float = 1.0
    iterations: int = 2
    seed: int = rng_mod.DEFAULT_SEED
    intervals_s: Tuple[float, ...] = (0.512, 1.024, 2.048)
    temperatures_c: Tuple[float, ...] = (45.0, 55.0)
    chips_per_unit: Optional[int] = None
    max_retries: int = 1
    fast_path: Optional[bool] = None
    #: Submission-window size for this job's share of the shared pool;
    #: ``None`` uses the manager's pool width.
    workers: Optional[int] = None
    #: Shared-memory population segment for the fleet path (``None`` =
    #: on whenever ``chips_per_unit`` > 1).  Execution knob only --
    #: byte-identical results either way.
    shared_population: Optional[bool] = None
    #: Condition-grid megakernel fusion in fleet workers.  Execution knob
    #: only -- byte-identical results either way.
    megakernel: bool = True
    #: Condition tiles per fleet chunk (``None`` = chunk dispatch, ``0``
    #: = auto-size from the worker count, ``N`` = explicit).  Execution
    #: knob only -- byte-identical results for any tiling; requires the
    #: fleet path.
    condition_tiles: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chips_per_vendor <= 0:
            raise ConfigurationError("chips_per_vendor must be positive")
        if self.capacity_gbit <= 0:
            raise ConfigurationError("capacity_gbit must be positive")
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not self.intervals_s or list(self.intervals_s) != sorted(self.intervals_s):
            raise ConfigurationError("intervals_s must be non-empty ascending")
        if not self.temperatures_c:
            raise ConfigurationError("temperatures_c needs at least one entry")
        if self.chips_per_unit is not None and self.chips_per_unit <= 0:
            raise ConfigurationError("chips_per_unit must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")
        if self.workers is not None and self.workers <= 0:
            raise ConfigurationError("workers must be positive")
        if self.shared_population and (
            self.chips_per_unit is None or self.chips_per_unit <= 1
        ):
            raise ConfigurationError(
                "shared_population requires chips_per_unit > 1 (the fleet path)"
            )
        if self.condition_tiles is not None:
            if self.condition_tiles < 0:
                raise ConfigurationError(
                    "condition_tiles must be >= 0 (0 = auto)"
                )
            if self.chips_per_unit is None or self.chips_per_unit <= 1:
                raise ConfigurationError(
                    "condition_tiles requires chips_per_unit > 1 (the fleet path)"
                )

    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "chips_per_vendor": self.chips_per_vendor,
            "capacity_gbit": self.capacity_gbit,
            "iterations": self.iterations,
            "seed": self.seed,
            "intervals_s": [float(t) for t in self.intervals_s],
            "temperatures_c": [float(t) for t in self.temperatures_c],
            "chips_per_unit": self.chips_per_unit,
            "max_retries": self.max_retries,
            "fast_path": self.fast_path,
            "workers": self.workers,
            "shared_population": self.shared_population,
            "megakernel": self.megakernel,
            "condition_tiles": self.condition_tiles,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "CampaignJobSpec":
        """Build a spec from a submission payload, rejecting unknown keys.

        A typo'd knob silently falling back to its default would run the
        wrong campaign; refusing with the allowed-key list is cheaper for
        everyone.
        """
        allowed = set(cls().to_json_dict())
        unknown = sorted(set(data) - allowed)
        if unknown:
            raise ConfigurationError(
                f"unknown spec keys: {', '.join(unknown)}; "
                f"allowed: {', '.join(sorted(allowed))}"
            )
        kwargs: Dict[str, Any] = {}
        for key in ("chips_per_vendor", "iterations", "seed", "max_retries"):
            if key in data:
                kwargs[key] = int(data[key])
        if "capacity_gbit" in data:
            kwargs["capacity_gbit"] = float(data["capacity_gbit"])
        if "intervals_s" in data:
            kwargs["intervals_s"] = tuple(float(t) for t in data["intervals_s"])
        if "temperatures_c" in data:
            kwargs["temperatures_c"] = tuple(float(t) for t in data["temperatures_c"])
        for key in ("chips_per_unit", "workers", "condition_tiles"):
            if key in data and data[key] is not None:
                kwargs[key] = int(data[key])
        if data.get("fast_path") is not None:
            kwargs["fast_path"] = bool(data["fast_path"])
        if data.get("shared_population") is not None:
            kwargs["shared_population"] = bool(data["shared_population"])
        if "megakernel" in data:
            kwargs["megakernel"] = bool(data["megakernel"])
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def geometry(self) -> ChipGeometry:
        return ChipGeometry.from_capacity_gigabits(self.capacity_gbit)

    def build_campaign(self):
        """The :class:`~repro.analysis.campaign.CharacterizationCampaign`
        this spec describes (imported lazily: service sits above analysis)."""
        from ..analysis.campaign import CharacterizationCampaign

        return CharacterizationCampaign(
            chips_per_vendor=self.chips_per_vendor,
            geometry=self.geometry(),
            iterations=self.iterations,
            seed=self.seed,
            fast_path=self.fast_path,
        )


@dataclass
class JobRecord:
    """The service's view of one job, as served by the HTTP API."""

    job_id: str
    tenant: str
    spec: CampaignJobSpec
    state: str = QUEUED
    created_ts: float = 0.0
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None
    error: Optional[str] = None
    run_dir: Optional[str] = None
    #: Trace id correlating every span/event the job's run emits (carried
    #: on the submission, or minted by the manager when absent).
    trace_id: Optional[str] = None
    #: Latest EWMA progress snapshot from the engine's ProgressTracker.
    progress: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.state not in ALL_STATES:
            raise ConfigurationError(f"unknown job state {self.state!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "spec": self.spec.to_json_dict(),
            "created_ts": self.created_ts,
            "started_ts": self.started_ts,
            "finished_ts": self.finished_ts,
            "error": self.error,
            "run_dir": self.run_dir,
            "trace_id": self.trace_id,
            "progress": dict(self.progress),
        }

    def snapshot(self) -> "JobRecord":
        """A detached copy safe to serialize while the job keeps mutating."""
        return replace(self, progress=dict(self.progress))
