"""Minimal JSON-over-HTTP front-end for the :class:`JobManager`.

Stdlib-only (``asyncio`` streams; no web framework) HTTP/1.1 with exactly
the surface the service needs:

====== ============================ ===========================================
Method Path                         Meaning
====== ============================ ===========================================
POST   ``/v1/jobs``                 Submit ``{"tenant": ..., "spec": {...}}``
GET    ``/v1/jobs``                 List jobs (``?tenant=`` filters)
GET    ``/v1/jobs/{id}``            Job status + EWMA progress / ETA
GET    ``/v1/jobs/{id}/events``     Live chunked JSONL event stream
GET    ``/v1/jobs/{id}/result``     Final campaign summary (done jobs only)
GET    ``/v1/jobs/{id}/metrics``    Live per-job snapshot + EWMA rates/series
DELETE ``/v1/jobs/{id}``            Cooperative cancel (partials persisted)
GET    ``/v1/tenants/{t}/lake``     Cross-run lake analytics over the tenant's
                                    finished jobs (``?report=``, ``?vendor=``,
                                    ``?kind=``, ``?runs=id1,id2``)
GET    ``/v1/healthz``              Liveness + queue depth + pool saturation,
                                    ledger lag, shm segment usage
GET    ``/metrics``                 OpenMetrics exposition of the live plane
====== ============================ ===========================================

Trace propagation: ``POST /v1/jobs`` honours an incoming W3C
``traceparent`` (or bare ``x-trace-id``) header -- the job's entire run
then correlates under the caller's trace id; absent one, the manager
mints a fresh root.  Every served request is also recorded into the live
plane (per-route counters + latency histograms) with the *route
template* as the label, never the raw path.

Error mapping keeps service semantics on the wire:
:class:`~repro.service.jobs.UnknownJobError` -> 404,
:class:`~repro.service.jobs.QueueFullError` -> 429,
:class:`~repro.errors.ConfigurationError` -> 400, anything else -> 500.
Every error body is ``{"error": {"type": ..., "message": ...}}``.

The events endpoint responds with ``Transfer-Encoding: chunked`` and writes
one JSON object per chunk as the job emits them, ending with the job's
terminal ``job.state`` event -- a plain ``http.client`` (or ``curl -N``)
consumer sees events live.
"""

from __future__ import annotations

import asyncio
import json
import re
import time
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ConfigurationError
from ..obs import TraceContext
from .jobs import CampaignJobSpec, QueueFullError, UnknownJobError
from .manager import JobManager

_MAX_BODY = 1 << 20  # 1 MiB is generous for a campaign spec
_JOB_PATH = re.compile(r"^/v1/jobs/([A-Za-z0-9._-]+)(/events|/result|/metrics)?$")
_TENANT_LAKE_PATH = re.compile(r"^/v1/tenants/([A-Za-z0-9._-]+)/lake$")

#: W3C ``traceparent``: version - trace-id - parent-span-id - flags.
_TRACEPARENT = re.compile(r"^[0-9a-f]{2}-([0-9a-f]{32})-([0-9a-f]{16})-[0-9a-f]{2}$")

#: OpenMetrics exposition content type served by ``GET /metrics``.
_OPENMETRICS_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str, error_type: str = "error") -> None:
        super().__init__(message)
        self.status = status
        self.error_type = error_type


def _route_template(path: str) -> str:
    """Collapse a request path to its route template for metric labels
    (bounded cardinality: job ids and tenants never become label values)."""
    if path in ("/metrics", "/v1/healthz", "/v1/jobs"):
        return path
    match = _JOB_PATH.match(path)
    if match is not None:
        return "/v1/jobs/{id}" + (match.group(2) or "")
    if _TENANT_LAKE_PATH.match(path) is not None:
        return "/v1/tenants/{tenant}/lake"
    return "unmatched"


def _trace_from_headers(headers: Mapping[str, str]) -> Optional[TraceContext]:
    """Incoming trace context: W3C ``traceparent`` first, then the simpler
    ``x-trace-id`` (32 lowercase hex).  Malformed values are ignored --
    propagation is best-effort, never a 4xx."""
    parent = _TRACEPARENT.match(headers.get("traceparent", ""))
    if parent is not None:
        return TraceContext(trace_id=parent.group(1), span_id=parent.group(2))
    trace_id = headers.get("x-trace-id", "")
    if re.fullmatch(r"[0-9a-f]{32}", trace_id):
        return TraceContext(trace_id=trace_id)
    return None


def _map_exception(exc: Exception) -> _HttpError:
    if isinstance(exc, _HttpError):
        return exc
    if isinstance(exc, UnknownJobError):
        return _HttpError(404, str(exc), "unknown_job")
    if isinstance(exc, QueueFullError):
        return _HttpError(429, str(exc), "queue_full")
    if isinstance(exc, ConfigurationError):
        return _HttpError(400, str(exc), "configuration")
    return _HttpError(500, f"{type(exc).__name__}: {exc}", "internal")


class ServiceProtocol:
    """One instance per server; handles each connection sequentially."""

    def __init__(self, manager: JobManager) -> None:
        self.manager = manager

    # ------------------------------------------------------------------
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        start = time.monotonic()
        method: Optional[str] = None
        route: Optional[str] = None
        status: Optional[int] = None
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, body, headers = request
            route = _route_template(path)
            status = await self._dispatch(writer, method, path, query, body, headers)
        except _HttpError as exc:
            status = exc.status
            await self._send_error(writer, exc)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - connection isolation
            mapped = _map_exception(exc)
            status = mapped.status
            try:
                await self._send_error(writer, mapped)
            except ConnectionError:
                pass
        finally:
            if method is not None and route is not None and status is not None:
                self.manager.plane.note_request(
                    method, route, status, time.monotonic() - start
                )
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, list], bytes, Dict[str, str]]]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        return method.upper(), split.path, parse_qs(split.query), body, headers

    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, list],
        body: bytes,
        headers: Dict[str, str],
    ) -> int:
        if path == "/metrics" and method == "GET":
            return await self._send_text(
                writer, 200, self.manager.plane.render_openmetrics(), _OPENMETRICS_TYPE
            )
        if path == "/v1/healthz" and method == "GET":
            return await self._send_json(writer, 200, self.manager.health())
        if path == "/v1/jobs":
            if method == "POST":
                return await self._submit(writer, body, headers)
            if method == "GET":
                tenant = (query.get("tenant") or [None])[0]
                records = self.manager.jobs(tenant)
                return await self._send_json(
                    writer, 200, {"jobs": [r.to_json_dict() for r in records]}
                )
            raise _HttpError(405, f"{method} not allowed on {path}")
        lake_match = _TENANT_LAKE_PATH.match(path)
        if lake_match is not None:
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            runs_param = (query.get("runs") or [None])[0]
            payload = await self.manager.lake_report(
                lake_match.group(1),
                report=(query.get("report") or ["runs"])[0],
                vendor=(query.get("vendor") or [None])[0],
                kind=(query.get("kind") or [None])[0],
                runs=runs_param.split(",") if runs_param else None,
            )
            return await self._send_json(writer, 200, payload)
        match = _JOB_PATH.match(path)
        if match is None:
            raise _HttpError(404, f"no route for {path}")
        job_id, suffix = match.group(1), match.group(2)
        if suffix == "/events":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return await self._stream_events(writer, job_id)
        if suffix == "/result":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return await self._send_json(writer, 200, self.manager.result(job_id))
        if suffix == "/metrics":
            if method != "GET":
                raise _HttpError(405, f"{method} not allowed on {path}")
            return await self._send_json(writer, 200, self.manager.job_metrics(job_id))
        if method == "GET":
            return await self._send_json(
                writer, 200, self.manager.job(job_id).to_json_dict()
            )
        if method == "DELETE":
            record = await self.manager.cancel(job_id)
            return await self._send_json(writer, 200, record.to_json_dict())
        raise _HttpError(405, f"{method} not allowed on {path}")

    async def _submit(
        self, writer: asyncio.StreamWriter, body: bytes, headers: Dict[str, str]
    ) -> int:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        tenant = payload.get("tenant")
        if not isinstance(tenant, str):
            raise _HttpError(400, 'submission requires a string "tenant" field')
        spec_data = payload.get("spec", {})
        if not isinstance(spec_data, dict):
            raise _HttpError(400, '"spec" must be a JSON object')
        spec = CampaignJobSpec.from_json_dict(spec_data)
        record = await self.manager.submit(
            tenant, spec, trace=_trace_from_headers(headers)
        )
        return await self._send_json(writer, 201, record.to_json_dict())

    async def _stream_events(self, writer: asyncio.StreamWriter, job_id: str) -> int:
        source, sink = self.manager.subscribe_events(job_id)
        headers = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(headers.encode("latin-1"))
        await writer.drain()
        try:
            if sink is None:
                for row in source:  # finished job: replay events.jsonl
                    await self._write_chunk(writer, row)
            else:
                queue: asyncio.Queue = source
                try:
                    while True:
                        row = await queue.get()
                        if row is None:
                            break
                        await self._write_chunk(writer, row)
                finally:
                    sink.unsubscribe(queue)
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away mid-stream
        return 200

    @staticmethod
    async def _write_chunk(writer: asyncio.StreamWriter, row: Dict[str, Any]) -> None:
        data = (json.dumps(row, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    @staticmethod
    async def _send_raw(
        writer: asyncio.StreamWriter, status: int, body: bytes, content_type: str
    ) -> int:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()
        return status

    @classmethod
    async def _send_json(
        cls, writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> int:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        return await cls._send_raw(writer, status, body, "application/json")

    @classmethod
    async def _send_text(
        cls, writer: asyncio.StreamWriter, status: int, text: str, content_type: str
    ) -> int:
        return await cls._send_raw(
            writer, status, text.encode("utf-8"), content_type
        )

    async def _send_error(self, writer: asyncio.StreamWriter, exc: _HttpError) -> None:
        await self._send_json(
            writer,
            exc.status,
            {"error": {"type": exc.error_type, "message": str(exc)}},
        )


async def serve(
    manager: JobManager, host: str = "127.0.0.1", port: int = 8787
) -> asyncio.AbstractServer:
    """Bind the API server (the manager must already be started)."""
    protocol = ServiceProtocol(manager)
    return await asyncio.start_server(protocol.handle, host, port)
