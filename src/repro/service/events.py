"""Per-job event broadcasting: the live half of ``GET /v1/jobs/{id}/events``.

Each job gets one :class:`BroadcastEventSink`, installed as its
:class:`~repro.obs.Observability` sink.  The engine's ``sink_to`` sees the
``tee_through`` flag and tees: the durable ``events.jsonl`` in the job's
run directory *and* this sink both receive every run event (engine
lifecycle, per-unit completions, replayed worker telemetry).

The sink is written to from the job's worker thread and read from the
asyncio event loop, so it bridges the two worlds explicitly: rows are
buffered under a lock (bounded history for late subscribers) and pushed
into per-subscriber ``asyncio.Queue``\\ s via ``call_soon_threadsafe``.
A ``None`` sentinel marks end-of-stream when the job reaches a terminal
state.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set


class BroadcastEventSink:
    """Thread-safe fan-out sink with bounded replay history.

    Parameters
    ----------
    loop:
        The asyncio loop subscriber queues live on.
    history_limit:
        How many recent events a new subscriber is replayed before going
        live.  Bounded so a million-unit campaign cannot pin every event
        in memory -- the complete log is always in the run directory's
        ``events.jsonl``.
    """

    #: Observability.sink_to tees to this sink instead of displacing it.
    tee_through = True
    path = None

    def __init__(
        self, loop: asyncio.AbstractEventLoop, history_limit: int = 512
    ) -> None:
        self._loop = loop
        self._lock = threading.Lock()
        self._history: Deque[Dict[str, Any]] = deque(maxlen=max(0, history_limit))
        self._queues: Set[asyncio.Queue] = set()
        self._seq = 0
        self._closed = False

    # -- sink interface (called from the job's worker thread) ----------
    def emit(self, event: str, **fields: Any) -> None:
        row: Dict[str, Any] = {"event": event, "ts": time.time(), "seq": self._seq}
        row.update(fields)
        with self._lock:
            if self._closed:
                return
            self._seq += 1
            self._history.append(row)
            queues = list(self._queues)
        for queue in queues:
            self._loop.call_soon_threadsafe(self._offer, queue, row)

    def close(self) -> None:
        """End every subscriber's stream; further emits are dropped."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues)
            self._queues.clear()
        for queue in queues:
            self._loop.call_soon_threadsafe(self._offer, queue, None)

    @staticmethod
    def _offer(queue: asyncio.Queue, row: Optional[Dict[str, Any]]) -> None:
        try:
            queue.put_nowait(row)
        except asyncio.QueueFull:  # pragma: no cover - unbounded by default
            pass

    # -- subscriber interface (called on the loop) ---------------------
    def subscribe(self) -> asyncio.Queue:
        """A queue pre-loaded with history, then fed live; ``None`` ends it."""
        queue: asyncio.Queue = asyncio.Queue()
        with self._lock:
            for row in self._history:
                queue.put_nowait(row)
            if self._closed:
                queue.put_nowait(None)
            else:
                self._queues.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        with self._lock:
            self._queues.discard(queue)

    def history(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._history)
