"""Blocking HTTP client for the campaign service (stdlib ``http.client``).

The programmatic mirror of the API in :mod:`repro.service.http`::

    client = ServiceClient("127.0.0.1", 8787)
    job = client.submit("acme", {"chips_per_vendor": 2, "iterations": 1})
    for event in client.events(job["job_id"]):   # live NDJSON stream
        print(event["event"])
    summary = client.result(job["job_id"])

Server-side errors are re-raised as their service-layer types
(:class:`~repro.service.jobs.UnknownJobError`,
:class:`~repro.service.jobs.QueueFullError`,
:class:`~repro.errors.ConfigurationError`) so callers handle HTTP and
in-process managers identically.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional
from urllib.parse import quote, urlencode

from ..errors import ConfigurationError
from .jobs import TERMINAL_STATES, QueueFullError, ServiceError, UnknownJobError

_ERROR_TYPES = {
    "unknown_job": UnknownJobError,
    "queue_full": QueueFullError,
    "configuration": ConfigurationError,
}


class ServiceHealth(Dict[str, Any]):
    """``GET /v1/healthz`` with typed accessors.

    Still a plain ``dict`` (subscripting and JSON round-trips keep
    working); the properties just name the extended fields.
    """

    @property
    def status(self) -> str:
        return str(self.get("status", ""))

    @property
    def queued(self) -> int:
        return int(self.get("queued", 0))

    @property
    def running(self) -> int:
        return int(self.get("running", 0))

    @property
    def pool_workers_busy(self) -> int:
        return int((self.get("pool") or {}).get("workers_busy", 0))

    @property
    def pool_workers_total(self) -> int:
        return int((self.get("pool") or {}).get("workers_total", 0))

    @property
    def ledger_lag_s(self) -> Optional[float]:
        lag = self.get("ledger_lag_s")
        return None if lag is None else float(lag)

    @property
    def shm_segments(self) -> int:
        return int((self.get("shm") or {}).get("segments", 0))

    @property
    def shm_bytes(self) -> int:
        return int((self.get("shm") or {}).get("bytes", 0))

    @property
    def jobs_by_state(self) -> Dict[str, int]:
        return {str(k): int(v) for k, v in (self.get("jobs") or {}).items()}


class ServiceClient:
    """One-connection-per-call client; safe to share across threads."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787, timeout: float = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        timeout: Optional[float] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Dict[str, Any]:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            request_headers = dict(headers or {})
            if body:
                request_headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=request_headers)
            response = conn.getresponse()
            data = response.read()
            decoded = json.loads(data.decode("utf-8")) if data else {}
            if response.status >= 400:
                self._raise(response.status, decoded)
            return decoded
        finally:
            conn.close()

    def _request_text(self, path: str, timeout: Optional[float] = None) -> str:
        """GET a plain-text endpoint (errors still arrive as JSON)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                try:
                    decoded = json.loads(data.decode("utf-8")) if data else {}
                except (UnicodeDecodeError, json.JSONDecodeError):
                    decoded = {}
                self._raise(response.status, decoded)
            return data.decode("utf-8")
        finally:
            conn.close()

    @staticmethod
    def _raise(status: int, decoded: Dict[str, Any]) -> None:
        error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
        message = error.get("message") or f"HTTP {status}"
        exc_type = _ERROR_TYPES.get(error.get("type"), ServiceError)
        raise exc_type(message)

    # ------------------------------------------------------------------
    def healthz(self) -> "ServiceHealth":
        """Typed view over ``GET /v1/healthz`` (still a plain mapping)."""
        return ServiceHealth(self._request("GET", "/v1/healthz"))

    def metrics_text(self) -> str:
        """The raw OpenMetrics exposition from ``GET /metrics``."""
        return self._request_text("/metrics")

    def job_metrics(self, job_id: str) -> Dict[str, Any]:
        """Live per-job snapshot + EWMA rates (``live: false`` shell when
        the job is not currently running)."""
        return self._request("GET", f"/v1/jobs/{quote(job_id)}/metrics")

    def submit(
        self,
        tenant: str,
        spec: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        headers = {"x-trace-id": trace_id} if trace_id else None
        return self._request(
            "POST", "/v1/jobs", {"tenant": tenant, "spec": spec or {}}, headers=headers
        )

    def jobs(self, tenant: Optional[str] = None) -> List[Dict[str, Any]]:
        path = "/v1/jobs"
        if tenant:
            path += "?" + urlencode({"tenant": tenant})
        return self._request("GET", path)["jobs"]

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{quote(job_id)}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/v1/jobs/{quote(job_id)}")

    def lake_report(
        self,
        tenant: str,
        report: str = "runs",
        vendor: Optional[str] = None,
        kind: Optional[str] = None,
        runs: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Cross-run lake analytics over the tenant's finished jobs."""
        params: Dict[str, str] = {"report": report}
        if vendor:
            params["vendor"] = vendor
        if kind:
            params["kind"] = kind
        if runs:
            params["runs"] = ",".join(runs)
        return self._request(
            "GET", f"/v1/tenants/{quote(tenant)}/lake?" + urlencode(params)
        )

    # ------------------------------------------------------------------
    def events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[Dict[str, Any]]:
        """Yield the job's events as they arrive (blocks until stream ends).

        The server chunk-encodes one JSON object per line;
        ``http.client`` de-chunks transparently, so this just reads lines
        until EOF.
        """
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            conn.request("GET", f"/v1/jobs/{quote(job_id)}/events")
            response = conn.getresponse()
            if response.status >= 400:
                data = response.read()
                decoded = json.loads(data.decode("utf-8")) if data else {}
                self._raise(response.status, decoded)
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
            if buffer.strip():
                yield json.loads(buffer)
        finally:
            conn.close()

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.2
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; return its record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_s)
