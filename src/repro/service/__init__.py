"""Async multi-tenant campaign service over the runner engine.

The blocking engine (``repro.runner`` driven by
:class:`~repro.analysis.campaign.CharacterizationCampaign`) serves one
caller at a time.  This package wraps it as a long-lived service:

``jobs``
    Job schema: :class:`CampaignJobSpec` (the CLI's knobs as JSON),
    :class:`JobRecord`, the state machine, and service error types.
``ledger``
    Durable ``jobs.jsonl`` transition log; replay powers
    resume-on-restart.
``events``
    :class:`BroadcastEventSink`: per-job thread-to-asyncio event fan-out
    behind the live ``/events`` stream.
``manager``
    :class:`JobManager`: bounded queue, FIFO-per-tenant fair scheduling,
    one shared process pool across concurrent jobs, cooperative cancel,
    graceful shutdown, crash resume.
``http``
    The JSON-over-HTTP API (stdlib asyncio streams).
``app``
    :func:`run_service` / :class:`ServiceConfig` / :class:`ServiceThread`
    assembly.
``client``
    Blocking :class:`ServiceClient` mirroring the API.

The service path reuses the exact engine the CLI uses -- same work-unit
decomposition, same keyed RNG, same result store -- so a campaign
submitted over HTTP produces a summary byte-identical to
``python -m repro campaign`` with the same spec.
"""

from .app import ServiceConfig, ServiceThread, run_service
from .client import ServiceClient, ServiceHealth
from .events import BroadcastEventSink
from .jobs import (
    ALL_STATES,
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RESUMABLE_STATES,
    RUNNING,
    TERMINAL_STATES,
    CampaignJobSpec,
    JobRecord,
    QueueFullError,
    ServiceError,
    UnknownJobError,
    validate_tenant,
)
from .ledger import LEDGER_NAME, JobLedger
from .manager import LAKE_DIR_NAME, SUMMARY_NAME, Job, JobManager

__all__ = [
    "ALL_STATES",
    "BroadcastEventSink",
    "CANCELLED",
    "CampaignJobSpec",
    "DONE",
    "FAILED",
    "INTERRUPTED",
    "Job",
    "JobLedger",
    "JobManager",
    "JobRecord",
    "LEDGER_NAME",
    "QUEUED",
    "QueueFullError",
    "RESUMABLE_STATES",
    "RUNNING",
    "LAKE_DIR_NAME",
    "SUMMARY_NAME",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceHealth",
    "ServiceThread",
    "TERMINAL_STATES",
    "UnknownJobError",
    "run_service",
    "validate_tenant",
]
