"""The multi-tenant job manager: queueing, fairness, shared pool, resume.

:class:`JobManager` turns the blocking campaign engine into a long-lived
service core:

* **Bounded queue, FIFO-per-tenant fairness.**  Submissions enter their
  tenant's FIFO; the scheduler round-robins across tenants, so one tenant
  queueing 100 campaigns cannot starve another's single job.  The queue
  is bounded (``max_queued``); beyond it submissions are refused with
  :class:`~repro.service.jobs.QueueFullError` (HTTP 429).

* **One shared process pool.**  Up to ``max_running`` jobs execute
  concurrently, each in its own thread driving a
  :class:`~repro.runner.RunnerEngine` whose
  :class:`~repro.runner.ProcessPoolBackend` submits into the manager's
  single :class:`~concurrent.futures.ProcessPoolExecutor` -- submission
  stays windowed per job, fleet ``chips_per_unit`` dispatch is preserved,
  and N campaigns multiplex one set of worker processes instead of
  forking N pools.  ``pool_workers=0`` selects in-thread serial execution
  (the deterministic test mode).

* **Per-tenant run-dir namespaces + durable ledger.**  Job ``NNN`` of
  tenant ``t`` runs in ``<root>/<t>/job-NNNNNN/`` (collision-safe
  allocation: ids are never reused against the ledger *or* the
  filesystem).  Every state transition is appended to ``<root>/jobs.jsonl``
  and flushed, so a kill -9 at any point leaves a replayable record.

* **Resume-on-restart.**  On :meth:`start`, the ledger is replayed and
  every job in a resumable state (queued / running / interrupted) is
  re-queued with ``resume=True``; the manifest-guarded result store skips
  chips already measured, so the restarted job finishes exactly the
  remaining work and its summary is byte-identical to an uninterrupted
  run.

* **Cooperative cancel and graceful shutdown.**  Cancelling a running job
  (or shutting the manager down) flips the job's stop event; the engine
  drains in-flight units, persists their results and telemetry, and marks
  the run-dir manifest ``interrupted``.  Nothing finished is ever thrown
  away.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from ..dram import shm as shm_mod
from ..errors import ConfigurationError
from ..obs import Observability, TraceContext
from ..obs.live import LivePlane
from ..runner import (
    MANIFEST_NAME,
    STATUS_INTERRUPTED,
    ProcessPoolBackend,
    default_worker_count,
)
from .events import BroadcastEventSink
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    INTERRUPTED,
    QUEUED,
    RESUMABLE_STATES,
    RUNNING,
    CampaignJobSpec,
    JobRecord,
    QueueFullError,
    UnknownJobError,
    validate_tenant,
)
from .ledger import LEDGER_NAME, JobLedger

#: Byte-identical summary snapshot written into each completed job's run dir.
SUMMARY_NAME = "summary.json"

#: Per-tenant columnar lake directory under ``<root>/<tenant>/`` (job ids
#: are always ``job-NNNNNN``, so the name can never collide with a run dir).
LAKE_DIR_NAME = "lake"


class Job:
    """Runtime state wrapped around one :class:`JobRecord`."""

    def __init__(self, record: JobRecord, spec: CampaignJobSpec) -> None:
        self.record = record
        self.spec = spec
        self.stop = threading.Event()
        self.cancel_requested = False
        self.sink: Optional[BroadcastEventSink] = None
        self.summary_json: Optional[Dict[str, Any]] = None
        self.trace: Optional[TraceContext] = None

    @property
    def job_id(self) -> str:
        return self.record.job_id

    @property
    def tenant(self) -> str:
        return self.record.tenant


class JobManager:
    """Async façade over the runner engine for many tenants' campaigns."""

    def __init__(
        self,
        root: Union[str, pathlib.Path],
        pool_workers: Optional[int] = None,
        max_running: int = 2,
        max_queued: int = 64,
        resume: bool = True,
        sample_interval_s: float = 1.0,
    ) -> None:
        if max_running <= 0:
            raise ConfigurationError("max_running must be positive")
        if max_queued <= 0:
            raise ConfigurationError("max_queued must be positive")
        if pool_workers is None:
            pool_workers = default_worker_count()
        if pool_workers < 0:
            raise ConfigurationError("pool_workers must be non-negative")
        if sample_interval_s <= 0:
            raise ConfigurationError("sample_interval_s must be positive")
        self.root = pathlib.Path(root)
        self.pool_workers = int(pool_workers)
        self.max_running = int(max_running)
        self.max_queued = int(max_queued)
        self.resume = bool(resume)
        self.sample_interval_s = float(sample_interval_s)
        self.ledger = JobLedger(self.root / LEDGER_NAME)
        #: The live observability plane: HTTP request telemetry, sampled
        #: service gauges, and every running job's metrics registry.
        self.plane = LivePlane()

        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._tenant_queues: Dict[str, Deque[str]] = {}
        self._tenant_rotation: List[str] = []
        self._rr_index = 0
        self._running: Dict[str, asyncio.Task] = {}
        self._seq = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._wake: Optional[asyncio.Event] = None
        self._scheduler: Optional[asyncio.Task] = None
        self._sampler: Optional[asyncio.Task] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Open the ledger, re-adopt resumable jobs, start scheduling."""
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self.root.mkdir(parents=True, exist_ok=True)
        if self.pool_workers > 0:
            self._pool = ProcessPoolExecutor(max_workers=self.pool_workers)
        if self.resume:
            self._adopt_ledger()
        self._scheduler = asyncio.create_task(self._schedule_loop())
        self._sampler = asyncio.create_task(self._sample_loop())
        self._kick()

    async def shutdown(self) -> None:
        """Graceful stop: drain running jobs, persist, close everything.

        Running jobs get their stop event -- the engine drains in-flight
        units and marks manifests interrupted -- and are recorded as
        ``interrupted`` in the ledger so the next start re-adopts them.
        Queued jobs simply stay ``queued`` in the ledger.
        """
        self._closed = True
        if self._sampler is not None:
            self._sampler.cancel()
            try:
                await self._sampler
            except asyncio.CancelledError:
                pass
            self._sampler = None
        if self._scheduler is not None:
            self._scheduler.cancel()
            try:
                await self._scheduler
            except asyncio.CancelledError:
                pass
            self._scheduler = None
        for job_id in list(self._running):
            self._jobs[job_id].stop.set()
        if self._running:
            await asyncio.gather(*self._running.values(), return_exceptions=True)
        if self._pool is not None:
            pool = self._pool
            self._pool = None
            await asyncio.to_thread(pool.shutdown, True)
        self.ledger.close()

    def _adopt_ledger(self) -> None:
        for job_id, row in self.ledger.replay().items():
            spec_data = row.get("spec")
            if spec_data is None:
                continue  # pre-spec rows cannot be rebuilt; skip defensively
            spec = CampaignJobSpec.from_json_dict(spec_data)
            tenant = str(row["tenant"])
            state = str(row["state"])
            trace_id = row.get("trace_id")
            record = JobRecord(
                job_id=job_id,
                tenant=tenant,
                spec=spec,
                state=state,
                created_ts=float(row.get("created_ts") or row.get("ts") or 0.0),
                error=row.get("error"),
                run_dir=str(self._run_dir(tenant, job_id)),
                trace_id=str(trace_id) if trace_id else None,
            )
            job = Job(record, spec)
            if record.trace_id:
                # A resumed run continues under the original trace id.
                job.trace = TraceContext(trace_id=record.trace_id)
            self._jobs[job_id] = job
            self._note_seq(job_id)
            if state in RESUMABLE_STATES:
                # running/interrupted jobs re-enter the queue; their run
                # dir's manifest-guarded store supplies the frontier.
                record.state = QUEUED
                record.started_ts = None
                job.sink = BroadcastEventSink(self._loop) if self._loop else None
                self.ledger.append(job_id, tenant, QUEUED, adopted=True)
                self._enqueue(job)

    def _note_seq(self, job_id: str) -> None:
        if job_id.startswith("job-"):
            try:
                self._seq = max(self._seq, int(job_id[4:]))
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Submission / inspection / cancellation (loop-side API)
    # ------------------------------------------------------------------
    def _run_dir(self, tenant: str, job_id: str) -> pathlib.Path:
        return self.root / tenant / job_id

    def _allocate_job_id(self, tenant: str) -> str:
        """Next ``job-NNNNNN`` unused by the ledger *and* the filesystem."""
        while True:
            self._seq += 1
            job_id = f"job-{self._seq:06d}"
            if job_id in self._jobs:
                continue
            if self._run_dir(tenant, job_id).exists():
                continue
            return job_id

    def queued_count(self) -> int:
        return sum(len(q) for q in self._tenant_queues.values())

    async def submit(
        self,
        tenant: str,
        spec: CampaignJobSpec,
        trace: Optional[TraceContext] = None,
    ) -> JobRecord:
        if self._closed:
            raise ConfigurationError("the job manager is shutting down")
        validate_tenant(tenant)
        if self.queued_count() >= self.max_queued:
            raise QueueFullError(
                f"job queue is full ({self.max_queued} queued); retry later"
            )
        job_id = self._allocate_job_id(tenant)
        # Every job gets a trace root: either the caller's (propagated
        # from the HTTP request) or a fresh one, so the run's spans and
        # events all correlate under one trace id.
        if trace is None:
            trace = TraceContext.new()
        record = JobRecord(
            job_id=job_id,
            tenant=tenant,
            spec=spec,
            state=QUEUED,
            created_ts=time.time(),
            run_dir=str(self._run_dir(tenant, job_id)),
            trace_id=trace.trace_id,
        )
        job = Job(record, spec)
        job.trace = trace
        # The sink exists from submission so an events subscriber attached
        # while the job is still queued sees the run live once it starts.
        job.sink = BroadcastEventSink(self._loop) if self._loop else None
        self._jobs[job_id] = job
        self.ledger.append(
            job_id, tenant, QUEUED, spec=spec.to_json_dict(), trace_id=trace.trace_id
        )
        self._enqueue(job)
        self._kick()
        return record.snapshot()

    def job(self, job_id: str) -> JobRecord:
        return self._job(job_id).record.snapshot()

    def jobs(self, tenant: Optional[str] = None) -> List[JobRecord]:
        return [
            j.record.snapshot()
            for j in self._jobs.values()
            if tenant is None or j.tenant == tenant
        ]

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise UnknownJobError(f"unknown job {job_id!r}") from None

    def result(self, job_id: str) -> Dict[str, Any]:
        """The finished job's summary (from memory, else ``summary.json``)."""
        job = self._job(job_id)
        if job.record.state != DONE:
            raise ConfigurationError(
                f"job {job_id} is {job.record.state}, not {DONE}; no result yet"
            )
        if job.summary_json is None:
            summary_path = self._run_dir(job.tenant, job_id) / SUMMARY_NAME
            job.summary_json = json.loads(summary_path.read_text(encoding="utf-8"))
        return job.summary_json

    async def cancel(self, job_id: str) -> JobRecord:
        """Cooperatively cancel: queued jobs die immediately; running jobs
        drain in-flight units and persist partial results first."""
        job = self._job(job_id)
        record = job.record
        if record.state == QUEUED:
            queue = self._tenant_queues.get(job.tenant)
            if queue is not None and job_id in queue:
                queue.remove(job_id)
            record.state = CANCELLED
            record.finished_ts = time.time()
            self.ledger.append(job_id, job.tenant, CANCELLED)
            if job.sink is not None:
                job.sink.close()
        elif record.state == RUNNING:
            job.cancel_requested = True
            job.stop.set()
        # terminal states: cancel is a no-op, return the record as-is
        return record.snapshot()

    def subscribe_events(self, job_id: str):
        """Live event queue for a job, or a replayed list for finished ones.

        Returns ``(queue, sink)`` while the job can still produce events,
        or ``(rows, None)`` replayed from the run directory's
        ``events.jsonl`` once it cannot.
        """
        job = self._job(job_id)
        if job.sink is not None and not job.record.terminal:
            return job.sink.subscribe(), job.sink
        rows: List[Dict[str, Any]] = []
        events_path = self._run_dir(job.tenant, job_id) / "events.jsonl"
        if events_path.exists():
            for line in events_path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn tail
        return rows, None

    # ------------------------------------------------------------------
    # Live observability (the plane's gauge/sampler feed + healthz)
    # ------------------------------------------------------------------
    def _pool_stats(self) -> Tuple[int, int]:
        """``(busy, total)`` pool workers.  *Busy* is each running job's
        submission-window share (the worker slots it can occupy), capped
        at the pool width -- the executor itself does not expose live
        occupancy, and the window is the scheduling-relevant bound."""
        total = self.pool_workers
        if total == 0:  # serial mode: one in-thread "worker" per job
            return len(self._running), 0
        busy = 0
        for job_id in self._running:
            job = self._jobs.get(job_id)
            share = job.spec.workers if job is not None and job.spec.workers else total
            busy += share
        return min(busy, total), total

    def sample(self) -> None:
        """One observation: push service gauges and per-job ring points.

        The sampler task calls this every ``sample_interval_s``; tests
        call it directly for deterministic snapshots.
        """
        busy, total = self._pool_stats()
        segments, segment_bytes = shm_mod.active_segment_stats()
        self.plane.set_service_gauges(
            queue_depth=self.queued_count(),
            jobs_running=len(self._running),
            pool_workers_busy=busy,
            pool_workers_total=total,
            shm_segments=segments,
            shm_segment_bytes=segment_bytes,
        )
        self.plane.sample_jobs()

    async def _sample_loop(self) -> None:
        while True:
            self.sample()
            await asyncio.sleep(self.sample_interval_s)

    def health(self) -> Dict[str, Any]:
        """The extended ``GET /v1/healthz`` body: liveness plus pool
        saturation, ledger lag, shm usage, and job-state counts."""
        busy, total = self._pool_stats()
        segments, segment_bytes = shm_mod.active_segment_stats()
        states: Dict[str, int] = {}
        for job in self._jobs.values():
            states[job.record.state] = states.get(job.record.state, 0) + 1
        last_append = self.ledger.last_append_ts
        return {
            "status": "ok",
            "queued": self.queued_count(),
            "running": len(self._running),
            "pool": {"workers_busy": busy, "workers_total": total},
            "ledger_lag_s": (
                max(0.0, time.time() - last_append)
                if last_append is not None
                else None
            ),
            "shm": {"segments": segments, "bytes": segment_bytes},
            "jobs": states,
        }

    def job_metrics(self, job_id: str) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}/metrics`` body.

        Running jobs return their live registry snapshot plus EWMA rates,
        latency percentiles, and sampled series (``live: true``); known
        but not-running jobs return an empty shell so pollers can probe
        before start and after finish without special-casing 4xx.
        """
        job = self._job(job_id)
        live = self.plane.job_metrics(job_id)
        if live is None:
            live = {
                "job_id": job_id,
                "tenant": job.tenant,
                "snapshot": [],
                "rates": {},
                "series": {},
            }
            live["live"] = False
        else:
            live["live"] = True
        live["state"] = job.record.state
        live["trace_id"] = job.record.trace_id
        return live

    # ------------------------------------------------------------------
    # Cross-run lake analytics
    # ------------------------------------------------------------------
    def tenant_lake_root(self, tenant: str) -> pathlib.Path:
        return self.root / tenant / LAKE_DIR_NAME

    async def lake_report(
        self,
        tenant: str,
        report: str = "runs",
        vendor: Optional[str] = None,
        kind: Optional[str] = None,
        runs: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        """Cross-run analytics over one tenant's finished jobs.

        Every terminal job with a persisted ``results.jsonl`` is
        (re)compacted into the tenant's columnar lake -- recompaction is
        idempotent and refreshes runs that were resumed since the last
        query -- and then one report from :data:`repro.lake.REPORTS`
        (or ``summary``, the canonical single-run summary that is
        byte-identical to the JSONL-derived one) runs over it.  Live jobs
        are excluded: their run dirs are still being appended to.

        The job list is snapshotted on the event loop; compaction and the
        columnar query run in a worker thread.
        """
        validate_tenant(tenant)
        eligible = [
            (job.job_id, self._run_dir(tenant, job.job_id))
            for job in list(self._jobs.values())
            if job.tenant == tenant and job.record.terminal
        ]
        return await asyncio.to_thread(
            self._lake_report_blocking, tenant, eligible, report, vendor, kind, runs
        )

    def _lake_report_blocking(
        self,
        tenant: str,
        eligible: List[Any],
        report: str,
        vendor: Optional[str],
        kind: Optional[str],
        runs: Optional[List[str]],
    ) -> Dict[str, Any]:
        from ..lake import REPORTS, ResultLake, summary_from_lake
        from ..runner.store import RESULTS_NAME

        lake = ResultLake(self.tenant_lake_root(tenant))
        compacted: List[str] = []
        for job_id, run_dir in eligible:
            if not (run_dir / RESULTS_NAME).exists():
                continue
            lake.compact_run_dir(run_dir, run_id=job_id)
            compacted.append(job_id)
        if report == "summary":
            if not runs or len(runs) != 1:
                raise ConfigurationError(
                    "the summary report needs exactly one run id (runs=[job_id])"
                )
            return {
                "tenant": tenant,
                "compacted": compacted,
                "report": "summary",
                "summary": summary_from_lake(lake, runs[0]),
            }
        if report not in REPORTS:
            raise ConfigurationError(
                f"unknown lake report {report!r}; expected one of "
                f"{', '.join(sorted(REPORTS))}, summary"
            )
        kwargs: Dict[str, Any] = {"run_ids": runs}
        if report == "trend":
            kwargs.update(vendor=vendor, kind=kind or "interval")
        elif report == "contour":
            kwargs.update(kind=kind or "temperature")
        payload = REPORTS[report](lake, **kwargs)
        return {"tenant": tenant, "compacted": compacted, **payload}

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _enqueue(self, job: Job) -> None:
        tenant = job.tenant
        if tenant not in self._tenant_queues:
            self._tenant_queues[tenant] = deque()
            self._tenant_rotation.append(tenant)
        self._tenant_queues[tenant].append(job.job_id)

    def _next_queued(self) -> Optional[Job]:
        """Round-robin across tenants, FIFO within each tenant."""
        if not self._tenant_rotation:
            return None
        n = len(self._tenant_rotation)
        for offset in range(n):
            tenant = self._tenant_rotation[(self._rr_index + offset) % n]
            queue = self._tenant_queues[tenant]
            if queue:
                self._rr_index = (self._rr_index + offset + 1) % n
                return self._jobs[queue.popleft()]
        return None

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _schedule_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while len(self._running) < self.max_running:
                job = self._next_queued()
                if job is None:
                    break
                self._launch(job)

    def _launch(self, job: Job) -> None:
        assert self._loop is not None
        record = job.record
        record.state = RUNNING
        record.started_ts = time.time()
        self.ledger.append(job.job_id, job.tenant, RUNNING)
        if job.sink is None:
            job.sink = BroadcastEventSink(self._loop)
        task = asyncio.create_task(self._run_job(job))
        self._running[job.job_id] = task

    async def _run_job(self, job: Job) -> None:
        record = job.record
        error: Optional[str] = None
        try:
            summary_json = await asyncio.to_thread(self._execute_blocking, job)
            job.summary_json = summary_json
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            error = f"{type(exc).__name__}: {exc}"
        finally:
            record.finished_ts = time.time()
            if error is not None:
                record.state = FAILED
                record.error = error
            elif job.cancel_requested:
                record.state = CANCELLED
            elif job.stop.is_set() and self._manifest_interrupted(job):
                # Shutdown drained it mid-run: resumable on restart.
                record.state = INTERRUPTED
            else:
                record.state = DONE
            self.ledger.append(job.job_id, job.tenant, record.state, error=error)
            if job.sink is not None:
                job.sink.emit(
                    "job.state", job_id=job.job_id, state=record.state, error=error
                )
                job.sink.close()
            self._running.pop(job.job_id, None)
            self._kick()

    def _manifest_interrupted(self, job: Job) -> bool:
        """Did the run actually stop early?  The manifest status is the
        durable truth (a stop requested after the last unit finished still
        yields a complete run)."""
        manifest_path = self._run_dir(job.tenant, job.job_id) / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return True
        return manifest.get("status") == STATUS_INTERRUPTED

    # ------------------------------------------------------------------
    # Blocking execution (worker thread)
    # ------------------------------------------------------------------
    def _execute_blocking(self, job: Job) -> Dict[str, Any]:
        spec = job.spec
        run_dir = self._run_dir(job.tenant, job.job_id)
        campaign = spec.build_campaign()
        if self._pool is not None:
            backend: Any = ProcessPoolBackend(
                workers=spec.workers or self.pool_workers, executor=self._pool
            )
        else:
            backend = "serial"
        layer = Observability(sink=job.sink)
        if job.trace is not None:
            # The engine roots its run span under this context, stamps it
            # onto every dispatched unit, and the workers adopt it -- one
            # correlated tree per job, from HTTP submit to pool worker.
            layer.tracer.context = job.trace
        self.plane.register_job(job.job_id, job.tenant, layer)

        # Tile-dispatch runs report per-chunk tile completion out of band
        # from the unit tracker; both callbacks rebuild the progress dict
        # wholesale, so each re-merges the other's latest contribution.
        tiles_state: Dict[str, Any] = {}

        def progress(result, tracker):
            snapshot = {
                "total": tracker.total,
                "completed": tracker.completed,
                "succeeded": tracker.succeeded,
                "failed": tracker.failed,
                "skipped": tracker.skipped,
                "throughput_units_per_s": tracker.throughput_units_per_s,
                "eta_s": tracker.eta_seconds,
                "elapsed_s": tracker.elapsed_seconds,
            }
            if tiles_state:
                snapshot["tiles"] = dict(tiles_state)
            job.record.progress = snapshot
            self.plane.note_unit(job.job_id, result.elapsed_s, result.status)

        def tile_progress(info):
            tiles_state.clear()
            tiles_state.update(info)
            merged = dict(job.record.progress)
            merged["tiles"] = dict(tiles_state)
            job.record.progress = merged

        try:
            summary = campaign.run(
                intervals_s=spec.intervals_s,
                temperatures_c=spec.temperatures_c,
                backend=backend,
                run_dir=str(run_dir),
                resume=True,
                max_retries=spec.max_retries,
                progress=progress,
                chips_per_unit=spec.chips_per_unit,
                shared_population=spec.shared_population,
                megakernel=spec.megakernel,
                condition_tiles=spec.condition_tiles,
                tile_progress=(
                    tile_progress if spec.condition_tiles is not None else None
                ),
                should_stop=job.stop.is_set,
                observability=layer,
            )
        finally:
            # Fold the job's final registry into the plane's cumulative
            # completed pool so fleet counters never regress at job end.
            self.plane.unregister_job(job.job_id)
        summary_json = summary.to_json_dict()
        if not (job.stop.is_set() and self._manifest_interrupted(job)):
            tmp = run_dir / (SUMMARY_NAME + ".tmp")
            tmp.write_text(
                json.dumps(summary_json, indent=2, sort_keys=True), encoding="utf-8"
            )
            tmp.replace(run_dir / SUMMARY_NAME)
        return summary_json
