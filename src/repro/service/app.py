"""Service assembly: config, signal-aware main loop, in-process harness.

:func:`run_service` is what ``python -m repro serve`` runs: build a
:class:`~repro.service.manager.JobManager`, bind the HTTP server, print
the ``serving on http://host:port`` line (flushed, so wrappers can scrape
the bound port), then wait for SIGINT/SIGTERM.  On the first signal it
shuts down gracefully -- stops accepting connections, drains running jobs
(their engines persist partial results and mark manifests interrupted),
and appends the final ledger rows so a later ``serve`` on the same root
resumes them.

:class:`ServiceThread` hosts the same stack on a background thread with
its own event loop -- the fixture the service tests (and any embedding
application) use to get a real HTTP endpoint without a subprocess.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import pathlib
import signal
import threading
from typing import Optional, Tuple, Union

from .http import serve
from .manager import JobManager


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to stand up a service."""

    root: Union[str, pathlib.Path]
    host: str = "127.0.0.1"
    port: int = 8787  #: 0 binds an ephemeral port (printed on startup)
    pool_workers: Optional[int] = None
    max_running: int = 2
    max_queued: int = 64
    resume: bool = True


def _bound_address(server: asyncio.AbstractServer) -> Tuple[str, int]:
    sock = server.sockets[0]
    host, port = sock.getsockname()[:2]
    return host, port


async def run_service(
    config: ServiceConfig,
    *,
    stop: Optional[asyncio.Event] = None,
    ready: Optional["ServiceHandle"] = None,
    install_signal_handlers: bool = True,
) -> None:
    """Run the service until ``stop`` is set or a termination signal lands."""
    if stop is None:
        stop = asyncio.Event()
    manager = JobManager(
        config.root,
        pool_workers=config.pool_workers,
        max_running=config.max_running,
        max_queued=config.max_queued,
        resume=config.resume,
    )
    await manager.start()
    server = await serve(manager, config.host, config.port)
    host, port = _bound_address(server)
    print(f"serving on http://{host}:{port}", flush=True)
    if ready is not None:
        ready._set(host, port, manager)

    loop = asyncio.get_running_loop()
    installed = []
    if install_signal_handlers:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    try:
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        await manager.shutdown()


class ServiceHandle:
    """Rendezvous for the bound address once :func:`run_service` is up."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.manager: Optional[JobManager] = None

    def _set(self, host: str, port: int, manager: JobManager) -> None:
        self.host, self.port, self.manager = host, port, manager
        self._event.set()

    def wait(self, timeout: float = 30.0) -> Tuple[str, int]:
        if not self._event.wait(timeout):
            raise TimeoutError("service did not start within the timeout")
        assert self.host is not None and self.port is not None
        return self.host, self.port


class ServiceThread:
    """The full service stack on a daemon thread (for tests / embedding).

    Usage::

        with ServiceThread(ServiceConfig(root=tmp, port=0)) as svc:
            client = ServiceClient(svc.host, svc.port)
            ...
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.handle = ServiceHandle()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._error: Optional[BaseException] = None

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 - surfaced via start()
            self._error = exc
            self.handle._event.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await run_service(
            self.config,
            stop=self._stop,
            ready=self.handle,
            install_signal_handlers=False,
        )

    # ------------------------------------------------------------------
    def start(self) -> "ServiceThread":
        self._thread.start()
        self.handle.wait()
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout)

    @property
    def host(self) -> str:
        host, _port = self.handle.wait()
        return host

    @property
    def port(self) -> int:
        _host, port = self.handle.wait()
        return port

    @property
    def manager(self) -> JobManager:
        assert self.handle.manager is not None
        return self.handle.manager

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
