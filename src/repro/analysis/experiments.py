"""Section 6/7 experiments: the tradeoff space, ECC tables, longevity,
the headline reach-profiling result, and the end-to-end sweeps
(Figures 9-13, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import rng as rng_mod
from ..conditions import Conditions, ReachDelta
from ..core.bruteforce import BruteForceProfiler
from ..core.metrics import evaluate
from ..core.reach import ReachProfiler
from ..core.tradeoff import TradeoffExplorer, TradeoffSurface
from ..dram.chip import SimulatedDRAMChip
from ..dram.geometry import ChipGeometry
from ..dram.vendor import VENDORS, VENDOR_B, VendorModel
from ..ecc.model import CONSUMER_UBER, ECC_STRENGTHS, EccStrength, tolerable_bit_errors, tolerable_rber
from ..errors import ConfigurationError
from ..sysperf.overhead import (
    EndToEndEvaluator,
    EndToEndPoint,
    ProfilerKind,
    profiling_power_mw,
    profiling_time_fraction,
)
from ..sysperf.workloads import Mix, workload_mixes
from .characterization import DEFAULT_CHAR_GEOMETRY


# ======================================================================
# Figures 9 & 10: the reach-condition tradeoff surfaces
# ======================================================================
def fig9_fig10_tradeoff_surface(
    base: Conditions = Conditions(trefi=0.512, temperature=45.0),
    delta_trefis_s: Sequence[float] = (0.0, 0.125, 0.250, 0.375, 0.500),
    delta_temperatures_c: Sequence[float] = (0.0, 5.0, 10.0),
    vendor: VendorModel = VENDOR_B,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    iterations: int = 16,
    coverage_target: float = 0.90,
    seed: int = rng_mod.DEFAULT_SEED,
) -> TradeoffSurface:
    """Grid characterization behind the coverage/FPR/runtime contours.

    Every grid point is brute-force profiled on a statistically identical
    chip; each point then acts as the target for all more aggressive points
    (the paper's Section 6.1.1 methodology).
    """
    max_trefi = base.trefi + max(delta_trefis_s)
    max_temp = base.temperature + max(delta_temperatures_c)

    def factory() -> SimulatedDRAMChip:
        return SimulatedDRAMChip(
            vendor=vendor,
            geometry=geometry,
            seed=seed,
            chip_id=0,
            max_trefi_s=max_trefi * 1.05,
            max_temperature_c=max_temp,
        )

    explorer = TradeoffExplorer(
        device_factory=factory,
        iterations=iterations,
        coverage_target=coverage_target,
    )
    return explorer.explore(base, list(delta_trefis_s), list(delta_temperatures_c))


# ======================================================================
# Table 1: tolerable RBER / bit errors
# ======================================================================
@dataclass(frozen=True)
class Table1Row:
    ecc_name: str
    tolerable_rber: float
    tolerable_bit_errors: Dict[str, float]  # DRAM size label -> count


def table1_tolerable_rber(
    target_uber: float = CONSUMER_UBER,
    sizes_bytes: Optional[Dict[str, int]] = None,
) -> List[Table1Row]:
    """Regenerate Table 1 for the built-in ECC strengths."""
    if sizes_bytes is None:
        gib = 1 << 30
        sizes_bytes = {
            "512MB": gib // 2,
            "1GB": gib,
            "2GB": 2 * gib,
            "4GB": 4 * gib,
            "8GB": 8 * gib,
        }
    rows: List[Table1Row] = []
    for ecc in ECC_STRENGTHS.values():
        rber = tolerable_rber(ecc, target_uber)
        rows.append(
            Table1Row(
                ecc_name=ecc.name,
                tolerable_rber=rber,
                tolerable_bit_errors={
                    label: tolerable_bit_errors(ecc, size, target_uber)
                    for label, size in sizes_bytes.items()
                },
            )
        )
    return rows


# ======================================================================
# Section 6.1.2 headline: +250 ms reach -> >99% coverage, <50% FPR, 2.5x
# ======================================================================
@dataclass(frozen=True)
class HeadlineChipResult:
    vendor: str
    chip_id: int
    coverage: float
    false_positive_rate: float
    speedup: float


@dataclass(frozen=True)
class HeadlineResult:
    per_chip: Tuple[HeadlineChipResult, ...]

    @property
    def mean_coverage(self) -> float:
        return float(np.mean([r.coverage for r in self.per_chip]))

    @property
    def mean_false_positive_rate(self) -> float:
        return float(np.mean([r.false_positive_rate for r in self.per_chip]))

    @property
    def mean_speedup(self) -> float:
        return float(np.mean([r.speedup for r in self.per_chip]))


def headline_reach_metrics(
    target: Conditions = Conditions(trefi=1.024, temperature=45.0),
    reach: ReachDelta = ReachDelta(delta_trefi=0.250),
    chips_per_vendor: int = 2,
    geometry: ChipGeometry = DEFAULT_CHAR_GEOMETRY,
    brute_iterations: int = 16,
    reach_iterations: int = 5,
    seed: int = rng_mod.DEFAULT_SEED,
) -> HeadlineResult:
    """Measure the paper's headline claim across a chip population.

    Each chip is profiled twice from identical initial state (same seed):
    brute force at the target (16 iterations, the empirical truth set) and
    reach profiling at target + reach.  Coverage and FPR are computed
    against the brute-force truth; speedup is the runtime ratio.
    """
    results: List[HeadlineChipResult] = []
    brute = BruteForceProfiler(iterations=brute_iterations)
    reacher = ReachProfiler(reach=reach, iterations=reach_iterations)
    max_trefi = (target.trefi + reach.delta_trefi) * 1.05
    max_temp = target.temperature + reach.delta_temperature
    for vendor in VENDORS.values():
        for chip_index in range(chips_per_vendor):
            def chip() -> SimulatedDRAMChip:
                return SimulatedDRAMChip(
                    vendor=vendor,
                    geometry=geometry,
                    seed=seed,
                    chip_id=chip_index,
                    max_trefi_s=max_trefi,
                    max_temperature_c=max(max_temp, 45.0),
                )

            truth_profile = brute.run(chip(), target)
            reach_profile = reacher.run(chip(), target)
            evaluation = evaluate(reach_profile, truth_profile.failing)
            results.append(
                HeadlineChipResult(
                    vendor=vendor.name,
                    chip_id=chip_index,
                    coverage=evaluation.coverage,
                    false_positive_rate=evaluation.false_positive_rate,
                    speedup=truth_profile.runtime_seconds / reach_profile.runtime_seconds,
                )
            )
    return HeadlineResult(per_chip=tuple(results))


# ======================================================================
# Figure 11 / Figure 12: profiling time & power vs online cadence
# ======================================================================
@dataclass(frozen=True)
class Fig11Row:
    profiling_interval_hours: float
    chip_density_gigabits: int
    brute_fraction: float
    reaper_fraction: float


def fig11_profiling_time(
    intervals_hours: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    densities_gigabits: Sequence[int] = (8, 16, 32, 64),
    trefi_s: float = 1.024,
) -> List[Fig11Row]:
    """System-time share spent profiling (Figure 11's bar heights)."""
    rows: List[Fig11Row] = []
    for hours in intervals_hours:
        for density in densities_gigabits:
            rows.append(
                Fig11Row(
                    profiling_interval_hours=hours,
                    chip_density_gigabits=density,
                    brute_fraction=profiling_time_fraction(
                        ProfilerKind.BRUTE_FORCE, hours * 3600.0, density, trefi_s=trefi_s
                    ),
                    reaper_fraction=profiling_time_fraction(
                        ProfilerKind.REAPER, hours * 3600.0, density, trefi_s=trefi_s
                    ),
                )
            )
    return rows


@dataclass(frozen=True)
class Fig12Row:
    profiling_interval_hours: float
    chip_density_gigabits: int
    brute_power_mw: float
    reaper_power_mw: float


def fig12_profiling_power(
    intervals_hours: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    densities_gigabits: Sequence[int] = (8, 16, 32, 64),
) -> List[Fig12Row]:
    """DRAM power attributable to profiling (Figure 12's bar heights)."""
    rows: List[Fig12Row] = []
    for hours in intervals_hours:
        for density in densities_gigabits:
            rows.append(
                Fig12Row(
                    profiling_interval_hours=hours,
                    chip_density_gigabits=density,
                    brute_power_mw=profiling_power_mw(
                        ProfilerKind.BRUTE_FORCE, hours * 3600.0, density
                    ),
                    reaper_power_mw=profiling_power_mw(
                        ProfilerKind.REAPER, hours * 3600.0, density
                    ),
                )
            )
    return rows


# ======================================================================
# Figure 13: end-to-end performance and power
# ======================================================================
@dataclass(frozen=True)
class Fig13Summary:
    trefi_s: Optional[float]
    profiler: ProfilerKind
    mean_improvement: float
    max_improvement: float
    mean_power_reduction: float
    max_power_reduction: float


def fig13_end_to_end(
    trefis_s: Sequence[Optional[float]] = (0.128, 0.256, 0.512, 1.024, 1.280, 1.536, None),
    chip_density_gigabits: int = 64,
    n_mixes: int = 20,
    seed: int = rng_mod.DEFAULT_SEED,
    evaluator: Optional[EndToEndEvaluator] = None,
) -> List[Fig13Summary]:
    """Summarize the Figure-13 sweep across mixes for each (interval, profiler)."""
    ev = evaluator if evaluator is not None else EndToEndEvaluator(
        chip_density_gigabits=chip_density_gigabits
    )
    mixes = workload_mixes(n_mixes, seed=seed)
    points = ev.sweep(mixes, trefis_s)
    summaries: List[Fig13Summary] = []
    for trefi in trefis_s:
        for kind in ProfilerKind:
            subset = [p for p in points if p.trefi_s == trefi and p.profiler is kind]
            improvements = [p.performance_improvement for p in subset]
            reductions = [p.power_reduction for p in subset]
            summaries.append(
                Fig13Summary(
                    trefi_s=trefi,
                    profiler=kind,
                    mean_improvement=float(np.mean(improvements)),
                    max_improvement=float(np.max(improvements)),
                    mean_power_reduction=float(np.mean(reductions)),
                    max_power_reduction=float(np.max(reductions)),
                )
            )
    return summaries


def archshield_combination(
    trefi_s: float = 1.024,
    chip_density_gigabits: int = 64,
    n_mixes: int = 20,
    archshield_cost: float = 0.01,
    seed: int = rng_mod.DEFAULT_SEED,
) -> Dict[str, Tuple[float, float]]:
    """Section 7.3.2: REAPER/brute/ideal each paired with ArchShield.

    Returns mechanism name -> (mean improvement, max improvement).
    """
    ev = EndToEndEvaluator(chip_density_gigabits=chip_density_gigabits)
    mixes = workload_mixes(n_mixes, seed=seed)
    out: Dict[str, Tuple[float, float]] = {}
    for kind in ProfilerKind:
        values = [
            ev.with_archshield(ev.evaluate_mix(mix, trefi_s, kind), archshield_cost)
            for mix in mixes
        ]
        out[kind.value] = (float(np.mean(values)), float(np.max(values)))
    return out
